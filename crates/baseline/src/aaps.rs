//! A bin-hierarchy controller in the spirit of Afek–Awerbuch–Plotkin–Saks.
//!
//! The AAPS controller pre-positions permits in *bins*. Each bin's level and
//! size are determined by the exact depth of its node: a node at depth `d`
//! hosts a bin of level `i` exactly when `2^i` divides `d` (the root hosts a
//! bin of every level). A request draws a permit from the closest level-0 bin
//! on its path to the root; an empty bin refills from its *supervisor* — the
//! level-`(i+1)` bin at the nearest ancestor whose depth is a multiple of
//! `2^{i+1}` — and supervisors refill recursively, ultimately from the root's
//! storage.
//!
//! Because bin levels are tied to exact depths, the structure only survives
//! topological changes that do not alter any existing node's depth: leaf
//! insertions (and non-topological events). That is precisely the restriction
//! of the AAPS dynamic model which the paper's controller lifts; requests for
//! deletions or internal insertions are refused with
//! [`ControllerError::Sim`]-free, explicit errors so experiment T4 can report
//! them.

use dcn_collections::FxHashMap;
use dcn_controller::{
    Controller, ControllerError, ControllerEvent, ControllerMetrics, Outcome, RequestId,
    RequestKind, RequestLedger, RequestRecord,
};
use dcn_tree::{DynamicTree, NodeId};

/// Key of a bin: the node hosting it and its level.
type BinKey = (NodeId, u32);

/// A bin-hierarchy (M, W)-Controller supporting only the grow-only dynamic
/// model (leaf insertions and non-topological events).
///
/// ```
/// use dcn_baseline::AapsController;
/// use dcn_controller::RequestKind;
/// use dcn_tree::DynamicTree;
///
/// let tree = DynamicTree::with_initial_path(8);
/// let mut ctrl = AapsController::new(tree, 16, 8, 64).unwrap();
/// let leaf = ctrl.tree().nodes().last().unwrap();
/// assert!(ctrl.submit(leaf, RequestKind::AddLeaf).unwrap().is_granted());
/// ```
#[derive(Debug)]
pub struct AapsController {
    tree: DynamicTree,
    /// Permit granularity (same definition as the paper's φ so the comparison
    /// is apples-to-apples).
    phi: u64,
    /// Number of bin levels.
    levels: u32,
    /// Current contents of each bin. Keyed by the composite `(host, level)`
    /// pair, so a hash table is the right shape — but with the in-tree fast
    /// hasher, not SipHash, since every request walk probes it.
    bins: FxHashMap<BinKey, u64>,
    /// Permits still in the root's storage.
    storage: u64,
    m: u64,
    w: u64,
    granted: u64,
    rejected: u64,
    messages: u64,
    moves: u64,
    ledger: RequestLedger,
}

impl AapsController {
    /// Creates a bin-hierarchy controller with budget `m`, waste bound `w` and
    /// node bound `u_bound` over `tree`.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::WasteExceedsBudget`] if `w > m`;
    /// * [`ControllerError::BoundTooSmall`] if `u_bound` is below the current
    ///   node count.
    pub fn new(tree: DynamicTree, m: u64, w: u64, u_bound: usize) -> Result<Self, ControllerError> {
        if w > m {
            return Err(ControllerError::WasteExceedsBudget { m, w });
        }
        if u_bound < tree.node_count() {
            return Err(ControllerError::BoundTooSmall {
                u: u_bound,
                nodes: tree.node_count(),
            });
        }
        let u = u_bound as u64;
        let phi = (w / (2 * u)).max(1);
        let levels = 64 - u.leading_zeros() + 1;
        Ok(AapsController {
            tree,
            phi,
            levels,
            bins: FxHashMap::default(),
            storage: m,
            m,
            w,
            granted: 0,
            rejected: 0,
            messages: 0,
            moves: 0,
            ledger: RequestLedger::new(),
        })
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    /// Permits granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Messages sent so far (request walks plus permit-package moves).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Move complexity so far (permit-package moves only).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// The permit budget `M`.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// The waste bound `W`.
    pub fn waste(&self) -> u64 {
        self.w
    }

    /// Capacity of a level-`i` bin.
    fn capacity(&self, level: u32) -> u64 {
        self.phi.saturating_mul(1u64 << level.min(63))
    }

    /// Returns `true` if a node at depth `depth` hosts a bin of `level`.
    fn hosts_bin(depth: usize, level: u32) -> bool {
        if level >= 63 {
            return depth == 0;
        }
        depth % (1usize << level) == 0
    }

    /// The nearest ancestor of `node` (possibly itself) hosting a bin of
    /// `level`, together with its hop distance.
    fn nearest_bin_host(&self, node: NodeId, level: u32) -> (NodeId, u64) {
        let mut dist = 0u64;
        for anc in self.tree.ancestors(node) {
            if Self::hosts_bin(self.tree.depth(anc), level) {
                return (anc, dist);
            }
            dist += 1;
        }
        (self.tree.root(), dist)
    }

    /// End-game recall: when the root's storage and the entire supervisor
    /// chain above a requester are dry, permits may still be stranded in
    /// bins elsewhere in the hierarchy. Rejecting in that state violates
    /// liveness as soon as more than `W` permits are stranded, so the
    /// controller recalls one permit from the nearest non-empty bin (paying
    /// the full donor-to-requester detour in messages and moves — this is
    /// exactly the expensive path the paper's controller avoids). Returns
    /// `false` only when every bin is empty.
    fn recall_permit(&mut self, to: NodeId) -> bool {
        // Deterministic donor choice (shallowest first, ties by id/level):
        // HashMap iteration order must never leak into the execution.
        let mut donors: Vec<BinKey> = self
            .bins
            .iter()
            .filter(|&(_, &count)| count > 0)
            .map(|(&key, _)| key)
            .collect();
        donors.sort_by_key(|&(node, level)| (self.tree.depth(node), node.index(), level));
        let Some(&(node, level)) = donors.first() else {
            return false;
        };
        // lint: allow(unwrap) the key was collected from the bins scan above
        *self.bins.get_mut(&(node, level)).expect("donor exists") -= 1;
        let cost = (self.tree.depth(node) + self.tree.depth(to)) as u64;
        self.moves += cost;
        self.messages += cost;
        *self.bins.entry((to, 0)).or_insert(0) += 1;
        true
    }

    /// Ensures the given bin holds at least one permit, refilling it (and its
    /// supervisors) recursively from the root's storage. Returns `false` when
    /// even the root is out of permits.
    fn refill(&mut self, host: NodeId, level: u32) -> bool {
        let key = (host, level);
        if self.bins.get(&key).copied().unwrap_or(0) > 0 {
            return true;
        }
        let want = self.capacity(level);
        // The supervisor is the nearest ancestor (strictly closer to the root
        // unless `host` itself qualifies) hosting a level-(i+1) bin; the root's
        // storage backs the top level.
        if level + 1 >= self.levels || host == self.tree.root() {
            let take = want.min(self.storage);
            if take == 0 {
                return false;
            }
            self.storage -= take;
            let dist = self.tree.depth(host) as u64;
            self.moves += dist;
            self.messages += dist;
            *self.bins.entry(key).or_insert(0) += take;
            return true;
        }
        let (sup_host, sup_dist) = self.nearest_bin_host(host, level + 1);
        if !self.refill(sup_host, level + 1) {
            return false;
        }
        let sup_key = (sup_host, level + 1);
        let available = self.bins.get(&sup_key).copied().unwrap_or(0);
        let take = want.min(available);
        if take == 0 {
            return false;
        }
        // lint: allow(unwrap) `available > 0` proves the key is present
        *self.bins.get_mut(&sup_key).expect("supervisor bin exists") -= take;
        *self.bins.entry(key).or_insert(0) += take;
        self.moves += sup_dist;
        self.messages += sup_dist;
        true
    }

    /// Submits a request arriving at `at` and applies the granted event.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::UnknownNode`] for a request at a missing node;
    /// * [`ControllerError::Tree`] wrapping the refusal when the request asks
    ///   for a change outside the grow-only model (deletion or internal
    ///   insertion).
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<Outcome, ControllerError> {
        if !self.tree.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::AddLeaf | RequestKind::NonTopological => {}
            RequestKind::RemoveSelf | RequestKind::AddInternalAbove(_) => {
                // Outside the AAPS dynamic model.
                return Err(ControllerError::Sim(format!(
                    "the AAPS baseline supports only leaf insertions, not {kind:?}"
                )));
            }
        }
        // The request walks to the nearest level-0 bin.
        let (host, dist) = self.nearest_bin_host(at, 0);
        self.messages += dist;
        // Refill from the supervisor chain; once that is dry, recall from
        // the rest of the hierarchy while the stranded permits still exceed
        // `W` (rejecting earlier would violate liveness — the sweep grid's
        // deep path/spider shapes caught exactly that).
        let have_permit = self.refill(host, 0)
            || (self.uncommitted_permits() > self.w && self.recall_permit(host));
        if !have_permit {
            self.rejected += 1;
            // Reject answer walks back to the requester.
            self.messages += dist;
            return Ok(Outcome::Rejected);
        }
        // lint: allow(unwrap) refill()/recall_permit() returning true stocked the bin
        let bin = self.bins.get_mut(&(host, 0)).expect("bin was refilled");
        *bin -= 1;
        self.granted += 1;
        // The permit travels from the bin to the requester.
        self.moves += dist;
        self.messages += dist;
        let new_node = match kind {
            RequestKind::AddLeaf => Some(self.tree.add_leaf(at)?),
            _ => None,
        };
        Ok(Outcome::Granted {
            serial: None,
            new_node,
        })
    }

    /// Number of permits that are not yet granted (storage plus bins).
    pub fn uncommitted_permits(&self) -> u64 {
        self.storage + self.bins.values().sum::<u64>()
    }

    /// The largest per-node bin footprint in bits: one `O(log M)` counter per
    /// non-empty bin level hosted at the node (plus the root's storage
    /// counter).
    pub fn peak_node_memory_bits(&self) -> u64 {
        let log_m = 64 - self.m.max(1).leading_zeros() as u64;
        let mut per_node: FxHashMap<NodeId, u64> = FxHashMap::default();
        for (&(node, _level), &count) in &self.bins {
            if count > 0 {
                *per_node.entry(node).or_insert(0) += log_m;
            }
        }
        let storage_bits = 64 - self.storage.max(1).leading_zeros() as u64;
        per_node
            .values()
            .copied()
            .max()
            .unwrap_or(0)
            .max(storage_bits)
    }
}

impl Controller for AapsController {
    fn name(&self) -> &'static str {
        "aaps"
    }

    fn budget(&self) -> u64 {
        self.m
    }

    fn waste_bound(&self) -> u64 {
        self.w
    }

    fn supports(&self, kind: RequestKind) -> bool {
        // The AAPS dynamic model: leaf insertions and non-topological events
        // only — exactly the restriction the paper's controller lifts.
        matches!(kind, RequestKind::AddLeaf | RequestKind::NonTopological)
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        if !self.tree.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        if !Controller::supports(self, kind) {
            // Outside the AAPS dynamic model: the ticket resolves to a
            // refusal instead of surfacing as an error (the raw
            // [`AapsController::submit`] keeps erroring for direct callers).
            return Ok(self.ledger.refuse(at, kind));
        }
        let outcome = AapsController::submit(self, at, kind)?;
        let id = self.ledger.issue();
        self.ledger.record(id, at, kind, outcome);
        Ok(id)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.ledger.drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.ledger.records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.ledger.outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted
    }

    fn rejected(&self) -> u64 {
        self.rejected
    }

    fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves,
            messages: self.messages,
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_within_budget_and_conserves_permits() {
        let tree = DynamicTree::with_initial_path(32);
        let m = 40;
        let mut ctrl = AapsController::new(tree, m, 20, 256).unwrap();
        for i in 0..(m as usize + 10) {
            let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
            let at = nodes[(i * 7) % nodes.len()];
            let _ = ctrl.submit(at, RequestKind::AddLeaf).unwrap();
            assert_eq!(ctrl.granted() + ctrl.uncommitted_permits(), m);
        }
        assert!(ctrl.granted() <= m);
        assert!(ctrl.rejected() > 0);
        assert!(ctrl.tree().check_invariants().is_ok());
    }

    #[test]
    fn refuses_deletions_and_internal_insertions() {
        let tree = DynamicTree::with_initial_path(4);
        let mut ctrl = AapsController::new(tree, 10, 5, 32).unwrap();
        let leaf = NodeId::from_index(4);
        assert!(ctrl.submit(leaf, RequestKind::RemoveSelf).is_err());
        assert!(ctrl
            .submit(leaf, RequestKind::AddInternalAbove(NodeId::from_index(3)))
            .is_err());
    }

    #[test]
    fn bin_hosting_follows_depth_divisibility() {
        assert!(AapsController::hosts_bin(0, 5));
        assert!(AapsController::hosts_bin(8, 3));
        assert!(!AapsController::hosts_bin(6, 2));
        assert!(AapsController::hosts_bin(6, 1));
    }

    #[test]
    fn requests_near_prepositioned_bins_become_cheap() {
        // After the first (expensive) request fills the bins along a path,
        // subsequent requests at the same node are much cheaper.
        let tree = DynamicTree::with_initial_path(64);
        let deep = NodeId::from_index(64);
        let mut ctrl = AapsController::new(tree, 1000, 500, 256).unwrap();
        ctrl.submit(deep, RequestKind::NonTopological).unwrap();
        let first = ctrl.messages();
        ctrl.submit(deep, RequestKind::NonTopological).unwrap();
        let second = ctrl.messages() - first;
        assert!(
            second < first,
            "second request ({second}) should be cheaper than the first ({first})"
        );
    }

    #[test]
    fn deep_paths_do_not_strand_more_than_w_permits() {
        // Regression: on deep, narrow shapes the supervisor chain above a
        // requester runs dry while permits sit stranded in bins on other
        // branches; rejecting there violated liveness (granted < M − W).
        // The end-game recall must keep granting until waste is within W.
        for (len, m, w) in [(23usize, 48u64, 12u64), (40, 64, 8), (16, 30, 1)] {
            let tree = DynamicTree::with_initial_path(len);
            let mut ctrl = AapsController::new(tree, m, w, 256).unwrap();
            let mut rejected = 0u64;
            for i in 0..(3 * m as usize) {
                let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
                let at = nodes[(i * 11) % nodes.len()];
                match ctrl.submit(at, RequestKind::NonTopological).unwrap() {
                    Outcome::Granted { .. } => {}
                    Outcome::Rejected => rejected += 1,
                    Outcome::Refused => unreachable!("events are inside the AAPS model"),
                }
                // Permit conservation holds throughout, recall included.
                assert_eq!(ctrl.granted() + ctrl.uncommitted_permits(), m);
            }
            assert!(rejected > 0, "len={len}: budget must be exhausted");
            assert!(
                ctrl.granted() >= m - w,
                "len={len}: liveness violated — granted {} < M − W = {}",
                ctrl.granted(),
                m - w
            );
        }
    }

    #[test]
    fn rejects_only_after_nearly_exhausting_the_budget() {
        let tree = DynamicTree::with_initial_star(8);
        let (m, w) = (20, 10);
        let mut ctrl = AapsController::new(tree, m, w, 64).unwrap();
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let mut granted = 0;
        let mut rejected = 0;
        for i in 0..60 {
            match ctrl
                .submit(nodes[i % nodes.len()], RequestKind::NonTopological)
                .unwrap()
            {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected => rejected += 1,
                Outcome::Refused => unreachable!("events are inside the AAPS model"),
            }
        }
        assert!(granted <= m);
        assert!(rejected > 0);
        assert!(granted >= m - w, "liveness-like guarantee of the baseline");
    }
}

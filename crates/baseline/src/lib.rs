//! # dcn-baseline — comparison controllers
//!
//! The paper's headline claim is comparative: the new controller handles a
//! strictly more general dynamic model (insertions *and deletions* of leaves
//! *and internal nodes*) while never using more messages than the controller
//! of Afek, Awerbuch, Plotkin and Saks (AAPS, *Local management of a global
//! resource in a communication network*, J. ACM 1996), which only supports
//! leaf insertions; and both are far cheaper than the naive approach in which
//! every request travels to the root.
//!
//! This crate provides the two comparators used by the experiment harness:
//!
//! * [`TrivialController`] — every request walks to the root and a permit
//!   walks back: `Θ(depth)` messages per request, the paper's `Ω(nM)` strawman;
//! * [`AapsController`] — a bin-hierarchy controller in the spirit of AAPS:
//!   permits are pre-positioned in bins whose level and size are determined by
//!   the node's depth, requests draw from the nearest level-0 bin, and empty
//!   bins replenish from their supervisor bin. It supports only the AAPS
//!   dynamic model (leaf insertions and non-topological events); requests for
//!   deletions or internal insertions are refused, which is exactly the
//!   limitation the paper's controller removes.
//!
//! Both baselines expose the same submission API and the same cost counters
//! (messages and permit moves) as the real controller so that experiment T4
//! can compare them row by row. Since the original AAPS implementation is not
//! publicly available, [`AapsController`] is a faithful-in-spirit
//! re-implementation calibrated to reproduce the *shape* of its complexity
//! (`O(N log² N · log(M/(W+1)))` messages on grow-only workloads), as recorded
//! in DESIGN.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aaps;
mod trivial;

pub use aaps::AapsController;
pub use trivial::TrivialController;

pub use dcn_controller::{
    Controller, ControllerError, ControllerEvent, ControllerMetrics, Outcome, Progress, RequestId,
    RequestKind, RequestLedger, RequestRecord,
};
pub use dcn_tree::{DynamicTree, NodeId};

/// Error returned when a baseline is asked to perform an operation outside
/// the dynamic model it supports.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnsupportedOperation {
    /// The request kind that was refused.
    pub kind: RequestKind,
}

impl std::fmt::Display for UnsupportedOperation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "the baseline controller does not support {:?} (grow-only dynamic model)",
            self.kind
        )
    }
}

impl std::error::Error for UnsupportedOperation {}

//! The trivial root-walk controller.

use dcn_controller::{
    Controller, ControllerError, ControllerEvent, ControllerMetrics, Outcome, RequestId,
    RequestKind, RequestLedger, RequestRecord,
};
use dcn_tree::{DynamicTree, NodeId};

/// The naive (M, W)-Controller: every request sends a message up to the root
/// and the root sends a permit (or a reject) back down the same path.
///
/// Its answer quality is perfect (`W = 0`: exactly `M` permits are granted
/// before the first reject), but each request costs `2·depth(u)` messages, so
/// the total message complexity is `Ω(n)` per request — the lower bound the
/// paper quotes for the strawman approach. It supports the full dynamic model
/// (the root always knows how many permits are left).
#[derive(Debug)]
pub struct TrivialController {
    tree: DynamicTree,
    remaining: u64,
    m: u64,
    granted: u64,
    rejected: u64,
    messages: u64,
    moves: u64,
    ledger: RequestLedger,
}

impl TrivialController {
    /// Creates a trivial controller with budget `m` over `tree`.
    pub fn new(tree: DynamicTree, m: u64) -> Self {
        TrivialController {
            tree,
            remaining: m,
            m,
            granted: 0,
            rejected: 0,
            messages: 0,
            moves: 0,
            ledger: RequestLedger::new(),
        }
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    /// The permit budget `M`.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// Permits granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Messages sent so far (`2·depth(u)` per request: the request walks up,
    /// the answer walks down).
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Move complexity so far (each granted permit travels `depth(u)` hops).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Submits a request arriving at `at` and applies the granted event.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::UnknownNode`] for a request at a missing node;
    /// * [`ControllerError::CannotRemoveRoot`] /
    ///   [`ControllerError::NotParentOf`] for malformed topological requests.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<Outcome, ControllerError> {
        if !self.tree.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::RemoveSelf if at == self.tree.root() => {
                return Err(ControllerError::CannotRemoveRoot)
            }
            RequestKind::AddInternalAbove(child) if self.tree.parent(child) != Some(at) => {
                return Err(ControllerError::NotParentOf { at, child })
            }
            _ => {}
        }
        let depth = self.tree.depth(at) as u64;
        self.messages += 2 * depth;
        if self.remaining == 0 {
            self.rejected += 1;
            return Ok(Outcome::Rejected);
        }
        self.remaining -= 1;
        self.granted += 1;
        self.moves += depth;
        let new_node = match kind {
            RequestKind::NonTopological => None,
            RequestKind::AddLeaf => Some(self.tree.add_leaf(at)?),
            RequestKind::AddInternalAbove(child) => Some(self.tree.add_internal_above(child)?),
            RequestKind::RemoveSelf => {
                self.tree.remove(at)?;
                None
            }
        };
        Ok(Outcome::Granted {
            serial: Some(self.m - self.remaining),
            new_node,
        })
    }
}

impl Controller for TrivialController {
    fn name(&self) -> &'static str {
        "trivial"
    }

    fn budget(&self) -> u64 {
        self.m
    }

    fn waste_bound(&self) -> u64 {
        // The root always knows the exact remaining budget, so nothing is
        // ever wasted.
        0
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        let outcome = TrivialController::submit(self, at, kind)?;
        let id = self.ledger.issue();
        self.ledger.record(id, at, kind, outcome);
        Ok(id)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.ledger.drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.ledger.records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.ledger.outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted
    }

    fn rejected(&self) -> u64 {
        self.rejected
    }

    fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves,
            messages: self.messages,
            // The root stores the remaining-budget counter; other nodes are
            // stateless.
            peak_node_memory_bits: 64 - self.m.max(1).leading_zeros() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_exactly_m_then_rejects() {
        let tree = DynamicTree::with_initial_star(10);
        let mut ctrl = TrivialController::new(tree, 5);
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let mut granted = 0;
        for i in 0..12 {
            if ctrl
                .submit(nodes[i % nodes.len()], RequestKind::NonTopological)
                .unwrap()
                .is_granted()
            {
                granted += 1;
            }
        }
        assert_eq!(granted, 5);
        assert_eq!(ctrl.rejected(), 7);
    }

    #[test]
    fn messages_scale_with_depth() {
        let tree = DynamicTree::with_initial_path(100);
        let deep = NodeId::from_index(100);
        let mut ctrl = TrivialController::new(tree, 10);
        ctrl.submit(deep, RequestKind::NonTopological).unwrap();
        assert_eq!(ctrl.messages(), 200);
        assert_eq!(ctrl.moves(), 100);
    }

    #[test]
    fn supports_the_full_dynamic_model() {
        let tree = DynamicTree::with_initial_path(4);
        let mut ctrl = TrivialController::new(tree, 10);
        let leaf = NodeId::from_index(4);
        let out = ctrl.submit(leaf, RequestKind::AddLeaf).unwrap();
        let new = match out {
            Outcome::Granted { new_node, .. } => new_node.unwrap(),
            Outcome::Rejected | Outcome::Refused => panic!("should grant"),
        };
        ctrl.submit(leaf, RequestKind::AddInternalAbove(new))
            .unwrap();
        // `leaf` is now an internal node; the trivial controller can still
        // remove it (it supports the full dynamic model).
        ctrl.submit(leaf, RequestKind::RemoveSelf).unwrap();
        assert!(!ctrl.tree().contains(leaf));
        assert!(ctrl.tree().check_invariants().is_ok());
    }

    #[test]
    fn validation_mirrors_the_real_controller() {
        let tree = DynamicTree::with_initial_star(3);
        let mut ctrl = TrivialController::new(tree, 10);
        let root = ctrl.tree().root();
        assert!(matches!(
            ctrl.submit(root, RequestKind::RemoveSelf),
            Err(ControllerError::CannotRemoveRoot)
        ));
        assert!(matches!(
            ctrl.submit(NodeId::from_index(77), RequestKind::NonTopological),
            Err(ControllerError::UnknownNode(_))
        ));
    }
}

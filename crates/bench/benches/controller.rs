//! Micro-benchmarks: one group per experiment family, on reduced workloads
//! (the full sweeps live in the `exp_*` harness binaries).
//!
//! The build environment has no criterion, so this is a `harness = false`
//! bench with a small hand-rolled timing loop: each workload is warmed up
//! once and then timed over a fixed number of iterations, reporting the mean
//! and min wall-clock time per iteration. Run with `cargo bench`.

use dcn_bench::{run_cells, run_grid};
use dcn_controller::centralized::CentralizedController;
use dcn_controller::RequestKind;
use dcn_estimator::{HeavyChildDecomposition, NameAssigner, SizeEstimator};
use dcn_simnet::SimConfig;
use dcn_tree::NodeId;
use dcn_workload::{
    build_tree, ArrivalMode, CellKind, ChurnGenerator, ChurnModel, ChurnOp, MwBudget, Placement,
    Scenario, SweepCell, SweepGrid, TreeShape,
};
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over `iters` iterations (after one warm-up) and prints a row.
fn bench(name: &str, iters: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut total = std::time::Duration::ZERO;
    let mut best = std::time::Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        let elapsed = start.elapsed();
        total += elapsed;
        best = best.min(elapsed);
    }
    let mean = total / iters;
    println!("{name:<44} {iters:>4} iters   mean {mean:>12.2?}   min {best:>12.2?}");
}

fn scenario(
    shape: TreeShape,
    churn: ChurnModel,
    requests: usize,
    m: u64,
    w: u64,
    seed: u64,
) -> Scenario {
    Scenario {
        name: "bench".to_string(),
        shape,
        churn,
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests,
        m,
        w,
        seed,
    }
}

/// Runs one (family, scenario) pair through the shared sweep engine on a
/// single worker and returns its report's headline counter.
fn engine_cell(family: &str, s: &Scenario) -> (u64, u64) {
    let cells = vec![SweepCell {
        index: 0,
        family: family.to_string(),
        kind: CellKind::Controller,
        scenario: s.clone(),
    }];
    let report = run_cells("bench", cells, 1);
    let r = report.cells[0].run_report().expect("bench cell runs");
    (r.moves, r.messages)
}

/// T1: centralized controller, mixed churn, per network size (driven through
/// the sweep engine — the same code path the harness binaries use).
fn bench_centralized_moves() {
    for &n in &[64usize, 256] {
        let s = scenario(
            TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 1,
            },
            ChurnModel::default_mixed(),
            n,
            n as u64,
            (n as u64 / 4).max(1),
            1,
        );
        bench(&format!("t1_centralized/{n}"), 10, || {
            black_box(engine_cell("iterated", &s).0);
        });
    }
}

/// T3: distributed controller end-to-end, per network size.
fn bench_distributed_messages() {
    for &n in &[32usize, 128] {
        let s = scenario(
            TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 2,
            },
            ChurnModel::default_mixed(),
            n,
            n as u64,
            (n as u64 / 4).max(1),
            2,
        );
        bench(&format!("t3_distributed/{n}"), 10, || {
            black_box(engine_cell("distributed", &s).1);
        });
    }
}

/// Sweep-engine throughput: a 24-cell diversified grid end-to-end, serial vs
/// the worker pool (the speedup column of every future scaling PR).
fn bench_sweep_grid() {
    let grid = SweepGrid {
        name: "bench-grid".to_string(),
        families: ["iterated", "trivial", "aaps"].map(String::from).to_vec(),
        apps: vec![],
        shapes: vec![
            TreeShape::Star { nodes: 31 },
            TreeShape::Path { nodes: 31 },
            TreeShape::PreferentialAttachment { nodes: 31, seed: 5 },
            TreeShape::Spider {
                legs: 4,
                leg_length: 8,
            },
        ],
        arrivals: vec![ArrivalMode::Batch],
        shards: vec![],
        churns: vec![
            ChurnModel::GrowOnly,
            ChurnModel::BurstyDeepLeaf { burst: 5 },
        ],
        placements: vec![Placement::Uniform],
        budgets: vec![MwBudget { m: 64, w: 16 }],
        requests: 48,
        replicates: 1,
        base_seed: 17,
    };
    for workers in [1usize, 4] {
        bench(&format!("sweep_grid/24cells_w{workers}"), 5, || {
            black_box(run_grid(&grid, workers).cells.len());
        });
    }
}

/// F1: the size-estimation protocol under churn.
fn bench_size_estimation() {
    for &n in &[64usize, 256] {
        bench(&format!("f1_size_estimation/{n}"), 10, || {
            let tree = build_tree(TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 3,
            });
            let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0).expect("params");
            let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 3);
            for _ in 0..6 {
                let ops: Vec<_> = gen
                    .batch(est.tree(), 10)
                    .iter()
                    .map(ChurnOp::to_request)
                    .collect();
                est.run_batch(&ops).expect("batch");
            }
            black_box(est.messages());
        });
    }
}

/// F2: the name-assignment protocol under churn.
fn bench_name_assignment() {
    bench("f2_name_assignment/n=128", 10, || {
        let tree = build_tree(TreeShape::RandomRecursive {
            nodes: 127,
            seed: 4,
        });
        let mut names = NameAssigner::new(SimConfig::new(4), tree).expect("params");
        let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 4);
        for _ in 0..5 {
            let ops: Vec<_> = gen
                .batch(names.tree(), 8)
                .iter()
                .map(ChurnOp::to_request)
                .collect();
            names.run_batch(&ops).expect("batch");
        }
        black_box(names.messages());
    });
}

/// F3: heavy-child decomposition maintenance.
fn bench_heavy_child() {
    bench("f3_heavy_child/n=64_growth", 10, || {
        let tree = build_tree(TreeShape::Star { nodes: 63 });
        let mut decomposition =
            HeavyChildDecomposition::new(SimConfig::new(5), tree).expect("params");
        let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 5);
        for _ in 0..5 {
            let ops: Vec<_> = gen
                .batch(decomposition.tree(), 10)
                .iter()
                .map(ChurnOp::to_request)
                .collect();
            decomposition.run_batch(&ops).expect("batch");
        }
        black_box(decomposition.max_light_ancestors());
    });
}

/// F4/F5 micro: pure grant path of the base centralized controller.
fn bench_single_grant() {
    bench("f5_grant_path/deep_request_path_n=512", 20, || {
        let tree = build_tree(TreeShape::Path { nodes: 511 });
        let mut ctrl = CentralizedController::new(tree, 64, 32, 1024).expect("params");
        let deep = NodeId::from_index(511);
        black_box(
            ctrl.submit(deep, RequestKind::NonTopological)
                .expect("grant"),
        );
    });
}

fn main() {
    println!("dcn micro-benchmarks (hand-rolled harness; no criterion in this environment)");
    bench_centralized_moves();
    bench_distributed_messages();
    bench_sweep_grid();
    bench_size_estimation();
    bench_name_assignment();
    bench_heavy_child();
    bench_single_grant();
}

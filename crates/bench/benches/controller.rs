//! Criterion micro-benchmarks: one group per experiment family, on reduced
//! workloads (the full sweeps live in the `exp_*` harness binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_bench::{op_to_request, run_distributed};
use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::RequestKind;
use dcn_estimator::{HeavyChildDecomposition, NameAssigner, SizeEstimator};
use dcn_simnet::SimConfig;
use dcn_tree::NodeId;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};
use std::hint::black_box;

/// T1: centralized controller, mixed churn, per network size.
fn bench_centralized_moves(c: &mut Criterion) {
    let mut group = c.benchmark_group("t1_centralized");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let tree = build_tree(TreeShape::RandomRecursive { nodes: n - 1, seed: 1 });
                let m = n as u64;
                let mut ctrl =
                    IteratedController::new(tree, m, (m / 4).max(1), 4 * n).expect("params");
                let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 1);
                let mut submitted = 0;
                while submitted < n {
                    let Some(op) = gen.next_op(ctrl.tree()) else { continue };
                    let (at, kind) = op_to_request(&op);
                    if ctrl.submit(at, kind).is_ok() {
                        submitted += 1;
                    }
                }
                black_box(ctrl.moves())
            });
        });
    }
    group.finish();
}

/// T3: distributed controller end-to-end, per network size.
fn bench_distributed_messages(c: &mut Criterion) {
    let mut group = c.benchmark_group("t3_distributed");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let stats = run_distributed(
                    2,
                    TreeShape::RandomRecursive { nodes: n - 1, seed: 2 },
                    ChurnModel::default_mixed(),
                    n,
                    16,
                    n as u64,
                    (n as u64 / 4).max(1),
                );
                black_box(stats.messages)
            });
        });
    }
    group.finish();
}

/// F1: the size-estimation protocol under churn.
fn bench_size_estimation(c: &mut Criterion) {
    let mut group = c.benchmark_group("f1_size_estimation");
    group.sample_size(10);
    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let tree = build_tree(TreeShape::RandomRecursive { nodes: n - 1, seed: 3 });
                let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0).expect("params");
                let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 3);
                for _ in 0..6 {
                    let ops: Vec<_> =
                        gen.batch(est.tree(), 10).iter().map(op_to_request).collect();
                    est.run_batch(&ops).expect("batch");
                }
                black_box(est.messages())
            });
        });
    }
    group.finish();
}

/// F2: the name-assignment protocol under churn.
fn bench_name_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_name_assignment");
    group.sample_size(10);
    group.bench_function("n=128", |b| {
        b.iter(|| {
            let tree = build_tree(TreeShape::RandomRecursive { nodes: 127, seed: 4 });
            let mut names = NameAssigner::new(SimConfig::new(4), tree).expect("params");
            let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 4);
            for _ in 0..5 {
                let ops: Vec<_> = gen
                    .batch(names.tree(), 8)
                    .iter()
                    .map(op_to_request)
                    .collect();
                names.run_batch(&ops).expect("batch");
            }
            black_box(names.messages())
        });
    });
    group.finish();
}

/// F3: heavy-child decomposition maintenance.
fn bench_heavy_child(c: &mut Criterion) {
    let mut group = c.benchmark_group("f3_heavy_child");
    group.sample_size(10);
    group.bench_function("n=64_growth", |b| {
        b.iter(|| {
            let tree = build_tree(TreeShape::Star { nodes: 63 });
            let mut decomposition =
                HeavyChildDecomposition::new(SimConfig::new(5), tree).expect("params");
            let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 5);
            for _ in 0..5 {
                let ops: Vec<_> = gen
                    .batch(decomposition.tree(), 10)
                    .iter()
                    .map(op_to_request)
                    .collect();
                decomposition.run_batch(&ops).expect("batch");
            }
            black_box(decomposition.max_light_ancestors())
        });
    });
    group.finish();
}

/// F4/F5 micro: pure grant path of the base centralized controller.
fn bench_single_grant(c: &mut Criterion) {
    let mut group = c.benchmark_group("f5_grant_path");
    group.sample_size(20);
    group.bench_function("deep_request_path_n=512", |b| {
        b.iter(|| {
            let tree = build_tree(TreeShape::Path { nodes: 511 });
            let mut ctrl = CentralizedController::new(tree, 64, 32, 1024).expect("params");
            let deep = NodeId::from_index(511);
            black_box(ctrl.submit(deep, RequestKind::NonTopological).expect("grant"))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_centralized_moves,
    bench_distributed_messages,
    bench_size_estimation,
    bench_name_assignment,
    bench_heavy_child,
    bench_single_grant
);
criterion_main!(benches);

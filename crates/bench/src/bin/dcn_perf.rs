//! `dcn_perf` — the pinned wall-clock performance suite.
//!
//! Every other harness in this crate measures *simulated* cost (messages,
//! moves, memory bits); this one measures the simulator itself: wall time and
//! throughput over a fixed scenario suite, so that storage/allocation changes
//! in the hot paths show up as a recorded trajectory (`BENCH_<pr>.json` at
//! the repo root, one point per PR).
//!
//! The suite is pinned — same shapes, same seeds, same budgets on every run —
//! and covers all six controller families plus the six §5 applications over
//! three tree shapes, plus the distributed-family quick-sweep grid (the
//! scenario the PR-5 throughput target is stated against). Each entry runs
//! `--reps` times (default 3) and reports the best wall time; the simulated
//! work per entry is asserted identical across reps, so events/sec ratios
//! between two builds are pure wall-time ratios.
//!
//! "Events" is the unit of simulated work: messages sent plus requests
//! answered. It is fully determined by the scenario (byte-identical sweeps
//! guarantee it), which is what makes the throughput comparable across
//! builds.
//!
//! Two entries cover the `dcn-serve` wire-protocol stack. `serve:loopback`
//! drives the full protocol path — line parsing, frame dispatch, ticket
//! routing, event streaming — through the deterministic loopback transport,
//! so protocol overhead is measured on the same wall-clock footing as the
//! controller hot loops (and sits under the same regression gate). With
//! `--serve-report PATH`, a `dcn-load` report from a real TCP run is
//! ingested as a `serve:tcp-load` entry and embedded verbatim under the
//! snapshot's `"serve"` key — that one is wall-clock of a socketed system
//! under load, recorded for the trajectory rather than gated.
//!
//! A prior snapshot can be diffed against the fresh run with `--compare`:
//! per-entry speedup ratios are printed (matched on name and scenario), any
//! entry more than 10% slower than the baseline — beyond a 0.25ms absolute
//! noise floor that keeps sub-100µs entries from flagging on timer jitter —
//! is flagged as a regression, and the process exits non-zero if one is
//! found — before/after claims in EXPERIMENTS.md are mechanically produced,
//! not hand-computed.
//!
//! ```text
//! dcn_perf [--quick] [--reps N] [--out PATH] [--compare BASELINE.json]
//!          [--serve-report LOAD.json]
//! # default PATH: BENCH_9.json
//! ```

use dcn_bench::compare::{compare, parse_bench, BenchEntry, BenchFile};
use dcn_bench::{
    quick_grid, run_app_family, run_family, run_grid, AppFamily, Family, DEFAULT_SWEEP_SEED,
};
use dcn_controller::ShardedController;
use dcn_server::{Loopback, ServeConfig};
use dcn_simnet::SimConfig;
use dcn_tree::{DynamicTree, NodeId};
use dcn_workload::json::{self, Value};
use dcn_workload::{
    build_tree, ArrivalMode, ChurnModel, Placement, RequestKind, Scenario, SweepGrid, TreeShape,
};
use std::process::ExitCode;
use std::time::Instant;

/// One measured row of the suite.
struct Entry {
    /// `controller:<family>`, `app:<family>` or `sweep:<grid>`.
    name: String,
    /// The shape (or grid) the entry ran over.
    scenario: String,
    /// Best wall time over the reps, in milliseconds.
    wall_ms: f64,
    /// Simulated work: messages + answered requests (identical across reps).
    events: u64,
    /// `events / best wall time`.
    events_per_sec: f64,
}

/// Times `work` `reps` times; returns (best wall seconds, events), asserting
/// the event count is rep-invariant (determinism is what makes the numbers
/// comparable).
fn time_best(reps: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let e = work();
        let secs = start.elapsed().as_secs_f64();
        if let Some(prev) = events {
            assert_eq!(prev, e, "simulated work must be identical across reps");
        }
        events = Some(e);
        best = best.min(secs);
    }
    (best, events.unwrap_or(0))
}

/// The three pinned shapes of the suite.
fn shapes(quick: bool) -> Vec<(&'static str, TreeShape)> {
    let n = if quick { 24 } else { 48 };
    vec![
        ("star", TreeShape::Star { nodes: n }),
        ("path", TreeShape::Path { nodes: n }),
        (
            "pref-attach",
            TreeShape::PreferentialAttachment { nodes: n, seed: 7 },
        ),
    ]
}

/// The pinned per-shape scenario (mixed churn, batch arrivals, fixed seed).
fn scenario(label: &str, shape: TreeShape, quick: bool) -> Scenario {
    Scenario {
        name: format!("perf-{label}"),
        shape,
        churn: ChurnModel::default_mixed(),
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests: if quick { 24 } else { 64 },
        m: if quick { 48 } else { 96 },
        w: if quick { 12 } else { 24 },
        seed: 5,
    }
}

/// The distributed-family quick-sweep grid: the shared
/// [`dcn_bench::quick_grid`] restricted to the distributed family (the PR-5
/// throughput target is stated against this grid). Single-worker so the
/// measurement is a pure hot-loop time, not a scheduling artifact.
fn distributed_quick_grid() -> SweepGrid {
    let mut grid = quick_grid(DEFAULT_SWEEP_SEED, 1, false);
    grid.name = "perf-distributed-quick".to_string();
    grid.families = vec!["distributed".to_string()];
    grid
}

/// One `controller:sharded` entry: stands up a [`ShardedController`] with
/// `k` shards over a pre-built ≥1M-node path and measures how fast the
/// running federation *answers tickets* submitted deep in the tree.
///
/// `events` counts answered tickets (granted + rejected), so
/// `events_per_sec` is controller-event throughput — the rate at which
/// `drain_events` observations are produced. That is where sharding's
/// architectural win lives: a single controller must walk a permit request
/// from its arrival node all the way to the global root (O(depth) messages
/// per ticket — the deep quartile of a 1M-node path), while the carved
/// federation answers the same ticket against its region's slice at the
/// region proxy root, bounding the walk by the region depth (≈ n/4k). The
/// per-message simulator cost is identical either way (~15M simulator
/// events/s on the reference box at every k), so the ticket-throughput
/// ratio directly exposes the message-cost reduction and is
/// machine-independent.
///
/// Controller standup (carve + per-shard construction) happens outside the
/// timer: the entry measures steady serving, not setup. Budget slices are
/// sized exchange-free (`M = 16 × requests`, so `M_i ≥ 2 × requests` even
/// if every request lands in one shard), and the zero-wave/all-granted
/// outcome is asserted, which also pins global safety (Σ granted ≤ M) per
/// rep.
fn sharded_entry(
    k: usize,
    base: &DynamicTree,
    ids: &[NodeId],
    requests: u64,
    reps: usize,
) -> Entry {
    let m = 16 * requests;
    let w = m / 4;
    let u_bound = base.node_count() + m as usize + 2;
    let mut best = f64::INFINITY;
    let mut events_seen = None;
    for _ in 0..reps.max(1) {
        let tree = base.clone();
        let mut ctrl = ShardedController::new(SimConfig::new(11), tree, m, w, u_bound, k)
            .expect("pinned sharded parameters are valid");
        let start = Instant::now();
        for i in 0..requests as usize {
            // Deep-quartile placement: `ids` is in creation order, which on
            // a path is depth order, so these arrival nodes sit at depths
            // in [3n/4, n).
            let at = ids[ids.len() - 1 - ((i * 7919) % (ids.len() / 4))];
            ctrl.submit(at, RequestKind::NonTopological)
                .expect("pinned submissions target live nodes");
        }
        ctrl.run_to_quiescence()
            .expect("pinned drive reaches quiescence");
        let secs = start.elapsed().as_secs_f64();
        ctrl.drain_events();
        assert_eq!(ctrl.granted(), requests, "exchange-free sizing grants all");
        assert_eq!(
            ctrl.waves(),
            0,
            "exchange-free sizing never triggers a wave"
        );
        let answers = ctrl.granted() + ctrl.rejected();
        if let Some(prev) = events_seen {
            assert_eq!(prev, answers, "answered work must be identical across reps");
        }
        events_seen = Some(answers);
        best = best.min(secs);
    }
    let events = events_seen.unwrap_or(0);
    Entry {
        name: "controller:sharded".to_string(),
        scenario: format!("k{k}"),
        wall_ms: best * 1e3,
        events,
        events_per_sec: events as f64 / best,
    }
}

/// Drives `requests` tagged permit submissions through the full wire
/// protocol over the loopback transport — encode, length-check, parse,
/// dispatch, ticket-route, pump, stream — and returns the protocol work
/// done (request lines handled plus reply/event frames produced). All the
/// work is deterministic, so the count is rep-invariant like every other
/// entry.
fn serve_loopback_events(requests: u64) -> u64 {
    // Budget == request count: every submission grants, so the measured
    // path is the steady serving state, not the reject tail. Events are
    // non-topological, so the 48-leaf star (and the node bound) is static.
    let config = ServeConfig::new(Family::Centralized, requests, 64)
        .with_shape(TreeShape::Star { nodes: 48 })
        .with_u_bound(64);
    let mut lb = Loopback::new(config).expect("loopback server");
    let client = lb.connect();
    lb.send(client, r#"{"op": "hello", "proto": 1}"#);
    lb.send(client, r#"{"op": "subscribe"}"#);
    let mut frames = lb.recv(client).len() as u64;
    for i in 0..requests {
        let node = i % 49;
        lb.send(
            client,
            &format!(r#"{{"op": "submit", "kind": "event", "node": {node}, "tag": {i}}}"#),
        );
        // Pump in slices like the TCP engine thread does between inbox
        // drains, rather than once at the end.
        if i % 64 == 63 {
            lb.run_to_quiescence();
            frames += lb.recv(client).len() as u64;
        }
    }
    lb.run_to_quiescence();
    frames += lb.recv(client).len() as u64;
    let stats = lb.engine().stats();
    assert_eq!(stats.granted, requests, "every submission grants");
    assert_eq!(stats.protocol_errors, 0);
    // Lines handled (hello + subscribe + submits) plus frames out.
    2 + requests + frames
}

/// A numeric field of the `dcn-load` report (integers and floats both
/// appear: counters vs. the elapsed/throughput columns).
fn report_num(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key)? {
        Value::Int(n) => Ok(*n as f64),
        Value::Num(x) => Ok(*x),
        other => Err(format!(
            "report field {key}: expected a number, found {other:?}"
        )),
    }
}

/// Ingests a `dcn-load --report` file as the `serve:tcp-load` entry.
fn serve_report_entry(text: &str) -> Result<Entry, String> {
    let v = json::parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    let tool = v.get("tool")?.as_str()?;
    if tool != "dcn-load" {
        return Err(format!("expected a dcn-load report, found tool {tool:?}"));
    }
    let clients = v.get("clients")?.as_u64()?;
    let answered = v.get("answered")?.as_u64()?;
    let wall_ms = report_num(&v, "elapsed_ms")?;
    let rps = report_num(&v, "requests_per_sec")?;
    Ok(Entry {
        name: "serve:tcp-load".to_string(),
        scenario: format!("{clients}-client"),
        wall_ms,
        events: answered,
        events_per_sec: rps,
    })
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(entries: &[Entry], reps: usize, quick: bool, serve_report: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": 9,\n");
    out.push_str("  \"suite\": \"dcn_perf pinned scenario suite\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    let total_events: u64 = entries.iter().map(|e| e.events).sum();
    let total_wall: f64 = entries.iter().map(|e| e.wall_ms).sum();
    out.push_str(&format!("  \"total_wall_ms\": {},\n", json_num(total_wall)));
    out.push_str(&format!("  \"total_events\": {total_events},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"scenario\": {}, \"wall_ms\": {}, \"events\": {}, \"events_per_sec\": {}}}{}\n",
            dcn_workload::json_quote(&e.name),
            dcn_workload::json_quote(&e.scenario),
            json_num(e.wall_ms),
            e.events,
            json_num(e.events_per_sec),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some(report) = serve_report {
        // The raw dcn-load report, embedded verbatim (it is validated
        // JSON): the snapshot records exactly what was measured.
        out.push_str(",\n  \"serve\": ");
        out.push_str(report.trim());
    }
    out.push_str("\n}\n");
    out
}

struct Args {
    quick: bool,
    reps: usize,
    out: String,
    compare: Option<String>,
    serve_report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        reps: 3,
        out: "BENCH_9.json".to_string(),
        compare: None,
        serve_report: None,
    };
    // An explicit --reps wins over --quick's reps=1 default regardless of
    // the order the two flags appear in.
    let mut reps_explicit = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => {
                args.quick = true;
                if !reps_explicit {
                    args.reps = 1;
                }
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                reps_explicit = true;
            }
            "--out" => args.out = value("--out")?,
            "--compare" => args.compare = Some(value("--compare")?),
            "--serve-report" => args.serve_report = Some(value("--serve-report")?),
            "--help" | "-h" => {
                println!(
                    "usage: dcn_perf [--quick] [--reps N] [--out PATH] \
                     [--compare BASELINE.json] [--serve-report LOAD.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dcn_perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut entries: Vec<Entry> = Vec::new();

    for (label, shape) in shapes(args.quick) {
        let sc = scenario(label, shape, args.quick);
        for family in Family::ALL {
            let (secs, events) = time_best(args.reps, || {
                let report = run_family(family, &sc);
                report.messages + report.granted + report.rejected + report.refused
            });
            entries.push(Entry {
                name: format!("controller:{}", family.name()),
                scenario: label.to_string(),
                wall_ms: secs * 1e3,
                events,
                events_per_sec: events as f64 / secs,
            });
        }
        for family in AppFamily::ALL {
            let (secs, events) = time_best(args.reps, || {
                let report = run_app_family(family, &sc);
                report.messages + report.granted + report.rejected
            });
            entries.push(Entry {
                name: format!("app:{}", family.name()),
                scenario: label.to_string(),
                wall_ms: secs * 1e3,
                events,
                events_per_sec: events as f64 / secs,
            });
        }
    }

    let grid = distributed_quick_grid();
    let (secs, events) = time_best(args.reps, || {
        let report = run_grid(&grid, 1);
        assert_eq!(report.error_count() + report.violation_count(), 0);
        report
            .cells
            .iter()
            .filter_map(|c| c.report.as_ref().ok())
            .filter_map(|r| r.controller())
            .map(|r| r.messages + r.granted + r.rejected + r.refused)
            .sum()
    });
    entries.push(Entry {
        name: "sweep:distributed-quick".to_string(),
        scenario: grid.name.clone(),
        wall_ms: secs * 1e3,
        events,
        events_per_sec: events as f64 / secs,
    });

    // The sharded tentpole: k ∈ {1, 4, 8} over a pinned ≥1M-node path
    // (full mode), deep-quartile exchange-free ticket stream. The k=1 entry
    // is the single-controller baseline the scaling claim in EXPERIMENTS.md
    // is stated against: its permit walks span the whole path, while each
    // shard bounds them at its region proxy root.
    let shard_nodes = if args.quick { 65_537 } else { 1_048_577 };
    let shard_requests: u64 = if args.quick { 8 } else { 16 };
    let shard_base = build_tree(TreeShape::Path {
        nodes: shard_nodes - 1,
    });
    let shard_ids: Vec<NodeId> = shard_base.nodes().collect();
    for k in [1usize, 4, 8] {
        entries.push(sharded_entry(
            k,
            &shard_base,
            &shard_ids,
            shard_requests,
            args.reps,
        ));
    }
    drop(shard_ids);
    drop(shard_base);

    // The wire-protocol stack, on the same deterministic footing: 120k
    // requests through the loopback server (4k in quick mode).
    let serve_requests: u64 = if args.quick { 4_000 } else { 120_000 };
    let (secs, events) = time_best(args.reps, || serve_loopback_events(serve_requests));
    entries.push(Entry {
        name: "serve:loopback".to_string(),
        scenario: format!("{serve_requests}-req"),
        wall_ms: secs * 1e3,
        events,
        events_per_sec: events as f64 / secs,
    });

    // A recorded TCP load run, if one was handed in.
    let serve_report_text = match &args.serve_report {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| serve_report_entry(&text).map(|entry| (text, entry)))
        {
            Ok((text, entry)) => {
                entries.push(entry);
                Some(text)
            }
            Err(e) => {
                eprintln!("dcn_perf: reading serve report {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "{:<28} {:<12} {:>10} {:>12} {:>14}",
        "entry", "scenario", "wall_ms", "events", "events/sec"
    );
    for e in &entries {
        println!(
            "{:<28} {:<12} {:>10.3} {:>12} {:>14.0}",
            e.name, e.scenario, e.wall_ms, e.events, e.events_per_sec
        );
    }

    let json = to_json(
        &entries,
        args.reps,
        args.quick,
        serve_report_text.as_deref(),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("dcn_perf: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.compare {
        // A missing or unreadable baseline is not a regression: on a fresh
        // checkout (or right after a bench renumber) there is nothing to
        // gate against. Report every entry explicitly as unmatched and keep
        // the exit green — silently skipping rows would make "zero
        // regressions" indistinguishable from "nothing compared".
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => match parse_bench(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("dcn_perf: baseline {baseline_path} is not a bench snapshot: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!(
                    "dcn_perf: warning: baseline {baseline_path} unreadable ({e}); \
                     treating every entry as new"
                );
                BenchFile {
                    bench: 0,
                    entries: Vec::new(),
                }
            }
        };
        let current = BenchFile {
            bench: 9,
            entries: entries
                .iter()
                .map(|e| BenchEntry {
                    name: e.name.clone(),
                    scenario: e.scenario.clone(),
                    wall_ms: e.wall_ms,
                    events: e.events,
                    events_per_sec: e.events_per_sec,
                })
                .collect(),
        };
        let cmp = compare(&baseline, &current);
        println!();
        println!(
            "vs {baseline_path} (bench {}): {:<28} {:<12} {:>10} {:>10} {:>8}",
            baseline.bench, "entry", "scenario", "old_ms", "new_ms", "speedup"
        );
        for d in &cmp.deltas {
            println!(
                "{:<28} {:<12} {:>10.3} {:>10.3} {:>7.2}x{}",
                d.name,
                d.scenario,
                d.old_wall_ms,
                d.new_wall_ms,
                d.speedup,
                if d.regression { "  REGRESSION" } else { "" },
            );
        }
        for name in &cmp.only_old {
            println!("only in baseline: {name}");
        }
        for name in &cmp.only_new {
            println!("{name}: no baseline entry");
        }
        if let Some(geomean) = cmp.geomean_speedup() {
            println!("geomean speedup: {geomean:.2}x");
        }
        let regressions = cmp.regressions().count();
        if regressions > 0 {
            eprintln!("dcn_perf: {regressions} entr(y/ies) regressed by more than 10% (beyond the noise floor)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

//! `dcn_perf` — the pinned wall-clock performance suite.
//!
//! Every other harness in this crate measures *simulated* cost (messages,
//! moves, memory bits); this one measures the simulator itself: wall time and
//! throughput over a fixed scenario suite, so that storage/allocation changes
//! in the hot paths show up as a recorded trajectory (`BENCH_<pr>.json` at
//! the repo root, one point per PR).
//!
//! The suite is pinned — same shapes, same seeds, same budgets on every run —
//! and covers all six controller families plus the six §5 applications over
//! three tree shapes, plus the distributed-family quick-sweep grid (the
//! scenario the PR-5 throughput target is stated against). Each entry runs
//! `--reps` times (default 3) and reports the best wall time; the simulated
//! work per entry is asserted identical across reps, so events/sec ratios
//! between two builds are pure wall-time ratios.
//!
//! "Events" is the unit of simulated work: messages sent plus requests
//! answered. It is fully determined by the scenario (byte-identical sweeps
//! guarantee it), which is what makes the throughput comparable across
//! builds.
//!
//! Two entries cover the `dcn-serve` wire-protocol stack. `serve:loopback`
//! drives the full protocol path — line parsing, frame dispatch, ticket
//! routing, event streaming — through the deterministic loopback transport,
//! so protocol overhead is measured on the same wall-clock footing as the
//! controller hot loops (and sits under the same regression gate). With
//! `--serve-report PATH`, a `dcn-load` report from a real TCP run is
//! ingested as a `serve:tcp-load` entry and embedded verbatim under the
//! snapshot's `"serve"` key — that one is wall-clock of a socketed system
//! under load, recorded for the trajectory rather than gated.
//!
//! A prior snapshot can be diffed against the fresh run with `--compare`:
//! per-entry speedup ratios are printed (matched on name and scenario), any
//! entry more than 10% slower than the baseline — beyond a 0.25ms absolute
//! noise floor that keeps sub-100µs entries from flagging on timer jitter —
//! is flagged as a regression, and the process exits non-zero if one is
//! found — before/after claims in EXPERIMENTS.md are mechanically produced,
//! not hand-computed.
//!
//! ```text
//! dcn_perf [--quick] [--reps N] [--out PATH] [--compare BASELINE.json]
//!          [--serve-report LOAD.json]
//! # default PATH: BENCH_8.json
//! ```

use dcn_bench::compare::{compare, parse_bench, BenchEntry, BenchFile};
use dcn_bench::{
    quick_grid, run_app_family, run_family, run_grid, AppFamily, Family, DEFAULT_SWEEP_SEED,
};
use dcn_server::{Loopback, ServeConfig};
use dcn_workload::json::{self, Value};
use dcn_workload::{ArrivalMode, ChurnModel, Placement, Scenario, SweepGrid, TreeShape};
use std::process::ExitCode;
use std::time::Instant;

/// One measured row of the suite.
struct Entry {
    /// `controller:<family>`, `app:<family>` or `sweep:<grid>`.
    name: String,
    /// The shape (or grid) the entry ran over.
    scenario: String,
    /// Best wall time over the reps, in milliseconds.
    wall_ms: f64,
    /// Simulated work: messages + answered requests (identical across reps).
    events: u64,
    /// `events / best wall time`.
    events_per_sec: f64,
}

/// Times `work` `reps` times; returns (best wall seconds, events), asserting
/// the event count is rep-invariant (determinism is what makes the numbers
/// comparable).
fn time_best(reps: usize, mut work: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut events = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let e = work();
        let secs = start.elapsed().as_secs_f64();
        if let Some(prev) = events {
            assert_eq!(prev, e, "simulated work must be identical across reps");
        }
        events = Some(e);
        best = best.min(secs);
    }
    (best, events.unwrap_or(0))
}

/// The three pinned shapes of the suite.
fn shapes(quick: bool) -> Vec<(&'static str, TreeShape)> {
    let n = if quick { 24 } else { 48 };
    vec![
        ("star", TreeShape::Star { nodes: n }),
        ("path", TreeShape::Path { nodes: n }),
        (
            "pref-attach",
            TreeShape::PreferentialAttachment { nodes: n, seed: 7 },
        ),
    ]
}

/// The pinned per-shape scenario (mixed churn, batch arrivals, fixed seed).
fn scenario(label: &str, shape: TreeShape, quick: bool) -> Scenario {
    Scenario {
        name: format!("perf-{label}"),
        shape,
        churn: ChurnModel::default_mixed(),
        placement: Placement::Uniform,
        arrival: ArrivalMode::Batch,
        requests: if quick { 24 } else { 64 },
        m: if quick { 48 } else { 96 },
        w: if quick { 12 } else { 24 },
        seed: 5,
    }
}

/// The distributed-family quick-sweep grid: the shared
/// [`dcn_bench::quick_grid`] restricted to the distributed family (the PR-5
/// throughput target is stated against this grid). Single-worker so the
/// measurement is a pure hot-loop time, not a scheduling artifact.
fn distributed_quick_grid() -> SweepGrid {
    let mut grid = quick_grid(DEFAULT_SWEEP_SEED, 1, false);
    grid.name = "perf-distributed-quick".to_string();
    grid.families = vec!["distributed".to_string()];
    grid
}

/// Drives `requests` tagged permit submissions through the full wire
/// protocol over the loopback transport — encode, length-check, parse,
/// dispatch, ticket-route, pump, stream — and returns the protocol work
/// done (request lines handled plus reply/event frames produced). All the
/// work is deterministic, so the count is rep-invariant like every other
/// entry.
fn serve_loopback_events(requests: u64) -> u64 {
    // Budget == request count: every submission grants, so the measured
    // path is the steady serving state, not the reject tail. Events are
    // non-topological, so the 48-leaf star (and the node bound) is static.
    let config = ServeConfig::new(Family::Centralized, requests, 64)
        .with_shape(TreeShape::Star { nodes: 48 })
        .with_u_bound(64);
    let mut lb = Loopback::new(config).expect("loopback server");
    let client = lb.connect();
    lb.send(client, r#"{"op": "hello", "proto": 1}"#);
    lb.send(client, r#"{"op": "subscribe"}"#);
    let mut frames = lb.recv(client).len() as u64;
    for i in 0..requests {
        let node = i % 49;
        lb.send(
            client,
            &format!(r#"{{"op": "submit", "kind": "event", "node": {node}, "tag": {i}}}"#),
        );
        // Pump in slices like the TCP engine thread does between inbox
        // drains, rather than once at the end.
        if i % 64 == 63 {
            lb.run_to_quiescence();
            frames += lb.recv(client).len() as u64;
        }
    }
    lb.run_to_quiescence();
    frames += lb.recv(client).len() as u64;
    let stats = lb.engine().stats();
    assert_eq!(stats.granted, requests, "every submission grants");
    assert_eq!(stats.protocol_errors, 0);
    // Lines handled (hello + subscribe + submits) plus frames out.
    2 + requests + frames
}

/// A numeric field of the `dcn-load` report (integers and floats both
/// appear: counters vs. the elapsed/throughput columns).
fn report_num(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key)? {
        Value::Int(n) => Ok(*n as f64),
        Value::Num(x) => Ok(*x),
        other => Err(format!(
            "report field {key}: expected a number, found {other:?}"
        )),
    }
}

/// Ingests a `dcn-load --report` file as the `serve:tcp-load` entry.
fn serve_report_entry(text: &str) -> Result<Entry, String> {
    let v = json::parse(text.trim()).map_err(|e| format!("not valid JSON: {e}"))?;
    let tool = v.get("tool")?.as_str()?;
    if tool != "dcn-load" {
        return Err(format!("expected a dcn-load report, found tool {tool:?}"));
    }
    let clients = v.get("clients")?.as_u64()?;
    let answered = v.get("answered")?.as_u64()?;
    let wall_ms = report_num(&v, "elapsed_ms")?;
    let rps = report_num(&v, "requests_per_sec")?;
    Ok(Entry {
        name: "serve:tcp-load".to_string(),
        scenario: format!("{clients}-client"),
        wall_ms,
        events: answered,
        events_per_sec: rps,
    })
}

fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.3}")
    } else {
        "null".to_string()
    }
}

fn to_json(entries: &[Entry], reps: usize, quick: bool, serve_report: Option<&str>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": 8,\n");
    out.push_str("  \"suite\": \"dcn_perf pinned scenario suite\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"reps\": {reps},\n"));
    let total_events: u64 = entries.iter().map(|e| e.events).sum();
    let total_wall: f64 = entries.iter().map(|e| e.wall_ms).sum();
    out.push_str(&format!("  \"total_wall_ms\": {},\n", json_num(total_wall)));
    out.push_str(&format!("  \"total_events\": {total_events},\n"));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": {}, \"scenario\": {}, \"wall_ms\": {}, \"events\": {}, \"events_per_sec\": {}}}{}\n",
            dcn_workload::json_quote(&e.name),
            dcn_workload::json_quote(&e.scenario),
            json_num(e.wall_ms),
            e.events,
            json_num(e.events_per_sec),
            if i + 1 < entries.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]");
    if let Some(report) = serve_report {
        // The raw dcn-load report, embedded verbatim (it is validated
        // JSON): the snapshot records exactly what was measured.
        out.push_str(",\n  \"serve\": ");
        out.push_str(report.trim());
    }
    out.push_str("\n}\n");
    out
}

struct Args {
    quick: bool,
    reps: usize,
    out: String,
    compare: Option<String>,
    serve_report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        reps: 3,
        out: "BENCH_8.json".to_string(),
        compare: None,
        serve_report: None,
    };
    // An explicit --reps wins over --quick's reps=1 default regardless of
    // the order the two flags appear in.
    let mut reps_explicit = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => {
                args.quick = true;
                if !reps_explicit {
                    args.reps = 1;
                }
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
                reps_explicit = true;
            }
            "--out" => args.out = value("--out")?,
            "--compare" => args.compare = Some(value("--compare")?),
            "--serve-report" => args.serve_report = Some(value("--serve-report")?),
            "--help" | "-h" => {
                println!(
                    "usage: dcn_perf [--quick] [--reps N] [--out PATH] \
                     [--compare BASELINE.json] [--serve-report LOAD.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dcn_perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut entries: Vec<Entry> = Vec::new();

    for (label, shape) in shapes(args.quick) {
        let sc = scenario(label, shape, args.quick);
        for family in Family::ALL {
            let (secs, events) = time_best(args.reps, || {
                let report = run_family(family, &sc);
                report.messages + report.granted + report.rejected + report.refused
            });
            entries.push(Entry {
                name: format!("controller:{}", family.name()),
                scenario: label.to_string(),
                wall_ms: secs * 1e3,
                events,
                events_per_sec: events as f64 / secs,
            });
        }
        for family in AppFamily::ALL {
            let (secs, events) = time_best(args.reps, || {
                let report = run_app_family(family, &sc);
                report.messages + report.granted + report.rejected
            });
            entries.push(Entry {
                name: format!("app:{}", family.name()),
                scenario: label.to_string(),
                wall_ms: secs * 1e3,
                events,
                events_per_sec: events as f64 / secs,
            });
        }
    }

    let grid = distributed_quick_grid();
    let (secs, events) = time_best(args.reps, || {
        let report = run_grid(&grid, 1);
        assert_eq!(report.error_count() + report.violation_count(), 0);
        report
            .cells
            .iter()
            .filter_map(|c| c.report.as_ref().ok())
            .filter_map(|r| r.controller())
            .map(|r| r.messages + r.granted + r.rejected + r.refused)
            .sum()
    });
    entries.push(Entry {
        name: "sweep:distributed-quick".to_string(),
        scenario: grid.name.clone(),
        wall_ms: secs * 1e3,
        events,
        events_per_sec: events as f64 / secs,
    });

    // The wire-protocol stack, on the same deterministic footing: 120k
    // requests through the loopback server (4k in quick mode).
    let serve_requests: u64 = if args.quick { 4_000 } else { 120_000 };
    let (secs, events) = time_best(args.reps, || serve_loopback_events(serve_requests));
    entries.push(Entry {
        name: "serve:loopback".to_string(),
        scenario: format!("{serve_requests}-req"),
        wall_ms: secs * 1e3,
        events,
        events_per_sec: events as f64 / secs,
    });

    // A recorded TCP load run, if one was handed in.
    let serve_report_text = match &args.serve_report {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| serve_report_entry(&text).map(|entry| (text, entry)))
        {
            Ok((text, entry)) => {
                entries.push(entry);
                Some(text)
            }
            Err(e) => {
                eprintln!("dcn_perf: reading serve report {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    println!(
        "{:<28} {:<12} {:>10} {:>12} {:>14}",
        "entry", "scenario", "wall_ms", "events", "events/sec"
    );
    for e in &entries {
        println!(
            "{:<28} {:<12} {:>10.3} {:>12} {:>14.0}",
            e.name, e.scenario, e.wall_ms, e.events, e.events_per_sec
        );
    }

    let json = to_json(
        &entries,
        args.reps,
        args.quick,
        serve_report_text.as_deref(),
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("dcn_perf: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.compare {
        let baseline = match std::fs::read_to_string(baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|text| parse_bench(&text))
        {
            Ok(b) => b,
            Err(e) => {
                eprintln!("dcn_perf: reading baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let current = BenchFile {
            bench: 8,
            entries: entries
                .iter()
                .map(|e| BenchEntry {
                    name: e.name.clone(),
                    scenario: e.scenario.clone(),
                    wall_ms: e.wall_ms,
                    events: e.events,
                    events_per_sec: e.events_per_sec,
                })
                .collect(),
        };
        let cmp = compare(&baseline, &current);
        println!();
        println!(
            "vs {baseline_path} (bench {}): {:<28} {:<12} {:>10} {:>10} {:>8}",
            baseline.bench, "entry", "scenario", "old_ms", "new_ms", "speedup"
        );
        for d in &cmp.deltas {
            println!(
                "{:<28} {:<12} {:>10.3} {:>10.3} {:>7.2}x{}",
                d.name,
                d.scenario,
                d.old_wall_ms,
                d.new_wall_ms,
                d.speedup,
                if d.regression { "  REGRESSION" } else { "" },
            );
        }
        for name in &cmp.only_old {
            println!("only in baseline: {name}");
        }
        for name in &cmp.only_new {
            println!("only in this run: {name}");
        }
        if let Some(geomean) = cmp.geomean_speedup() {
            println!("geomean speedup: {geomean:.2}x");
        }
        let regressions = cmp.regressions().count();
        if regressions > 0 {
            eprintln!("dcn_perf: {regressions} entr(y/ies) regressed by more than 10% (beyond the noise floor)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

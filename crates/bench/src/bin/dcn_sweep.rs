//! `dcn-sweep` — the parallel grid-sweep CLI.
//!
//! Expands a diversified [`SweepGrid`](dcn_workload::SweepGrid) (controller families × tree shapes ×
//! churn models × placement distributions × (M, W) budgets × seed
//! replicates), fans the cells out over a worker pool, checks every cell
//! against the §2.2 safety/liveness/accounting conditions, and emits the
//! aggregate as a summary table plus optional CSV/JSON files.
//!
//! The emitted CSV/JSON is byte-identical for any `--workers` value — the
//! per-cell seeds are derived with SplitMix64 before any thread runs — so a
//! recorded sweep reproduces exactly regardless of the machine it ran on.
//!
//! ```text
//! dcn-sweep [--quick] [--apps] [--shards K1[,K2,...]] [--workers N]
//!           [--seed S] [--replicates R] [--csv PATH] [--json PATH]
//! ```
//!
//! `--apps` adds the §5 application axis to the grid: all six applications
//! (size estimation, name assignment, subtree estimation, heavy-child
//! decomposition, ancestry labeling, majority commitment) run through the
//! same `ScenarioRunner`/`SweepEngine` machinery as the controllers, and any
//! §5 invariant violation fails the sweep.
//!
//! `--shards` adds the sharded-controller axis: each listed shard count `k`
//! expands to a `sharded:k<k>` driver (the k-region `ShardedController`
//! over the distributed family) at every scenario point, with the same
//! family-blind seeds — so its outcome columns can be diffed against the
//! plain families or across shard counts. Omitted, the grids are exactly
//! the pre-axis grids (the golden-hash contract).
//!
//! Exits non-zero if any cell errored or violated a correctness condition
//! (the CI smoke contract).

use dcn_bench::{default_workers, full_grid, quick_grid, run_grid, DEFAULT_SWEEP_SEED};
use std::process::ExitCode;

struct Args {
    quick: bool,
    apps: bool,
    shards: Vec<usize>,
    workers: usize,
    seed: u64,
    replicates: usize,
    csv: Option<String>,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        apps: false,
        shards: Vec::new(),
        workers: default_workers(),
        seed: DEFAULT_SWEEP_SEED,
        replicates: 1,
        csv: None,
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--apps" => args.apps = true,
            "--shards" => {
                for part in value("--shards")?.split(',') {
                    let k: usize = part
                        .trim()
                        .parse()
                        .map_err(|e| format!("--shards {part:?}: {e}"))?;
                    if k == 0 {
                        return Err("--shards: shard counts must be >= 1".to_string());
                    }
                    args.shards.push(k);
                }
            }
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--replicates" => {
                args.replicates = value("--replicates")?
                    .parse()
                    .map_err(|e| format!("--replicates: {e}"))?
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!(
                    "usage: dcn-sweep [--quick] [--apps] [--shards K1[,K2,...]] \
                     [--workers N] [--seed S] [--replicates R] [--csv PATH] \
                     [--json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dcn-sweep: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut grid = if args.quick {
        quick_grid(args.seed, args.replicates, args.apps)
    } else {
        full_grid(args.seed, args.replicates, args.apps)
    };
    grid.shards = args.shards;
    println!(
        "== dcn-sweep: grid {:?} — {} cells ({} families + {} shard counts + {} apps × {} shapes × {} churns × {} placements × {} arrivals × {} budgets × {} replicates) on {} workers ==",
        grid.name,
        grid.cell_count(),
        grid.families.len(),
        grid.shards.len(),
        grid.apps.len(),
        grid.shapes.len(),
        grid.churns.len(),
        grid.placements.len(),
        grid.arrivals.len(),
        grid.budgets.len(),
        grid.replicates.max(1),
        args.workers,
    );
    let report = run_grid(&grid, args.workers);

    println!(
        "{:<12} {:>5} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
        "family",
        "cells",
        "errors",
        "violations",
        "p50moves",
        "p95moves",
        "p50msgs",
        "p95msgs",
        "p50mem",
        "p95mem",
        "p50lat",
        "p95lat"
    );
    for s in report.summaries() {
        println!(
            "{:<12} {:>5} {:>6} {:>10} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>8}",
            s.family,
            s.cells,
            s.errors,
            s.violations,
            s.p50_moves,
            s.p95_moves,
            s.p50_messages,
            s.p95_messages,
            s.p50_memory_bits,
            s.p95_memory_bits,
            s.p50_latency,
            s.p95_latency,
        );
    }
    for cell in &report.cells {
        if let Err(e) = &cell.report {
            eprintln!(
                "cell {} ({} / {}): error: {e}",
                cell.cell.index, cell.cell.family, cell.cell.scenario.name
            );
        } else if let Some(v) = &cell.violation {
            eprintln!(
                "cell {} ({} / {}): VIOLATION: {v}",
                cell.cell.index, cell.cell.family, cell.cell.scenario.name
            );
        }
    }

    if let Some(path) = &args.csv {
        if let Err(e) = std::fs::write(path, report.to_csv()) {
            eprintln!("dcn-sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("dcn-sweep: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    let errors = report.error_count();
    let violations = report.violation_count();
    if errors + violations > 0 {
        eprintln!("dcn-sweep: {errors} errors, {violations} violations");
        return ExitCode::FAILURE;
    }
    println!(
        "all {} cells ok (0 errors, 0 violations)",
        report.cells.len()
    );
    ExitCode::SUCCESS
}

//! Experiment F1 (Theorem 5.1): the size-estimation protocol.
//!
//! Long mixed-churn traces for several approximation factors β; each row
//! reports the amortized messages per topological change (compared against
//! the `log²n` shape) and counts the β-invariant violations observed after
//! every batch (the paper's guarantee is that there are none).

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_estimator::SizeEstimator;
use dcn_simnet::SimConfig;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 256, 1024], &[64, 256]);
    let betas = [1.5f64, 2.0, 3.0];
    let mut rows = Vec::new();
    for &n in &sizes {
        for &beta in &betas {
            let tree = build_tree(TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 11,
            });
            let mut est = SizeEstimator::new(SimConfig::new(11), tree, beta).expect("params");
            let mut gen = ChurnGenerator::new(
                ChurnModel::FullChurn {
                    add_leaf: 40,
                    add_internal: 15,
                    remove: 45,
                },
                n as u64,
            );
            let batches = if dcn_bench::quick_mode() { 10 } else { 30 };
            let mut violations = 0u64;
            for _ in 0..batches {
                let ops: Vec<_> = gen
                    .batch(est.tree(), 12)
                    .iter()
                    .map(ChurnOp::to_request)
                    .collect();
                est.run_batch(&ops).expect("batch");
                if !est.estimate_is_valid() {
                    violations += 1;
                }
            }
            let n_now = est.tree().node_count().max(2) as f64;
            let bound = n_now.log2().powi(2);
            rows.push(Row::new(
                "F1",
                format!(
                    "n0={n} beta={beta} iterations={} changes={} violations={violations}",
                    est.iterations(),
                    est.changes()
                ),
                est.amortized_messages_per_change(),
                bound,
            ));
        }
    }
    print_table(
        "F1 — size estimation: amortized messages per change vs log²n (violations must be 0)",
        &rows,
    );
}

//! Experiment F1 (Theorem 5.1): the size-estimation protocol.
//!
//! Long mixed-churn scenarios for several approximation factors β, driven
//! through the shared `ScenarioRunner` over the ticketed application runtime
//! (no bespoke drive loop). Each row reports the amortized messages per
//! topological change (compared against the `log²n` shape) and the number of
//! β-invariant violations observed at the runner's quiescent checkpoints
//! (the paper's guarantee is that there are none).

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_workload::{
    AppFamily, AppSpec, ArrivalMode, ChurnModel, Placement, Scenario, ScenarioRunner, TreeShape,
};

fn main() {
    let sizes = sweep_sizes(&[64, 256, 1024], &[64, 256]);
    let betas = [1.5f64, 2.0, 3.0];
    let requests = if dcn_bench::quick_mode() { 120 } else { 360 };
    let mut rows = Vec::new();
    for &n in &sizes {
        for &beta in &betas {
            let scenario = Scenario {
                name: format!("f1-n{n}-beta{beta}"),
                shape: TreeShape::RandomRecursive {
                    nodes: n - 1,
                    seed: 11,
                },
                churn: ChurnModel::FullChurn {
                    add_leaf: 40,
                    add_internal: 15,
                    remove: 45,
                },
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests,
                // The application derives its per-iteration budgets from the
                // live network size; the scenario's (M, W) is not used.
                m: requests as u64,
                w: 1,
                seed: 11,
            };
            let runner = ScenarioRunner::new(scenario.clone()).with_batch(12);
            let mut app = AppSpec::for_scenario(AppFamily::SizeEstimator, &scenario)
                .with_beta(beta)
                .build_for(&runner)
                .expect("params");
            let report = runner.run_app(app.as_mut()).expect("run");
            let n_now = report.final_nodes.max(2) as f64;
            let bound = n_now.log2().powi(2);
            rows.push(Row::new(
                "F1",
                format!(
                    "n0={n} beta={beta} iterations={} changes={} violations={}",
                    report.iterations, report.changes, report.invariant_violations
                ),
                report.amortized_messages_per_change(),
                bound,
            ));
        }
    }
    print_table(
        "F1 — size estimation: amortized messages per change vs log²n (violations must be 0)",
        &rows,
    );
}

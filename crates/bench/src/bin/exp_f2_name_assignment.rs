//! Experiment F2 (Theorem 5.2): the name-assignment protocol.
//!
//! Mixed-churn scenarios driven through the shared `ScenarioRunner` over the
//! ticketed application runtime (no bespoke drive loop). Each row reports the
//! largest identity relative to the final network size (the paper guarantees
//! ≤ 4n), the invariant violations observed at the runner's quiescent
//! checkpoints (must be 0) and the total message count compared with the
//! `(n₀log²n₀ + Σ log²n_j)` shape.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_estimator::NameAssigner;
use dcn_simnet::SimConfig;
use dcn_workload::{
    build_tree, ArrivalMode, ChurnModel, Placement, Scenario, ScenarioRunner, TreeShape,
};

fn main() {
    let sizes = sweep_sizes(&[64, 256, 512], &[64, 256]);
    let requests = if dcn_bench::quick_mode() { 100 } else { 300 };
    let mut rows = Vec::new();
    for &n in &sizes {
        let scenario = Scenario {
            name: format!("f2-n{n}"),
            shape: TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 13,
            },
            churn: ChurnModel::FullChurn {
                add_leaf: 45,
                add_internal: 15,
                remove: 35,
            },
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests,
            // The application derives its per-iteration budgets from the
            // live network size; the scenario's (M, W) is not used.
            m: requests as u64,
            w: 1,
            seed: 13,
        };
        let runner = ScenarioRunner::new(scenario.clone()).with_batch(10);
        // Build concretely (so the identity table stays inspectable) but
        // drive through the same runner as every other family.
        let mut names =
            NameAssigner::new(SimConfig::new(scenario.seed), build_tree(scenario.shape))
                .expect("params");
        let report = runner.run_app(&mut names).expect("run");
        let n_now = names.tree().node_count().max(1) as f64;
        let max_id = names.ids().map(|(_, id)| id).max().unwrap_or(0) as f64;
        let log = names.tree().change_log();
        let n0f = n as f64;
        let bound = n0f * n0f.log2().powi(2) + log.sum_log2_squared();
        rows.push(Row::new(
            "F2",
            format!(
                "n0={n} renamings={} max_id/n={:.2} violations={}",
                report.iterations,
                max_id / n_now,
                report.invariant_violations
            ),
            report.messages as f64,
            bound,
        ));
    }
    print_table(
        "F2 — name assignment: messages vs n0log²n0 + Σlog²n_j (ids must stay ≤ 4n, unique)",
        &rows,
    );
}

//! Experiment F2 (Theorem 5.2): the name-assignment protocol.
//!
//! Mixed churn traces; each row reports the largest identity relative to the
//! current network size (the paper guarantees ≤ 4n), the number of uniqueness
//! violations (must be 0) and the total message count compared with the
//! `(n₀log²n₀ + Σ log²n_j)` shape.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_estimator::NameAssigner;
use dcn_simnet::SimConfig;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 256, 512], &[64, 256]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let tree = build_tree(TreeShape::RandomRecursive {
            nodes: n - 1,
            seed: 13,
        });
        let mut names = NameAssigner::new(SimConfig::new(13), tree).expect("params");
        let mut gen = ChurnGenerator::new(
            ChurnModel::FullChurn {
                add_leaf: 45,
                add_internal: 15,
                remove: 35,
            },
            n as u64,
        );
        let batches = if dcn_bench::quick_mode() { 10 } else { 30 };
        let mut violations = 0u64;
        let mut worst_id_ratio = 0.0f64;
        for _ in 0..batches {
            let ops: Vec<_> = gen
                .batch(names.tree(), 10)
                .iter()
                .map(ChurnOp::to_request)
                .collect();
            names.run_batch(&ops).expect("batch");
            if names.check_invariants().is_err() {
                violations += 1;
            }
            let n_now = names.tree().node_count().max(1) as f64;
            let max_id = names.ids().map(|(_, id)| id).max().unwrap_or(0) as f64;
            worst_id_ratio = worst_id_ratio.max(max_id / n_now);
        }
        let log = names.tree().change_log();
        let n0f = n as f64;
        let bound = n0f * n0f.log2().powi(2) + log.sum_log2_squared();
        rows.push(Row::new(
            "F2",
            format!(
                "n0={n} renamings={} worst max_id/n={worst_id_ratio:.2} violations={violations}",
                names.iterations()
            ),
            names.messages() as f64,
            bound,
        ));
    }
    print_table(
        "F2 — name assignment: messages vs n0log²n0 + Σlog²n_j (ids must stay ≤ 4n, unique)",
        &rows,
    );
}

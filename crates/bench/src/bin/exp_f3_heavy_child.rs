//! Experiment F3 (Lemma 5.3 / Theorem 5.4): subtree estimation and the
//! heavy-child decomposition.
//!
//! Growth-heavy traces; each row reports the maximum number of light ancestors
//! over all nodes (the quantity the theorem bounds by `O(log n)`) against
//! `log2 n`.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_estimator::HeavyChildDecomposition;
use dcn_simnet::SimConfig;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, ChurnOp, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[32, 128, 512], &[32, 128]);
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("star", TreeShape::Star { nodes: n - 1 }),
            ("path", TreeShape::Path { nodes: n - 1 }),
        ] {
            let tree = build_tree(shape);
            let mut decomposition =
                HeavyChildDecomposition::new(SimConfig::new(17), tree).expect("params");
            let mut gen = ChurnGenerator::new(
                ChurnModel::FullChurn {
                    add_leaf: 70,
                    add_internal: 10,
                    remove: 10,
                },
                n as u64,
            );
            let batches = if dcn_bench::quick_mode() { 8 } else { 20 };
            for _ in 0..batches {
                let ops: Vec<_> = gen
                    .batch(decomposition.tree(), 10)
                    .iter()
                    .map(ChurnOp::to_request)
                    .collect();
                decomposition.run_batch(&ops).expect("batch");
                decomposition
                    .check_light_depth()
                    .expect("light-ancestor bound must hold");
            }
            let n_now = decomposition.tree().node_count().max(2) as f64;
            rows.push(Row::new(
                "F3",
                format!(
                    "shape={shape_name} n0={n} final_n={} msgs={}",
                    n_now,
                    decomposition.messages()
                ),
                decomposition.max_light_ancestors() as f64,
                n_now.log2(),
            ));
        }
    }
    print_table(
        "F3 — heavy-child decomposition: max light ancestors vs log2 n",
        &rows,
    );
}

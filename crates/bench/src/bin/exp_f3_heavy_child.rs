//! Experiment F3 (Lemma 5.3 / Theorem 5.4): subtree estimation and the
//! heavy-child decomposition.
//!
//! Growth-heavy scenarios driven through the shared `ScenarioRunner` over
//! the ticketed application runtime (no bespoke drive loop). Each row
//! reports the maximum number of light ancestors over all nodes (the
//! quantity the theorem bounds by `O(log n)`) against `log2 n`; the
//! light-depth invariant is checked at every quiescent point by the runner.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_estimator::HeavyChildDecomposition;
use dcn_simnet::SimConfig;
use dcn_workload::{
    build_tree, ArrivalMode, ChurnModel, Placement, Scenario, ScenarioRunner, TreeShape,
};

fn main() {
    let sizes = sweep_sizes(&[32, 128, 512], &[32, 128]);
    let requests = if dcn_bench::quick_mode() { 80 } else { 200 };
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("star", TreeShape::Star { nodes: n - 1 }),
            ("path", TreeShape::Path { nodes: n - 1 }),
        ] {
            let scenario = Scenario {
                name: format!("f3-{shape_name}-n{n}"),
                shape,
                churn: ChurnModel::FullChurn {
                    add_leaf: 70,
                    add_internal: 10,
                    remove: 10,
                },
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests,
                // The application derives its per-iteration budgets from the
                // live network size; the scenario's (M, W) is not used.
                m: requests as u64,
                w: 1,
                seed: 17,
            };
            let runner = ScenarioRunner::new(scenario.clone()).with_batch(10);
            // Built concretely (the light-ancestor read-out is not part of
            // the uniform report) but driven through the shared runner.
            let mut decomposition =
                HeavyChildDecomposition::new(SimConfig::new(scenario.seed), build_tree(shape))
                    .expect("params");
            let report = runner.run_app(&mut decomposition).expect("run");
            assert_eq!(
                report.invariant_violations, 0,
                "light-ancestor bound must hold: {:?}",
                report.first_violation
            );
            let n_now = decomposition.tree().node_count().max(2) as f64;
            rows.push(Row::new(
                "F3",
                format!(
                    "shape={shape_name} n0={n} final_n={} msgs={}",
                    n_now, report.messages
                ),
                decomposition.max_light_ancestors() as f64,
                n_now.log2(),
            ));
        }
    }
    print_table(
        "F3 — heavy-child decomposition: max light ancestors vs log2 n",
        &rows,
    );
}

//! Experiment F4 (§2.2): safety and liveness across the (M, W) space.
//!
//! The network is overloaded with more requests than the budget `M` for a
//! sweep of waste bounds `W` (including `W = 0` and `W = M`), on both the
//! centralized and the distributed controllers — every run driven by the
//! shared `ScenarioRunner`. Each row reports the number of granted permits
//! against the liveness floor `M − W` (the measured value must lie in
//! `[M − W, M]`; the `violations` field counts runs where it did not — it
//! must stay 0).

use dcn_bench::{print_table, run_family, sweep_sizes, Family, Row};
use dcn_workload::{ArrivalMode, ChurnModel, Placement, Scenario, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 256], &[64]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let m = (n / 2) as u64;
        let waste_sweep = [0u64, 1, m / 4, m / 2, m];
        for &w in &waste_sweep {
            let scenario = Scenario {
                name: format!("f4-n{n}-w{w}"),
                shape: TreeShape::RandomRecursive {
                    nodes: n - 1,
                    seed: 19,
                },
                churn: ChurnModel::EventsOnly,
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests: 2 * m as usize,
                m,
                w,
                seed: 19,
            };

            // Centralized (the iterated family handles W = 0).
            let report = run_family(Family::Iterated, &scenario);
            let ok = report.check().is_ok();
            rows.push(Row::new(
                "F4",
                format!(
                    "centralized n={n} M={m} W={w} violations={}",
                    u32::from(!ok)
                ),
                report.granted as f64,
                (m - w) as f64,
            ));

            // Distributed (base controller requires W >= 1).
            if w >= 1 {
                let report = run_family(Family::Distributed, &scenario);
                let ok = report.check().is_ok();
                rows.push(Row::new(
                    "F4",
                    format!(
                        "distributed n={n} M={m} W={w} violations={}",
                        u32::from(!ok)
                    ),
                    report.granted as f64,
                    (m - w) as f64,
                ));
            }
        }
    }
    print_table(
        "F4 — safety/liveness: granted permits vs the liveness floor M−W under overload",
        &rows,
    );
}

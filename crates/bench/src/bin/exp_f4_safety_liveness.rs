//! Experiment F4 (§2.2): safety and liveness across the (M, W) space.
//!
//! The network is overloaded with more requests than the budget `M` for a
//! sweep of waste bounds `W` (including `W = 0` and `W = M`), on both the
//! centralized and the distributed controllers. Each row reports the number
//! of granted permits against the liveness floor `M − W` (the measured value
//! must lie in `[M − W, M]`; the `violations` field counts runs where it did
//! not — it must stay 0).

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_controller::centralized::IteratedController;
use dcn_controller::distributed::DistributedController;
use dcn_controller::{Outcome, RequestKind};
use dcn_simnet::SimConfig;
use dcn_tree::NodeId;
use dcn_workload::{build_tree, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 256], &[64]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let m = (n / 2) as u64;
        let waste_sweep = [0u64, 1, m / 4, m / 2, m];
        for &w in &waste_sweep {
            // Centralized (iterated handles W = 0).
            let tree = build_tree(TreeShape::RandomRecursive { nodes: n - 1, seed: 19 });
            let mut ctrl = IteratedController::new(tree, m, w, 4 * n).expect("params");
            let mut granted = 0u64;
            let mut rejected = 0u64;
            for i in 0..(2 * m as usize) {
                let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
                let at = nodes[(i * 7) % nodes.len()];
                match ctrl.submit(at, RequestKind::NonTopological).expect("submit") {
                    Outcome::Granted { .. } => granted += 1,
                    Outcome::Rejected => rejected += 1,
                }
            }
            let ok = granted <= m && (rejected == 0 || granted >= m - w);
            rows.push(Row::new(
                "F4",
                format!("centralized n={n} M={m} W={w} violations={}", u32::from(!ok)),
                granted as f64,
                (m - w) as f64,
            ));

            // Distributed (base controller requires W >= 1).
            if w >= 1 {
                let tree = build_tree(TreeShape::RandomRecursive { nodes: n - 1, seed: 19 });
                let mut ctrl =
                    DistributedController::new(SimConfig::new(19), tree, m, w, 4 * n)
                        .expect("params");
                let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
                for i in 0..(2 * m as usize) {
                    ctrl.submit(nodes[(i * 5) % nodes.len()], RequestKind::NonTopological)
                        .expect("submit");
                }
                ctrl.run().expect("quiescence");
                let granted = ctrl.granted();
                let ok = ctrl.summary().check().is_ok();
                rows.push(Row::new(
                    "F4",
                    format!("distributed n={n} M={m} W={w} violations={}", u32::from(!ok)),
                    granted as f64,
                    (m - w) as f64,
                ));
            }
        }
    }
    print_table(
        "F4 — safety/liveness: granted permits vs the liveness floor M−W under overload",
        &rows,
    );
}

//! Experiment F5 (ablation): the iteration trick of Observation 3.4.
//!
//! For a fixed network and a small waste bound, the single-shot controller
//! pays a factor `M/W` in its move complexity while the iterated controller
//! only pays `log(M/(W+1))`. Sweeping `M` with `W = 1` makes the difference
//! visible: the ratio column (single-shot / iterated) should grow roughly
//! linearly with `M`. Both families run the *same* seeded scenario through
//! the shared `ScenarioRunner`.

use dcn_bench::{print_table, run_family, sweep_sizes, Family, Row};
use dcn_workload::{ArrivalMode, ChurnModel, Placement, Scenario, TreeShape};

fn main() {
    let budgets = sweep_sizes(&[200, 500, 1000, 2000, 4000], &[200, 1000]);
    // Deep path: the distance scale psi must be well below the depth for
    // the package hierarchy (and thus the iteration trick) to engage at all;
    // at shallow depths both families degenerate to direct root-to-node
    // moves and measure identically.
    let n = 2048usize;
    let mut rows = Vec::new();
    for &m_usize in &budgets {
        let m = m_usize as u64;
        let scenario = Scenario {
            name: format!("f5-m{m}"),
            shape: TreeShape::Path { nodes: n - 1 },
            churn: ChurnModel::EventsOnly,
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests: m as usize,
            m,
            w: 1,
            seed: 13,
        };

        let single = run_family(Family::Centralized, &scenario);
        let iterated = run_family(Family::Iterated, &scenario);

        rows.push(Row::new(
            "F5",
            format!("n={n} W=1 M={m}: single-shot moves vs iterated moves"),
            single.moves as f64,
            iterated.moves as f64,
        ));
    }
    print_table(
        "F5 — ablation: single-shot (measured) vs iterated (bound column) centralized controller",
        &rows,
    );
}

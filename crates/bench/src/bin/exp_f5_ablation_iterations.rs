//! Experiment F5 (ablation): the iteration trick of Observation 3.4.
//!
//! For a fixed network and a small waste bound, the single-shot controller
//! pays a factor `M/W` in its move complexity while the iterated controller
//! only pays `log(M/(W+1))`. Sweeping `M` with `W = 1` makes the difference
//! visible: the ratio column (single-shot / iterated) should grow roughly
//! linearly with `M`.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::RequestKind;
use dcn_tree::NodeId;
use dcn_workload::{build_tree, TreeShape};

fn main() {
    let budgets = sweep_sizes(&[200, 500, 1000, 2000, 4000], &[200, 1000]);
    let n = 64usize;
    let mut rows = Vec::new();
    for &m_usize in &budgets {
        let m = m_usize as u64;
        let w = 1u64;
        let u_bound = 4 * n;
        let targets: Vec<usize> = (0..m as usize).map(|i| (i * 13) % n).collect();

        let mut single =
            CentralizedController::new(build_tree(TreeShape::Path { nodes: n - 1 }), m, w, u_bound)
                .expect("params");
        for &d in &targets {
            let at = single
                .tree()
                .nodes()
                .find(|&x| single.tree().depth(x) == d)
                .unwrap_or_else(|| single.tree().root());
            let _ = single.submit(at, RequestKind::NonTopological).expect("submit");
        }

        let mut iterated =
            IteratedController::new(build_tree(TreeShape::Path { nodes: n - 1 }), m, w, u_bound)
                .expect("params");
        for &d in &targets {
            let at = iterated
                .tree()
                .nodes()
                .find(|&x| iterated.tree().depth(x) == d)
                .unwrap_or_else(|| iterated.tree().root());
            let _ = iterated
                .submit(at, RequestKind::NonTopological)
                .expect("submit");
        }

        rows.push(Row::new(
            "F5",
            format!(
                "n={n} W=1 M={m}: single-shot moves vs iterated moves (rounds={})",
                iterated.iterations()
            ),
            single.moves() as f64,
            iterated.moves() as f64,
        ));
        let _ = NodeId::from_index(0);
    }
    print_table(
        "F5 — ablation: single-shot (measured) vs iterated (bound column) centralized controller",
        &rows,
    );
}

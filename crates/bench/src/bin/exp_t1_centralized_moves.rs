//! Experiment T1 (Lemma 3.3 / Observation 3.4): move complexity of the
//! centralized controller as the network size grows.
//!
//! For each initial size `n`, a mixed-churn workload of `2n` requests is run
//! through the iterated centralized controller with `M = 2n`, `W = n/2`.
//! The measured moves are compared against the theoretical shape
//! `U · log²U · log(M/(W+1))`; the paper's claim holds when the ratio column
//! stays roughly flat (no super-logarithmic blow-up with `n`).

use dcn_bench::{iterated_bound, op_to_request, print_table, sweep_sizes, Row};
use dcn_controller::centralized::IteratedController;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512, 1024, 2048], &[64, 256]);
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            ("random", TreeShape::RandomRecursive { nodes: n - 1, seed: 7 }),
        ] {
            let requests = 2 * n;
            let m = (2 * n) as u64;
            let w = (n as u64 / 2).max(1);
            let u_bound = n + requests + 1;
            let tree = build_tree(shape);
            let mut ctrl = IteratedController::new(tree, m, w, u_bound).expect("valid params");
            let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), n as u64);
            let mut submitted = 0;
            while submitted < requests {
                let Some(op) = gen.next_op(ctrl.tree()) else { continue };
                let (at, kind) = op_to_request(&op);
                if ctrl.submit(at, kind).is_ok() {
                    submitted += 1;
                }
            }
            let bound = iterated_bound(u_bound, m, w);
            rows.push(Row::new(
                "T1",
                format!("shape={shape_name} n0={n} M={m} W={w} reqs={requests}"),
                ctrl.moves() as f64,
                bound,
            ));
        }
    }
    print_table(
        "T1 — centralized move complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

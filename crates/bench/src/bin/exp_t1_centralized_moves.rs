//! Experiment T1 (Lemma 3.3 / Observation 3.4): move complexity of the
//! centralized controller as the network size grows.
//!
//! For each initial size `n`, a mixed-churn workload of `2n` requests is run
//! through the iterated centralized controller with `M = 2n`, `W = n/2`. The
//! sweep ties `M`, `W` and the request count to `n`, which a plain cross
//! product cannot express, so the binary builds the cell list itself and runs
//! it through the shared `SweepEngine` (parallel across sizes and shapes).
//! The measured moves are compared against the theoretical shape
//! `U · log²U · log(M/(W+1))`; the paper's claim holds when the ratio column
//! stays roughly flat (no super-logarithmic blow-up with `n`).

use dcn_bench::{default_workers, iterated_bound, print_table, run_cells, sweep_sizes, Row};
use dcn_workload::{ArrivalMode, CellKind, ChurnModel, Placement, Scenario, SweepCell, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512, 1024, 2048], &[64, 256]);
    let mut cells = Vec::new();
    let mut row_meta = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            (
                "random",
                TreeShape::RandomRecursive {
                    nodes: n - 1,
                    seed: 7,
                },
            ),
        ] {
            let requests = 2 * n;
            let m = (2 * n) as u64;
            let w = (n as u64 / 2).max(1);
            let scenario = Scenario {
                name: format!("t1-{shape_name}-n{n}"),
                shape,
                churn: ChurnModel::default_mixed(),
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests,
                m,
                w,
                seed: n as u64,
            };
            cells.push(SweepCell {
                index: cells.len(),
                kind: CellKind::Controller,
                family: "iterated".to_string(),
                scenario,
            });
            let u_bound = n + requests + 1;
            row_meta.push((
                format!("shape={shape_name} n0={n} M={m} W={w} reqs={requests}"),
                iterated_bound(u_bound, m, w),
            ));
        }
    }
    let report = run_cells("t1", cells, default_workers());
    let rows: Vec<Row> = report
        .cells
        .iter()
        .zip(row_meta)
        .map(|(cell, (params, bound))| {
            let r = cell.run_report().expect("T1 cells are valid");
            assert!(cell.violation.is_none(), "{params}: {:?}", cell.violation);
            Row::new("T1", params, r.moves as f64, bound)
        })
        .collect();
    print_table(
        "T1 — centralized move complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

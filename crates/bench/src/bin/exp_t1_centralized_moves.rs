//! Experiment T1 (Lemma 3.3 / Observation 3.4): move complexity of the
//! centralized controller as the network size grows.
//!
//! For each initial size `n`, a mixed-churn workload of `2n` requests is run
//! through the iterated centralized controller (via the shared
//! `ScenarioRunner`) with `M = 2n`, `W = n/2`. The measured moves are
//! compared against the theoretical shape `U · log²U · log(M/(W+1))`; the
//! paper's claim holds when the ratio column stays roughly flat (no
//! super-logarithmic blow-up with `n`).

use dcn_bench::{iterated_bound, print_table, run_family, sweep_sizes, Family, Row};
use dcn_workload::{ChurnModel, Placement, Scenario, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512, 1024, 2048], &[64, 256]);
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            (
                "random",
                TreeShape::RandomRecursive {
                    nodes: n - 1,
                    seed: 7,
                },
            ),
        ] {
            let requests = 2 * n;
            let m = (2 * n) as u64;
            let w = (n as u64 / 2).max(1);
            let scenario = Scenario {
                name: format!("t1-{shape_name}-n{n}"),
                shape,
                churn: ChurnModel::default_mixed(),
                placement: Placement::Uniform,
                requests,
                m,
                w,
                seed: n as u64,
            };
            let report = run_family(Family::Iterated, &scenario);
            let u_bound = n + requests + 1;
            let bound = iterated_bound(u_bound, m, w);
            rows.push(Row::new(
                "T1",
                format!("shape={shape_name} n0={n} M={m} W={w} reqs={requests}"),
                report.moves as f64,
                bound,
            ));
        }
    }
    print_table(
        "T1 — centralized move complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

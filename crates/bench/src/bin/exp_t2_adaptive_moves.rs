//! Experiment T2 (Theorem 3.5): move complexity of the adaptive centralized
//! controller when no bound on the number of nodes is known in advance.
//!
//! The network starts tiny and grows by an order of magnitude through granted
//! insertions; the measured moves are compared against the per-change bound
//! `(n₀·log²n₀ + Σ_j log²n_j) · log(M/(W+1))` evaluated on the actual change
//! log, for both refresh policies of the theorem.

use dcn_bench::{print_table, sweep_sizes, Row};
use dcn_controller::centralized::{AdaptiveController, RefreshPolicy};
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};

fn main() {
    let growth_targets = sweep_sizes(&[200, 500, 1000, 2000], &[200, 500]);
    let mut rows = Vec::new();
    for &target in &growth_targets {
        for (policy_name, policy) in [
            ("changes-U/4", RefreshPolicy::ChangesQuarterU),
            ("size-doubling", RefreshPolicy::SizeDoubling),
        ] {
            let n0 = 4usize;
            let m = (2 * target) as u64;
            let w = (target as u64 / 4).max(1);
            let tree = build_tree(TreeShape::Star { nodes: n0 - 1 });
            let mut ctrl = AdaptiveController::new(tree, m, w, policy).expect("valid params");
            let mut gen = ChurnGenerator::new(
                ChurnModel::FullChurn {
                    add_leaf: 60,
                    add_internal: 15,
                    remove: 10,
                },
                target as u64,
            );
            while ctrl.tree().node_count() < target && !ctrl.is_exhausted() {
                let Some(op) = gen.next_op(ctrl.tree()) else {
                    continue;
                };
                let (at, kind) = op.to_request();
                let _ = ctrl.submit(at, kind);
            }
            let log = ctrl.tree().change_log();
            let n0f = (n0.max(2)) as f64;
            let ratio_term = ((m as f64) / (w as f64 + 1.0)).max(2.0).log2();
            let bound = (n0f.log2().powi(2) * n0f + log.sum_log2_squared()) * ratio_term;
            rows.push(Row::new(
                "T2",
                format!(
                    "policy={policy_name} n0={n0} -> n={} changes={} epochs={}",
                    ctrl.tree().node_count(),
                    log.tree_change_count(),
                    ctrl.epochs()
                ),
                ctrl.moves() as f64,
                bound,
            ));
        }
    }
    print_table(
        "T2 — adaptive (unknown U) move complexity vs (n0log²n0 + Σlog²n_j)·log(M/(W+1))",
        &rows,
    );
}

//! Experiment T3 (Theorems 4.7 / 4.9): message complexity of the distributed
//! controller on the asynchronous network simulator.
//!
//! Sweeps the network size and the asynchronous delay schedule (seed); the
//! measured message count is compared against the same
//! `U·log²U·log(M/(W+1))` shape as the centralized bound (Lemma 4.5 ties the
//! two together). The size axis co-varies `M`, `W` and the request count, so
//! the binary builds its cell list explicitly and fans it out through the
//! shared `SweepEngine`.

use dcn_bench::{default_workers, iterated_bound, print_table, run_cells, sweep_sizes, Row};
use dcn_workload::{ArrivalMode, CellKind, ChurnModel, Placement, Scenario, SweepCell, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[32, 64, 128, 256, 512], &[32, 128]);
    let seeds: &[u64] = if dcn_bench::quick_mode() {
        &[1]
    } else {
        &[1, 2, 3]
    };
    let mut cells = Vec::new();
    let mut bounds = Vec::new();
    for &n in &sizes {
        for &seed in seeds {
            let requests = n;
            let m = n as u64;
            let w = (n as u64 / 4).max(1);
            let scenario = Scenario {
                name: format!("t3-n{n}-s{seed}"),
                shape: TreeShape::RandomRecursive { nodes: n - 1, seed },
                churn: ChurnModel::default_mixed(),
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests,
                m,
                w,
                seed,
            };
            cells.push(SweepCell {
                index: cells.len(),
                kind: CellKind::Controller,
                family: "distributed".to_string(),
                scenario,
            });
            bounds.push((n, seed, iterated_bound(n + requests + 1, m, w)));
        }
    }
    let report = run_cells("t3", cells, default_workers());
    let rows: Vec<Row> = report
        .cells
        .iter()
        .zip(bounds)
        .map(|(cell, (n, seed, bound))| {
            let r = cell.run_report().expect("T3 cells are valid");
            assert!(
                cell.violation.is_none(),
                "n={n} s={seed}: {:?}",
                cell.violation
            );
            Row::new(
                "T3",
                format!(
                    "n0={n} seed={seed} granted={} rejected={} final_n={}",
                    r.granted, r.rejected, r.final_nodes
                ),
                r.messages as f64,
                bound,
            )
        })
        .collect();
    print_table(
        "T3 — distributed message complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

//! Experiment T3 (Theorems 4.7 / 4.9): message complexity of the distributed
//! controller on the asynchronous network simulator.
//!
//! Sweeps the network size and the asynchronous delay schedule (seed); the
//! measured message count is compared against the same
//! `U·log²U·log(M/(W+1))` shape as the centralized bound (Lemma 4.5 ties the
//! two together). Each run is one seeded scenario through the shared
//! `ScenarioRunner`.

use dcn_bench::{iterated_bound, print_table, run_family, sweep_sizes, Family, Row};
use dcn_workload::{ChurnModel, Placement, Scenario, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[32, 64, 128, 256, 512], &[32, 128]);
    let seeds: &[u64] = if dcn_bench::quick_mode() {
        &[1]
    } else {
        &[1, 2, 3]
    };
    let mut rows = Vec::new();
    for &n in &sizes {
        for &seed in seeds {
            let requests = n;
            let m = n as u64;
            let w = (n as u64 / 4).max(1);
            let scenario = Scenario {
                name: format!("t3-n{n}-s{seed}"),
                shape: TreeShape::RandomRecursive { nodes: n - 1, seed },
                churn: ChurnModel::default_mixed(),
                placement: Placement::Uniform,
                requests,
                m,
                w,
                seed,
            };
            let report = run_family(Family::Distributed, &scenario);
            let u_bound = n + requests + 1;
            rows.push(Row::new(
                "T3",
                format!(
                    "n0={n} seed={seed} granted={} rejected={} final_n={}",
                    report.granted, report.rejected, report.final_nodes
                ),
                report.messages as f64,
                iterated_bound(u_bound, m, w),
            ));
        }
    }
    print_table(
        "T3 — distributed message complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

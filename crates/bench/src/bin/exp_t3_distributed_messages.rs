//! Experiment T3 (Theorems 4.7 / 4.9): message complexity of the distributed
//! controller on the asynchronous network simulator.
//!
//! Sweeps the network size and the asynchronous delay schedule (seed); the
//! measured message count is compared against the same
//! `U·log²U·log(M/(W+1))` shape as the centralized bound (Lemma 4.5 ties the
//! two together), and against the centralized controller's own moves on the
//! matching workload size.

use dcn_bench::{iterated_bound, print_table, run_distributed, sweep_sizes, Row};
use dcn_workload::{ChurnModel, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[32, 64, 128, 256, 512], &[32, 128]);
    let seeds: &[u64] = if dcn_bench::quick_mode() { &[1] } else { &[1, 2, 3] };
    let mut rows = Vec::new();
    for &n in &sizes {
        for &seed in seeds {
            let requests = n;
            let m = n as u64;
            let w = (n as u64 / 4).max(1);
            let u_bound = n + requests + 1;
            let stats = run_distributed(
                seed,
                TreeShape::RandomRecursive { nodes: n - 1, seed },
                ChurnModel::default_mixed(),
                requests,
                16,
                m,
                w,
            );
            rows.push(Row::new(
                "T3",
                format!(
                    "n0={n} seed={seed} granted={} rejected={} final_n={}",
                    stats.granted, stats.rejected, stats.final_nodes
                ),
                stats.messages as f64,
                iterated_bound(u_bound, m, w),
            ));
        }
    }
    print_table(
        "T3 — distributed message complexity vs U·log²U·log(M/(W+1))",
        &rows,
    );
}

//! Experiment T4 (§1, §1.4): comparison against the AAPS bin-hierarchy
//! controller and the trivial root-walk controller.
//!
//! On grow-only workloads (the only model AAPS supports) the new controller
//! should use no more messages than AAPS (up to constants), and both should
//! beat the trivial controller by a widening margin as the tree deepens. On
//! mixed churn the AAPS column is reported as refusals — that is the
//! qualitative point of the paper.
//!
//! Every family is a cell of the same `SweepEngine` run over the *same*
//! seeded scenario, so the rows compare identical request streams.

use dcn_bench::{default_workers, print_table, run_cells, sweep_sizes, Row};
use dcn_workload::{
    ArrivalMode, CellKind, ChurnModel, Placement, RunReport, Scenario, SweepCell, TreeShape,
};

/// Cells per size step: grow-only × {distributed, aaps, trivial} plus
/// mixed-churn × {distributed, aaps}.
const CELLS_PER_SIZE: usize = 5;

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut cells = Vec::new();
    for &n in &sizes {
        let base = Scenario {
            name: format!("t4-grow-n{n}"),
            shape: TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 3,
            },
            churn: ChurnModel::GrowOnly,
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests: n,
            m: n as u64,
            w: (n as u64 / 2).max(1),
            seed: 5,
        };
        let mixed = Scenario {
            name: format!("t4-mixed-n{n}"),
            churn: ChurnModel::default_mixed(),
            seed: 6,
            ..base.clone()
        };
        for (family, scenario) in [
            ("distributed", &base),
            ("aaps", &base),
            ("trivial", &base),
            ("distributed", &mixed),
            ("aaps", &mixed),
        ] {
            cells.push(SweepCell {
                index: cells.len(),
                kind: CellKind::Controller,
                family: family.to_string(),
                scenario: scenario.clone(),
            });
        }
    }
    let report = run_cells("t4", cells, default_workers());
    let get = |i: usize| -> &RunReport {
        let cell = &report.cells[i];
        assert!(
            cell.violation.is_none(),
            "{}: {:?}",
            cell.cell.scenario.name,
            cell.violation
        );
        cell.run_report().expect("T4 cells are valid")
    };

    let mut rows = Vec::new();
    for (step, &n) in sizes.iter().enumerate() {
        let base_idx = step * CELLS_PER_SIZE;
        let ours = get(base_idx);
        let aaps = get(base_idx + 1);
        let trivial = get(base_idx + 2);
        let ours_mixed = get(base_idx + 3);
        let aaps_mixed = get(base_idx + 4);

        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} ours={} msgs", ours.messages),
            ours.messages as f64,
            aaps.messages as f64,
        ));
        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} trivial vs ours"),
            trivial.messages as f64,
            ours.messages as f64,
        ));
        rows.push(Row::new(
            "T4",
            format!(
                "mixed-churn n0={n}: ours handles all, AAPS refuses {}/{} requests",
                aaps_mixed.refused,
                aaps_mixed.refused + aaps_mixed.submitted,
            ),
            ours_mixed.messages as f64,
            f64::NAN,
        ));
    }
    print_table(
        "T4 — new controller vs AAPS (bound column) and trivial controller",
        &rows,
    );
}

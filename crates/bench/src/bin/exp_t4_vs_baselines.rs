//! Experiment T4 (§1, §1.4): comparison against the AAPS bin-hierarchy
//! controller and the trivial root-walk controller.
//!
//! On grow-only workloads (the only model AAPS supports) the new controller
//! should use no more messages than AAPS (up to constants), and both should
//! beat the trivial controller by a widening margin as the tree deepens. On
//! mixed churn the AAPS column is reported as refusals — that is the
//! qualitative point of the paper.
//!
//! Every family is driven by the shared `ScenarioRunner` over the *same*
//! seeded scenario, so the rows compare identical request streams.

use dcn_bench::{print_table, run_family, sweep_sizes, Family, Row};
use dcn_workload::{ChurnModel, Placement, Scenario, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let base = Scenario {
            name: format!("t4-grow-n{n}"),
            shape: TreeShape::RandomRecursive {
                nodes: n - 1,
                seed: 3,
            },
            churn: ChurnModel::GrowOnly,
            placement: Placement::Uniform,
            requests: n,
            m: n as u64,
            w: (n as u64 / 2).max(1),
            seed: 5,
        };

        // The same grow-only scenario through all four controller families.
        let ours = run_family(Family::Distributed, &base);
        let aaps = run_family(Family::Aaps, &base);
        let trivial = run_family(Family::Trivial, &base);
        ours.check()
            .expect("safety/liveness of the distributed run");
        aaps.check().expect("safety/liveness of the AAPS run");
        trivial.check().expect("safety/liveness of the trivial run");

        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} ours={} msgs", ours.messages),
            ours.messages as f64,
            aaps.messages as f64,
        ));
        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} trivial vs ours"),
            trivial.messages as f64,
            ours.messages as f64,
        ));

        // Mixed churn: ours works, AAPS refuses deletions / internal inserts.
        let mixed = Scenario {
            name: format!("t4-mixed-n{n}"),
            churn: ChurnModel::default_mixed(),
            seed: 6,
            ..base
        };
        let ours_mixed = run_family(Family::Distributed, &mixed);
        let aaps_mixed = run_family(Family::Aaps, &mixed);
        rows.push(Row::new(
            "T4",
            format!(
                "mixed-churn n0={n}: ours handles all, AAPS refuses {}/{} requests",
                aaps_mixed.refused,
                aaps_mixed.refused + aaps_mixed.submitted,
            ),
            ours_mixed.messages as f64,
            f64::NAN,
        ));
    }
    print_table(
        "T4 — new controller vs AAPS (bound column) and trivial controller",
        &rows,
    );
}

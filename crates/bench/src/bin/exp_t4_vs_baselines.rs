//! Experiment T4 (§1, §1.4): comparison against the AAPS bin-hierarchy
//! controller and the trivial root-walk controller.
//!
//! On grow-only workloads (the only model AAPS supports) the new controller
//! should use no more messages than AAPS (up to constants), and both should
//! beat the trivial controller by a widening margin as the tree deepens. On
//! mixed churn the AAPS column is reported as unsupported — that is the
//! qualitative point of the paper.

use dcn_baseline::{AapsController, TrivialController};
use dcn_bench::{op_to_request, print_table, run_distributed, sweep_sizes, Row};
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut rows = Vec::new();
    for &n in &sizes {
        let requests = n;
        let m = n as u64;
        let w = (n as u64 / 2).max(1);
        let u_bound = n + requests + 1;
        let shape = TreeShape::RandomRecursive { nodes: n - 1, seed: 3 };

        // Ours (distributed, grow-only workload).
        let ours = run_distributed(5, shape, ChurnModel::GrowOnly, requests, 16, m, w);

        // AAPS baseline on the identical workload model.
        let mut aaps = AapsController::new(build_tree(shape), m, w, u_bound).expect("params");
        let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 5u64.wrapping_add(17));
        let mut submitted = 0;
        while submitted < requests {
            let Some(op) = gen.next_op(aaps.tree()) else { continue };
            let (at, kind) = op_to_request(&op);
            if aaps.submit(at, kind).is_ok() {
                submitted += 1;
            }
        }

        // Trivial baseline on the identical workload model.
        let mut trivial = TrivialController::new(build_tree(shape), m);
        let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 5u64.wrapping_add(17));
        let mut submitted = 0;
        while submitted < requests {
            let Some(op) = gen.next_op(trivial.tree()) else { continue };
            let (at, kind) = op_to_request(&op);
            if trivial.submit(at, kind).is_ok() {
                submitted += 1;
            }
        }

        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} ours={} msgs", ours.messages),
            ours.messages as f64,
            aaps.messages() as f64,
        ));
        rows.push(Row::new(
            "T4",
            format!("grow-only n0={n} trivial vs ours"),
            trivial.messages() as f64,
            ours.messages as f64,
        ));

        // Mixed churn: ours works, AAPS refuses deletions / internal inserts.
        let ours_mixed =
            run_distributed(6, shape, ChurnModel::default_mixed(), requests, 16, m, w);
        let mut aaps_mixed = AapsController::new(build_tree(shape), m, w, u_bound).expect("params");
        let mut gen = ChurnGenerator::new(ChurnModel::default_mixed(), 6);
        let mut refused = 0u64;
        for _ in 0..requests {
            let Some(op) = gen.next_op(aaps_mixed.tree()) else { continue };
            let (at, kind) = op_to_request(&op);
            if aaps_mixed.submit(at, kind).is_err() {
                refused += 1;
            }
        }
        rows.push(Row::new(
            "T4",
            format!(
                "mixed-churn n0={n}: ours handles all, AAPS refuses {refused}/{requests} requests"
            ),
            ours_mixed.messages as f64,
            f64::NAN,
        ));
    }
    print_table(
        "T4 — new controller vs AAPS (bound column) and trivial controller",
        &rows,
    );
}

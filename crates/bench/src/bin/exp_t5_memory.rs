//! Experiment T5 (Claim 4.8): per-node memory of the distributed controller.
//!
//! After a demanding grow-only workload (one `SweepEngine` cell per shape ×
//! size), the largest whiteboard (under the compressed per-level
//! representation) is measured in bits and compared against the claim
//! `O(deg(v)·log N + log³N + log²U)` evaluated at the *measured* final
//! network (grow-only churn raises node degrees well above the initial
//! shape's; the runner reports the final size and maximum degree).

use dcn_bench::{default_workers, print_table, run_cells, sweep_sizes, Row};
use dcn_workload::{ArrivalMode, CellKind, ChurnModel, Placement, Scenario, SweepCell, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut cells = Vec::new();
    let mut meta = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            ("star", TreeShape::Star { nodes: n - 1 }),
            (
                "caterpillar",
                TreeShape::Caterpillar {
                    spine: n / 4,
                    legs: 3,
                },
            ),
        ] {
            let scenario = Scenario {
                name: format!("t5-{shape_name}-n{n}"),
                shape,
                churn: ChurnModel::GrowOnly,
                placement: Placement::Uniform,
                arrival: ArrivalMode::Batch,
                requests: n,
                m: n as u64,
                w: (n as u64 / 2).max(1),
                seed: 9,
            };
            cells.push(SweepCell {
                index: cells.len(),
                kind: CellKind::Controller,
                family: "distributed".to_string(),
                scenario,
            });
            meta.push((shape_name, n, shape.node_budget() + 1 + n + 1));
        }
    }
    let report = run_cells("t5", cells, default_workers());
    let rows: Vec<Row> = report
        .cells
        .iter()
        .zip(meta)
        .map(|(cell, (shape_name, n, u_bound))| {
            let r = cell.run_report().expect("T5 cells are valid");
            assert!(
                cell.violation.is_none(),
                "shape={shape_name} n0={n}: {:?}",
                cell.violation
            );
            let n_now = r.final_nodes.max(2) as f64;
            let log_n = n_now.log2();
            let log_u = (u_bound as f64).log2();
            let bound = r.final_max_degree as f64 * log_n + log_n.powi(3) + log_u.powi(2);
            Row::new(
                "T5",
                format!("shape={shape_name} n0={n} peak whiteboard"),
                r.peak_node_memory_bits as f64,
                bound,
            )
        })
        .collect();
    print_table(
        "T5 — per-node memory (bits) vs O(deg·logN + log³N + log²U)",
        &rows,
    );
}

//! Experiment T5 (Claim 4.8): per-node memory of the distributed controller.
//!
//! After a demanding workload, the largest whiteboard (under the compressed
//! per-level representation) is measured in bits and compared against the
//! claim `O(deg(v)·log N + log³N + log²U)`.

use dcn_bench::{op_to_request, print_table, sweep_sizes, Row};
use dcn_controller::distributed::DistributedController;
use dcn_simnet::SimConfig;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            ("star", TreeShape::Star { nodes: n - 1 }),
            ("caterpillar", TreeShape::Caterpillar { spine: n / 4, legs: 3 }),
        ] {
            let requests = n;
            let m = n as u64;
            let w = (n as u64 / 2).max(1);
            let tree = build_tree(shape);
            let u_bound = tree.node_count() + requests + 1;
            let mut ctrl = DistributedController::new(SimConfig::new(9), tree, m, w, u_bound)
                .expect("valid params");
            let mut gen = ChurnGenerator::new(ChurnModel::GrowOnly, 9);
            let mut submitted = 0;
            while submitted < requests {
                let ops = gen.batch(ctrl.tree(), 16.min(requests - submitted));
                for op in &ops {
                    let (at, kind) = op_to_request(op);
                    if ctrl.submit(at, kind).is_ok() {
                        submitted += 1;
                    }
                }
                ctrl.run().expect("quiescence");
            }
            let params = *ctrl.params();
            let n_now = ctrl.tree().node_count() as f64;
            let log_n = n_now.max(2.0).log2();
            let log_u = (u_bound as f64).log2();
            let mut worst_measured = 0.0f64;
            let mut worst_bound = 1.0f64;
            for node in ctrl.tree().nodes().collect::<Vec<_>>() {
                let deg = ctrl.tree().child_degree(node).unwrap_or(0) as f64;
                let bits = ctrl
                    .whiteboard(node)
                    .map(|wb| wb.store.memory_bits(&params) as f64)
                    .unwrap_or(0.0);
                let bound = deg * log_n + log_n.powi(3) + log_u.powi(2);
                if bits / bound > worst_measured / worst_bound {
                    worst_measured = bits;
                    worst_bound = bound;
                }
            }
            rows.push(Row::new(
                "T5",
                format!("shape={shape_name} n0={n} worst whiteboard"),
                worst_measured,
                worst_bound,
            ));
        }
    }
    print_table(
        "T5 — per-node memory (bits) vs O(deg·logN + log³N + log²U)",
        &rows,
    );
}

//! Experiment T5 (Claim 4.8): per-node memory of the distributed controller.
//!
//! After a demanding grow-only workload (driven by the shared
//! `ScenarioRunner`), the largest whiteboard (under the compressed per-level
//! representation) is measured in bits and compared against the claim
//! `O(deg(v)·log N + log³N + log²U)` evaluated at the final network.

use dcn_bench::{build_controller, print_table, sweep_sizes, Family, Row};
use dcn_workload::{ChurnModel, Placement, Scenario, ScenarioRunner, TreeShape};

fn main() {
    let sizes = sweep_sizes(&[64, 128, 256, 512], &[64, 128]);
    let mut rows = Vec::new();
    for &n in &sizes {
        for (shape_name, shape) in [
            ("path", TreeShape::Path { nodes: n - 1 }),
            ("star", TreeShape::Star { nodes: n - 1 }),
            (
                "caterpillar",
                TreeShape::Caterpillar {
                    spine: n / 4,
                    legs: 3,
                },
            ),
        ] {
            let scenario = Scenario {
                name: format!("t5-{shape_name}-n{n}"),
                shape,
                churn: ChurnModel::GrowOnly,
                placement: Placement::Uniform,
                requests: n,
                m: n as u64,
                w: (n as u64 / 2).max(1),
                seed: 9,
            };
            // Keep the controller so the bound can be evaluated against the
            // *measured* final tree (grow-only churn raises node degrees well
            // above the initial shape's).
            let mut ctrl = build_controller(Family::Distributed, &scenario).expect("params");
            let report = ScenarioRunner::new(scenario.clone())
                .run(ctrl.as_mut())
                .expect("run");
            let u_bound = shape.node_budget() + 1 + n + 1;
            let n_now = report.final_nodes.max(2) as f64;
            let log_n = n_now.log2();
            let log_u = (u_bound as f64).log2();
            let max_deg = ctrl
                .tree()
                .nodes()
                .map(|v| ctrl.tree().child_degree(v).unwrap_or(0))
                .max()
                .unwrap_or(0) as f64;
            let bound = max_deg * log_n + log_n.powi(3) + log_u.powi(2);
            rows.push(Row::new(
                "T5",
                format!("shape={shape_name} n0={n} peak whiteboard"),
                report.peak_node_memory_bits as f64,
                bound,
            ));
        }
    }
    print_table(
        "T5 — per-node memory (bits) vs O(deg·logN + log³N + log²U)",
        &rows,
    );
}

//! Comparing two pinned-bench snapshots (`dcn_perf --compare`).
//!
//! A `BENCH_<pr>.json` file is a flat object with an `entries` array (see
//! `dcn_perf`'s emitter); this module parses that shape and diffs two
//! snapshots entry by entry, so before/after claims in EXPERIMENTS.md are
//! mechanically produced instead of hand-computed. The parser is local and
//! shape-specific: it scans the flat entry fields it needs and skips every
//! unknown top-level key (newer bench files embed extra sections, e.g. the
//! `"serve"` load report), so old binaries keep reading new snapshots. The
//! general-purpose JSON layer lives in [`dcn_workload::json`].

/// One `entries[]` element of a bench file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchEntry {
    /// `controller:<family>`, `app:<family>` or `sweep:<grid>`.
    pub name: String,
    /// The shape or grid label the entry ran over.
    pub scenario: String,
    /// Best wall time over the reps, in milliseconds.
    pub wall_ms: f64,
    /// Simulated work (messages + answered requests).
    pub events: u64,
    /// `events / best wall seconds`.
    pub events_per_sec: f64,
}

/// A parsed bench snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// The PR number the snapshot was recorded for (`"bench"`).
    pub bench: u64,
    /// All measured entries, in file order.
    pub entries: Vec<BenchEntry>,
}

/// The per-entry outcome of a comparison.
#[derive(Clone, Debug)]
pub struct EntryDelta {
    /// Entry name (matched on `(name, scenario)`).
    pub name: String,
    /// Entry scenario label.
    pub scenario: String,
    /// Baseline wall time, ms.
    pub old_wall_ms: f64,
    /// Current wall time, ms.
    pub new_wall_ms: f64,
    /// `old / new` — above 1.0 is a speedup.
    pub speedup: f64,
    /// `true` when the entry got more than [`REGRESSION_TOLERANCE`] slower
    /// *and* the slowdown clears the [`REGRESSION_NOISE_FLOOR_MS`].
    pub regression: bool,
}

/// A full comparison of two snapshots.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Entries present in both snapshots, in the *current* snapshot's order.
    pub deltas: Vec<EntryDelta>,
    /// Entries of the baseline missing from the current snapshot.
    pub only_old: Vec<String>,
    /// Entries of the current snapshot missing from the baseline.
    pub only_new: Vec<String>,
}

/// An entry counts as regressed when it is more than 10% slower than the
/// baseline — wide enough to ignore wall-clock noise on a shared machine,
/// tight enough to catch a real hot-path slip.
pub const REGRESSION_TOLERANCE: f64 = 0.10;

/// Absolute slack added on top of [`REGRESSION_TOLERANCE`]: sub-100µs
/// entries routinely move tens of µs between back-to-back single-rep runs
/// (warm-up, timer granularity), which is far beyond 10% *relative* but
/// meaningless in absolute terms. A real hot-path slip on any entry large
/// enough to measure reliably clears this floor easily.
pub const REGRESSION_NOISE_FLOOR_MS: f64 = 0.25;

impl Comparison {
    /// The deltas that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &EntryDelta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// Geometric-mean speedup over the matched entries (the natural average
    /// for ratios), or `None` when nothing matched.
    pub fn geomean_speedup(&self) -> Option<f64> {
        if self.deltas.is_empty() {
            return None;
        }
        let log_sum: f64 = self.deltas.iter().map(|d| d.speedup.ln()).sum();
        Some((log_sum / self.deltas.len() as f64).exp())
    }
}

/// Diffs `new` against the `old` baseline, matching entries on
/// `(name, scenario)`.
pub fn compare(old: &BenchFile, new: &BenchFile) -> Comparison {
    let mut deltas = Vec::new();
    let mut only_new = Vec::new();
    for e in &new.entries {
        match old
            .entries
            .iter()
            .find(|o| o.name == e.name && o.scenario == e.scenario)
        {
            Some(o) => {
                let speedup = o.wall_ms / e.wall_ms;
                deltas.push(EntryDelta {
                    name: e.name.clone(),
                    scenario: e.scenario.clone(),
                    old_wall_ms: o.wall_ms,
                    new_wall_ms: e.wall_ms,
                    speedup,
                    regression: e.wall_ms
                        > o.wall_ms * (1.0 + REGRESSION_TOLERANCE) + REGRESSION_NOISE_FLOOR_MS,
                });
            }
            None => only_new.push(format!("{} [{}]", e.name, e.scenario)),
        }
    }
    let only_old = old
        .entries
        .iter()
        .filter(|o| {
            !new.entries
                .iter()
                .any(|e| e.name == o.name && e.scenario == o.scenario)
        })
        .map(|o| format!("{} [{}]", o.name, o.scenario))
        .collect();
    Comparison {
        deltas,
        only_old,
        only_new,
    }
}

// ---------------------------------------------------------------------------
// A micro JSON reader for exactly the bench-file shape: objects, arrays,
// strings (with the escapes `json_quote` emits), numbers, true/false/null.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Object(Vec<(String, Value)>),
    Array(Vec<Value>),
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Value {
    fn get(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}")),
            _ => Err(format!("expected an object while looking up {key:?}")),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(x) => Ok(*x),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 {
            return Err(format!("expected an unsigned integer, found {x}"));
        }
        Ok(x as u64)
    }
}

/// Parses a `BENCH_<pr>.json` document.
pub fn parse_bench(text: &str) -> Result<BenchFile, String> {
    let value = parse_json(text)?;
    let bench = value.get("bench")?.as_u64()?;
    let Value::Array(items) = value.get("entries")? else {
        return Err("\"entries\" must be an array".to_string());
    };
    let mut entries = Vec::with_capacity(items.len());
    for item in items {
        entries.push(BenchEntry {
            name: item.get("name")?.as_str()?.to_string(),
            scenario: item.get("scenario")?.as_str()?.to_string(),
            wall_ms: item.get("wall_ms")?.as_f64()?,
            events: item.get("events")?.as_u64()?,
            events_per_sec: item.get("events_per_sec")?.as_f64()?,
        });
    }
    Ok(BenchFile { bench, entries })
}

fn parse_json(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {pos}, found {:?}",
            c as char,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        other => Err(format!(
            "unexpected {:?} at byte {pos}",
            other.map(|&b| b as char)
        )),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {pos}, found {:?}",
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {pos}, found {:?}",
                    other.map(|&b| b as char)
                ))
            }
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| format!("truncated \\u escape at byte {pos}"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {pos}"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u codepoint at byte {pos}"))?,
                        );
                        *pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {pos}",
                            other.map(|&b| b as char)
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through unmodified.
                let start = *pos;
                while matches!(bytes.get(*pos), Some(&b) if b != b'"' && b != b'\\') {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
                );
            }
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(
        bytes.get(*pos),
        Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    ) {
        *pos += 1;
    }
    // lint: allow(unwrap) the scan above only accepted single-byte ASCII
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(entries: &[(&str, &str, f64)]) -> BenchFile {
        BenchFile {
            bench: 6,
            entries: entries
                .iter()
                .map(|&(name, scenario, wall_ms)| BenchEntry {
                    name: name.to_string(),
                    scenario: scenario.to_string(),
                    wall_ms,
                    events: 1000,
                    events_per_sec: 1000.0 / (wall_ms / 1e3),
                })
                .collect(),
        }
    }

    #[test]
    fn parses_the_emitter_shape() {
        let text = r#"{
  "bench": 5,
  "suite": "dcn_perf pinned scenario suite",
  "quick": false,
  "reps": 3,
  "total_wall_ms": 12.500,
  "total_events": 3000,
  "entries": [
    {"name": "controller:distributed", "scenario": "star", "wall_ms": 4.500, "events": 2000, "events_per_sec": 444444.444},
    {"name": "sweep:distributed-quick", "scenario": "perf-distributed-quick", "wall_ms": 8.000, "events": 1000, "events_per_sec": 125000.000}
  ]
}
"#;
        let file = parse_bench(text).expect("parses");
        assert_eq!(file.bench, 5);
        assert_eq!(file.entries.len(), 2);
        assert_eq!(file.entries[0].name, "controller:distributed");
        assert_eq!(file.entries[0].events, 2000);
        assert!((file.entries[1].wall_ms - 8.0).abs() < 1e-9);
        assert_eq!(file.entries[1].scenario, "perf-distributed-quick");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_bench("").is_err());
        assert!(parse_bench("{\"bench\": 5}").is_err()); // no entries
        assert!(parse_bench("{\"bench\": 5, \"entries\": [}").is_err());
        assert!(parse_bench("{\"bench\": 5, \"entries\": []} x").is_err());
        // An entry missing a field is an error, not a silent default.
        assert!(
            parse_bench(r#"{"bench": 5, "entries": [{"name": "a", "scenario": "s"}]}"#).is_err()
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let quoted = dcn_workload::json_quote("a\"b\\c\nd\te\u{1}");
        let text = format!(
            r#"{{"bench": 1, "entries": [{{"name": {quoted}, "scenario": "s", "wall_ms": 1.0, "events": 1, "events_per_sec": 1.0}}]}}"#
        );
        let file = parse_bench(&text).expect("parses");
        assert_eq!(file.entries[0].name, "a\"b\\c\nd\te\u{1}");
    }

    #[test]
    fn compare_flags_regressions_beyond_tolerance() {
        let old = snapshot(&[
            ("controller:a", "star", 10.0),
            ("controller:b", "star", 10.0),
            ("controller:c", "star", 10.0),
        ]);
        let new = snapshot(&[
            ("controller:a", "star", 5.0),  // 2x speedup
            ("controller:b", "star", 10.5), // 5% slower: inside tolerance
            ("controller:c", "star", 12.0), // 20% slower and >0.25ms: regression
        ]);
        let cmp = compare(&old, &new);
        assert_eq!(cmp.deltas.len(), 3);
        assert!(!cmp.deltas[0].regression);
        assert!((cmp.deltas[0].speedup - 2.0).abs() < 1e-9);
        assert!(!cmp.deltas[1].regression);
        assert!(cmp.deltas[2].regression);
        assert_eq!(cmp.regressions().count(), 1);
    }

    #[test]
    fn sub_floor_slowdowns_are_noise_not_regressions() {
        // 0.089ms → 0.143ms is 60% slower in relative terms but only 54µs in
        // absolute terms — observed between two back-to-back single-rep runs
        // of the same binary, i.e. pure timer/warm-up noise.
        let old = snapshot(&[("controller:tiny", "star", 0.089), ("sweep:big", "g", 4.0)]);
        let new = snapshot(&[("controller:tiny", "star", 0.143), ("sweep:big", "g", 4.7)]);
        let cmp = compare(&old, &new);
        assert!(!cmp.deltas[0].regression);
        // A 0.7ms slip on a 4ms entry clears both the tolerance and the floor.
        assert!(cmp.deltas[1].regression);
    }

    #[test]
    fn compare_reports_unmatched_entries_on_both_sides() {
        let old = snapshot(&[("controller:a", "star", 10.0), ("app:x", "path", 3.0)]);
        let new = snapshot(&[("controller:a", "star", 9.0), ("app:y", "path", 3.0)]);
        let cmp = compare(&old, &new);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.only_old, vec!["app:x [path]".to_string()]);
        assert_eq!(cmp.only_new, vec!["app:y [path]".to_string()]);
    }

    #[test]
    fn an_empty_baseline_marks_every_entry_as_new_without_regressions() {
        // The shape `dcn_perf --compare` substitutes for a missing baseline
        // file: nothing matches, nothing regresses, the exit stays green.
        let old = snapshot(&[]);
        let new = snapshot(&[("controller:a", "star", 10.0), ("app:x", "path", 3.0)]);
        let cmp = compare(&old, &new);
        assert!(cmp.deltas.is_empty());
        assert_eq!(cmp.regressions().count(), 0);
        assert!(cmp.only_old.is_empty());
        assert_eq!(
            cmp.only_new,
            vec![
                "controller:a [star]".to_string(),
                "app:x [path]".to_string()
            ]
        );
        assert!(cmp.geomean_speedup().is_none());
    }

    #[test]
    fn geomean_speedup_averages_ratios() {
        let old = snapshot(&[("a", "s", 8.0), ("b", "s", 2.0)]);
        let new = snapshot(&[("a", "s", 2.0), ("b", "s", 2.0)]);
        // Ratios 4.0 and 1.0 → geometric mean 2.0.
        let cmp = compare(&old, &new);
        assert!((cmp.geomean_speedup().expect("non-empty") - 2.0).abs() < 1e-9);
        let empty = compare(&snapshot(&[]), &snapshot(&[]));
        assert!(empty.geomean_speedup().is_none());
    }
}

//! # dcn-bench — experiment harness
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems bounding
//! the move/message complexity of the controller and of the protocols built on
//! it. This crate reproduces every one of those claims as a measurable
//! experiment (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded results):
//!
//! | id | claim | harness binary |
//! |----|-------|----------------|
//! | T1 | Lemma 3.3 / Obs. 3.4 — centralized move complexity | `exp_t1_centralized_moves` |
//! | T2 | Theorem 3.5 — adaptive (unknown-U) move complexity | `exp_t2_adaptive_moves` |
//! | T3 | Theorems 4.7/4.9 — distributed message complexity | `exp_t3_distributed_messages` |
//! | T4 | §1.4 — never worse than AAPS, far better than trivial | `exp_t4_vs_baselines` |
//! | T5 | Claim 4.8 — memory per node | `exp_t5_memory` |
//! | F1 | Theorem 5.1 — size estimation | `exp_f1_size_estimation` |
//! | F2 | Theorem 5.2 — name assignment | `exp_f2_name_assignment` |
//! | F3 | Theorem 5.4 — heavy-child decomposition | `exp_f3_heavy_child` |
//! | F4 | §2.2 — safety/liveness across the (M, W) space | `exp_f4_safety_liveness` |
//! | F5 | ablation — iteration trick of Obs. 3.4 | `exp_f5_ablation_iterations` |
//!
//! Controller experiments are expressed as [`Scenario`]s and executed through
//! the shared [`ScenarioRunner`] — one driver loop for every
//! [`Controller`] family ([`Family`] enumerates them, [`run_family`] builds
//! and drives one). The §5 application experiments (F1–F3) run through the
//! same runner via [`ScenarioRunner::run_app`] over the ticketed application
//! runtime ([`AppFamily`] enumerates the six applications, [`run_app_family`]
//! builds and drives one). Only the growth-to-target adaptive experiment (T2)
//! keeps a bespoke loop, because its stopping condition is a network size,
//! not a request count.
//!
//! Every binary prints a table of rows (`experiment, parameters, measured,
//! bound, ratio`) and, when the `DCN_JSON` environment variable is set, the
//! same rows as JSON lines so results can be archived. Set `DCN_QUICK=1` to
//! run reduced sweeps (used by CI and `cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcn_controller::{Controller, ControllerError};
use dcn_workload::{
    AppReport, AppSpec, ArrivalMode, ChurnModel, ControllerSpec, MwBudget, Placement, RunReport,
    Scenario, ScenarioRunner, SweepCell, SweepEngine, SweepGrid, SweepReport, TreeShape,
};

pub use dcn_workload::{app_factory, family_factory, AppFamily, Family};

pub mod compare;

/// The four controller families the sweep grids compare.
fn grid_families() -> Vec<String> {
    ["iterated", "distributed", "trivial", "aaps"]
        .map(String::from)
        .to_vec()
}

/// The §5 applications axis (all six families), when requested.
fn grid_apps(with_apps: bool) -> Vec<String> {
    if !with_apps {
        return Vec::new();
    }
    AppFamily::ALL.map(|f| f.name().to_string()).to_vec()
}

/// Both arrival modes: the closed-loop batch schedule and the open-loop
/// interleaved schedule, in which requests are submitted while distributed
/// agents are still in flight.
fn grid_arrivals() -> Vec<ArrivalMode> {
    vec![ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 24 }]
}

fn grid_churns() -> Vec<ChurnModel> {
    vec![
        ChurnModel::GrowOnly,
        ChurnModel::default_mixed(),
        ChurnModel::BurstyDeepLeaf { burst: 6 },
    ]
}

/// The `dcn-sweep` default grid: 4 families × 6 shapes × 3 churn models × 2
/// arrival modes; `with_apps` adds the six §5 applications as a further
/// axis. Defined here — not in the CLI — so the CLI, the determinism tests
/// and the perf harness all sweep the *same* grid.
pub fn full_grid(seed: u64, replicates: usize, with_apps: bool) -> SweepGrid {
    SweepGrid {
        name: "sweep-full".to_string(),
        families: grid_families(),
        apps: grid_apps(with_apps),
        shapes: vec![
            TreeShape::Star { nodes: 63 },
            TreeShape::Path { nodes: 63 },
            TreeShape::Balanced {
                nodes: 63,
                arity: 3,
            },
            TreeShape::RandomRecursive { nodes: 63, seed: 7 },
            TreeShape::PreferentialAttachment { nodes: 63, seed: 7 },
            TreeShape::Spider {
                legs: 4,
                leg_length: 16,
            },
        ],
        shards: vec![],
        churns: grid_churns(),
        placements: vec![Placement::Uniform],
        arrivals: grid_arrivals(),
        budgets: vec![MwBudget { m: 128, w: 32 }],
        requests: 96,
        replicates,
        base_seed: seed,
    }
}

/// The `dcn-sweep --quick` grid: 4 families × 4 shapes × 3 churn models × 2
/// arrival modes = 96 cells, small enough for a CI smoke step; `with_apps`
/// adds the six §5 applications (240 cells total). The golden-hash
/// regression tests in `tests/sweep_determinism.rs` pin this grid's exact
/// CSV/JSON bytes (with the CLI's default seed 2007), so the one definition
/// here *is* the byte-level contract.
pub fn quick_grid(seed: u64, replicates: usize, with_apps: bool) -> SweepGrid {
    SweepGrid {
        name: "sweep-quick".to_string(),
        families: grid_families(),
        apps: grid_apps(with_apps),
        shapes: vec![
            TreeShape::Star { nodes: 23 },
            TreeShape::Path { nodes: 23 },
            TreeShape::PreferentialAttachment { nodes: 23, seed: 7 },
            TreeShape::Spider {
                legs: 3,
                leg_length: 8,
            },
        ],
        shards: vec![],
        churns: grid_churns(),
        placements: vec![Placement::Uniform],
        arrivals: grid_arrivals(),
        budgets: vec![MwBudget { m: 48, w: 12 }],
        requests: 40,
        replicates,
        base_seed: seed,
    }
}

/// The default `--seed` of the sweep CLI, shared with the golden-hash tests
/// and the perf harness's distributed-quick entry.
pub const DEFAULT_SWEEP_SEED: u64 = 2007;

/// One output row of an experiment.
#[derive(Clone, Debug)]
pub struct Row {
    /// Experiment identifier (e.g. `"T3"`).
    pub experiment: String,
    /// Human-readable parameter description for this row.
    pub params: String,
    /// The measured quantity (messages, moves, ratio, …).
    pub measured: f64,
    /// The theoretical bound / reference value this row is compared against.
    pub bound: f64,
    /// `measured / bound` — the "constant factor"; the *shape* claim of the
    /// paper holds when this stays roughly flat across the sweep.
    pub ratio: f64,
}

impl Row {
    /// Builds a row, computing the ratio.
    pub fn new(experiment: &str, params: String, measured: f64, bound: f64) -> Self {
        Row {
            experiment: experiment.to_string(),
            params,
            measured,
            bound,
            ratio: if bound > 0.0 {
                measured / bound
            } else {
                f64::NAN
            },
        }
    }

    /// The row as one JSON line (hand-rolled; the build environment has no
    /// serde). String escaping is shared with the scenario serialiser
    /// ([`dcn_workload::json_quote`]).
    pub fn to_json_line(&self) -> String {
        format!(
            r#"{{"experiment": {}, "params": {}, "measured": {}, "bound": {}, "ratio": {}}}"#,
            dcn_workload::json_quote(&self.experiment),
            dcn_workload::json_quote(&self.params),
            json_num(self.measured),
            json_num(self.bound),
            json_num(self.ratio),
        )
    }
}

/// Formats a float as a JSON value (`NaN`/infinities become `null`).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Prints rows as an aligned text table, plus JSON lines when `DCN_JSON` is
/// set.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    println!(
        "{:<6} {:<52} {:>14} {:>14} {:>8}",
        "exp", "params", "measured", "bound", "ratio"
    );
    for row in rows {
        println!(
            "{:<6} {:<52} {:>14.1} {:>14.1} {:>8.3}",
            row.experiment, row.params, row.measured, row.bound, row.ratio
        );
    }
    if std::env::var("DCN_JSON").is_ok() {
        for row in rows {
            println!("{}", row.to_json_line());
        }
    }
    println!();
}

/// Returns `true` when reduced sweeps were requested (`DCN_QUICK=1`), which is
/// also the default under `cargo bench` wrappers.
pub fn quick_mode() -> bool {
    std::env::var("DCN_QUICK").is_ok_and(|v| v != "0")
}

/// Picks the sweep sizes for experiments: full by default, reduced in quick
/// mode.
pub fn sweep_sizes(full: &[usize], quick: &[usize]) -> Vec<usize> {
    if quick_mode() {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Builds a fresh controller of `family` over the scenario's initial tree,
/// sized for the scenario's budget and request count — a thin wrapper around
/// [`ControllerSpec::for_scenario`](dcn_workload::ControllerSpec), kept so
/// experiment binaries read naturally.
///
/// # Errors
///
/// Propagates parameter validation errors (e.g. `W = 0` for families that
/// require `W ≥ 1`).
pub fn build_controller(
    family: Family,
    scenario: &Scenario,
) -> Result<Box<dyn Controller>, ControllerError> {
    ControllerSpec::for_scenario(family, scenario).build_for(&ScenarioRunner::new(scenario.clone()))
}

/// The worker-thread count used by the harness binaries: `DCN_WORKERS` if
/// set, otherwise the machine's available parallelism (at least 2 so the
/// parallel path is always exercised).
pub fn default_workers() -> usize {
    std::env::var("DCN_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(2)
        })
}

/// Runs a declarative [`SweepGrid`] over the workspace's controller families
/// on `workers` threads.
pub fn run_grid(grid: &SweepGrid, workers: usize) -> SweepReport {
    SweepEngine::new(workers).run(grid, &family_factory)
}

/// Runs an explicit cell list (for sweeps whose parameters co-vary, e.g. `M`
/// growing with the tree size) over the workspace's controller families.
pub fn run_cells(grid_name: &str, cells: Vec<SweepCell>, workers: usize) -> SweepReport {
    SweepEngine::new(workers).run_cells(grid_name.to_string(), cells, &family_factory)
}

/// Builds a controller of `family` and drives it through `scenario` with the
/// shared [`ScenarioRunner`].
///
/// # Panics
///
/// Panics on invalid scenario parameters or simulator errors (experiment
/// harness context, where that is a bug in the sweep definition).
pub fn run_family(family: Family, scenario: &Scenario) -> RunReport {
    let mut ctrl = build_controller(family, scenario)
        .unwrap_or_else(|e| panic!("{}: invalid parameters: {e}", family.name()));
    ScenarioRunner::new(scenario.clone())
        .run(ctrl.as_mut())
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", family.name()))
}

/// Builds a §5 application of `family` over the scenario's initial tree and
/// drives it through the shared [`ScenarioRunner`].
///
/// # Panics
///
/// Panics on invalid scenario parameters or simulator errors (experiment
/// harness context, where that is a bug in the sweep definition).
pub fn run_app_family(family: AppFamily, scenario: &Scenario) -> AppReport {
    let runner = ScenarioRunner::new(scenario.clone());
    let mut app = AppSpec::for_scenario(family, scenario)
        .build_for(&runner)
        .unwrap_or_else(|e| panic!("{}: invalid parameters: {e}", family.name()));
    runner
        .run_app(app.as_mut())
        .unwrap_or_else(|e| panic!("{}: run failed: {e}", family.name()))
}

/// The theoretical distributed/centralized bound shape
/// `U · log²U · log(M/(W+1))` used as the comparison column for T1–T3.
pub fn iterated_bound(u: usize, m: u64, w: u64) -> f64 {
    let uf = u.max(2) as f64;
    let log2u = uf.log2();
    let ratio = ((m as f64) / (w as f64 + 1.0)).max(2.0);
    uf * log2u * log2u * ratio.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_workload::{ArrivalMode, ChurnModel, Placement, TreeShape};

    fn small_scenario() -> Scenario {
        Scenario {
            name: "bench-test".to_string(),
            shape: TreeShape::Star { nodes: 15 },
            churn: ChurnModel::GrowOnly,
            placement: Placement::Uniform,
            arrival: ArrivalMode::Batch,
            requests: 20,
            m: 30,
            w: 10,
            seed: 1,
        }
    }

    #[test]
    fn rows_compute_ratios() {
        let r = Row::new("T1", "n=8".into(), 50.0, 100.0);
        assert!((r.ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rows_serialise_to_json_lines() {
        let r = Row::new("T1", "n=\"8\"".into(), 50.0, 0.0);
        let line = r.to_json_line();
        assert!(line.contains(r#""experiment": "T1""#));
        assert!(line.contains("\\\"8\\\""));
        assert!(line.contains(r#""ratio": null"#));
    }

    #[test]
    fn every_family_runs_the_same_scenario() {
        let scenario = small_scenario();
        for family in Family::ALL {
            let report = run_family(family, &scenario);
            assert_eq!(report.controller, family.name());
            assert!(report.granted > 0, "{}", family.name());
            assert!(report.granted <= report.m, "{}", family.name());
            report.check().unwrap();
        }
    }

    #[test]
    fn distributed_runs_grow_the_tree() {
        let report = run_family(Family::Distributed, &small_scenario());
        assert!(report.messages > 0);
        assert!(report.final_nodes > 16);
    }

    #[test]
    fn every_application_runs_the_same_scenario() {
        let scenario = small_scenario();
        for family in AppFamily::ALL {
            let report = run_app_family(family, &scenario);
            assert_eq!(report.app, family.name());
            assert!(report.granted > 0, "{}", family.name());
            assert_eq!(report.invariant_violations, 0, "{}", family.name());
            report.check().unwrap();
        }
    }

    #[test]
    fn bound_is_monotone() {
        assert!(iterated_bound(1000, 100, 10) > iterated_bound(100, 100, 10));
    }
}

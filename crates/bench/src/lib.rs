//! # dcn-bench — experiment harness
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems bounding
//! the move/message complexity of the controller and of the protocols built on
//! it. This crate reproduces every one of those claims as a measurable
//! experiment (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md
//! for recorded results):
//!
//! | id | claim | harness binary |
//! |----|-------|----------------|
//! | T1 | Lemma 3.3 / Obs. 3.4 — centralized move complexity | `exp_t1_centralized_moves` |
//! | T2 | Theorem 3.5 — adaptive (unknown-U) move complexity | `exp_t2_adaptive_moves` |
//! | T3 | Theorems 4.7/4.9 — distributed message complexity | `exp_t3_distributed_messages` |
//! | T4 | §1.4 — never worse than AAPS, far better than trivial | `exp_t4_vs_baselines` |
//! | T5 | Claim 4.8 — memory per node | `exp_t5_memory` |
//! | F1 | Theorem 5.1 — size estimation | `exp_f1_size_estimation` |
//! | F2 | Theorem 5.2 — name assignment | `exp_f2_name_assignment` |
//! | F3 | Theorem 5.4 — heavy-child decomposition | `exp_f3_heavy_child` |
//! | F4 | §2.2 — safety/liveness across the (M, W) space | `exp_f4_safety_liveness` |
//! | F5 | ablation — iteration trick of Obs. 3.4 | `exp_f5_ablation_iterations` |
//!
//! Every binary prints a table of rows (`experiment, parameters, measured,
//! bound, ratio`) and, when the `DCN_JSON` environment variable is set, the
//! same rows as JSON lines so results can be archived. Set `DCN_QUICK=1` to
//! run reduced sweeps (used by CI and `cargo bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcn_controller::distributed::DistributedController;
use dcn_controller::{Outcome, RequestKind};
use dcn_simnet::{DelayModel, SimConfig};
use dcn_tree::{DynamicTree, NodeId};
use dcn_workload::{ChurnGenerator, ChurnModel, ChurnOp, TreeShape};
use serde::Serialize;

/// One output row of an experiment.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Experiment identifier (e.g. `"T3"`).
    pub experiment: String,
    /// Human-readable parameter description for this row.
    pub params: String,
    /// The measured quantity (messages, moves, ratio, …).
    pub measured: f64,
    /// The theoretical bound / reference value this row is compared against.
    pub bound: f64,
    /// `measured / bound` — the "constant factor"; the *shape* claim of the
    /// paper holds when this stays roughly flat across the sweep.
    pub ratio: f64,
}

impl Row {
    /// Builds a row, computing the ratio.
    pub fn new(experiment: &str, params: String, measured: f64, bound: f64) -> Self {
        Row {
            experiment: experiment.to_string(),
            params,
            measured,
            bound,
            ratio: if bound > 0.0 { measured / bound } else { f64::NAN },
        }
    }
}

/// Prints rows as an aligned text table, plus JSON lines when `DCN_JSON` is
/// set.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    println!(
        "{:<6} {:<52} {:>14} {:>14} {:>8}",
        "exp", "params", "measured", "bound", "ratio"
    );
    for row in rows {
        println!(
            "{:<6} {:<52} {:>14.1} {:>14.1} {:>8.3}",
            row.experiment, row.params, row.measured, row.bound, row.ratio
        );
    }
    if std::env::var("DCN_JSON").is_ok() {
        for row in rows {
            println!("{}", serde_json::to_string(row).expect("row serialises"));
        }
    }
    println!();
}

/// Returns `true` when reduced sweeps were requested (`DCN_QUICK=1`), which is
/// also the default under `cargo bench` wrappers.
pub fn quick_mode() -> bool {
    std::env::var("DCN_QUICK").map_or(false, |v| v != "0")
}

/// Picks the sweep sizes for experiments: full by default, reduced in quick
/// mode.
pub fn sweep_sizes(full: &[usize], quick: &[usize]) -> Vec<usize> {
    if quick_mode() {
        quick.to_vec()
    } else {
        full.to_vec()
    }
}

/// Converts a workload [`ChurnOp`] into a controller request.
pub fn op_to_request(op: &ChurnOp) -> (NodeId, RequestKind) {
    match *op {
        ChurnOp::AddLeaf { parent } => (parent, RequestKind::AddLeaf),
        ChurnOp::AddInternal { below, parent } => (parent, RequestKind::AddInternalAbove(below)),
        ChurnOp::Remove { node } => (node, RequestKind::RemoveSelf),
        ChurnOp::Event { at } => (at, RequestKind::NonTopological),
    }
}

/// Summary of one distributed-controller run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Total messages (agent hops + auxiliary waves).
    pub messages: u64,
    /// Permits granted.
    pub granted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Final network size.
    pub final_nodes: usize,
    /// Topological changes applied.
    pub changes: u64,
}

/// Runs the fixed-bound distributed controller over a generated workload,
/// submitting requests in batches so that topological changes take effect
/// between batches (the controlled dynamic model).
pub fn run_distributed(
    seed: u64,
    shape: TreeShape,
    model: ChurnModel,
    total_requests: usize,
    batch: usize,
    m: u64,
    w: u64,
) -> RunStats {
    let tree = dcn_workload::build_tree(shape);
    let u_bound = tree.node_count() + total_requests + 1;
    let config = SimConfig::new(seed).with_delay(DelayModel::Uniform { min: 1, max: 8 });
    let mut ctrl =
        DistributedController::new(config, tree, m, w, u_bound).expect("valid parameters");
    let mut gen = ChurnGenerator::new(model, seed.wrapping_add(17));
    let mut submitted = 0usize;
    while submitted < total_requests {
        let want = batch.min(total_requests - submitted);
        let ops = gen.batch(ctrl.tree(), want);
        if ops.is_empty() {
            break;
        }
        for op in &ops {
            let (at, kind) = op_to_request(op);
            if ctrl.submit(at, kind).is_ok() {
                submitted += 1;
            }
        }
        ctrl.run().expect("run to quiescence");
    }
    let records = ctrl.records();
    let changes = records
        .iter()
        .filter(|r| r.outcome.is_granted() && r.kind.is_topological())
        .count() as u64;
    RunStats {
        messages: ctrl.messages(),
        granted: ctrl.granted(),
        rejected: records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Rejected))
            .count() as u64,
        final_nodes: ctrl.tree().node_count(),
        changes,
    }
}

/// The theoretical distributed/centralized bound shape
/// `U · log²U · log(M/(W+1))` used as the comparison column for T1–T3.
pub fn iterated_bound(u: usize, m: u64, w: u64) -> f64 {
    let uf = u.max(2) as f64;
    let log2u = uf.log2();
    let ratio = ((m as f64) / (w as f64 + 1.0)).max(2.0);
    uf * log2u * log2u * ratio.log2()
}

/// Builds a tree and a request list for the centralized controllers from a
/// churn model (the centralized API is synchronous, so the ops are generated
/// against the evolving tree inside the controller loop by the callers).
pub fn initial_tree(shape: TreeShape) -> DynamicTree {
    dcn_workload::build_tree(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_compute_ratios() {
        let r = Row::new("T1", "n=8".into(), 50.0, 100.0);
        assert!((r.ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn run_distributed_smoke() {
        let stats = run_distributed(
            1,
            TreeShape::Star { nodes: 15 },
            ChurnModel::GrowOnly,
            20,
            10,
            30,
            10,
        );
        assert!(stats.granted > 0);
        assert!(stats.messages > 0);
        assert!(stats.final_nodes > 16);
    }

    #[test]
    fn bound_is_monotone() {
        assert!(iterated_bound(1000, 100, 10) > iterated_bound(100, 100, 10));
    }

    #[test]
    fn op_conversion_matches_arrival_conventions() {
        let op = ChurnOp::AddLeaf {
            parent: NodeId::from_index(4),
        };
        assert_eq!(op_to_request(&op).0, NodeId::from_index(4));
        let op = ChurnOp::Remove {
            node: NodeId::from_index(2),
        };
        assert_eq!(op_to_request(&op), (NodeId::from_index(2), RequestKind::RemoveSelf));
    }
}

//! Seeded case-loop property tests for the §5 applications driven
//! *incrementally* through the ticketed runtime: `AncestryLabeling` and
//! `HeavyChildDecomposition` must hold their invariants across mixed
//! `FullChurn` traces (leaf and internal inserts plus deletes) on all four
//! classic tree shapes, with execution advanced in small bounded `step`
//! slices rather than one blocking batch.
//!
//! The build environment has no proptest, so each property runs a fixed
//! number of seeded random cases through `dcn-rng`; every failure is
//! reproducible from its printed case seed.

use dcn_estimator::{AncestryLabeling, Application, HeavyChildDecomposition};
use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_simnet::SimConfig;
use dcn_workload::{build_tree, ChurnGenerator, ChurnModel, TreeShape};

const CASES: u64 = 12;

/// The four classic shapes, picked per case.
fn shape_for(case: u64, nodes: usize) -> TreeShape {
    match case % 4 {
        0 => TreeShape::Star { nodes },
        1 => TreeShape::Path { nodes },
        2 => TreeShape::Balanced { nodes, arity: 3 },
        _ => TreeShape::RandomRecursive {
            nodes,
            seed: case + 1,
        },
    }
}

/// Drives `app` through a seeded mixed-churn trace in small incremental
/// slices: a few operations are submitted, execution advances by a tiny
/// bounded `step` budget (leaving iteration agents in flight while the next
/// operations arrive), and the invariant is checked at every quiescent
/// point. Returns (granted, rejected) tallies read from the record history.
fn drive_incrementally(
    app: &mut dyn Application,
    case: u64,
    rng: &mut DetRng,
    rounds: usize,
) -> (u64, u64) {
    let mut churn = ChurnGenerator::new(
        ChurnModel::FullChurn {
            add_leaf: 40,
            add_internal: 20,
            remove: 30,
        },
        case.wrapping_mul(0x9E37_79B9).wrapping_add(5),
    );
    for _ in 0..rounds {
        let want = rng.gen_range(1usize..6);
        for op in churn.batch(app.tree(), want) {
            let (at, kind) = op.to_request();
            // Stale operations (target vanished under an earlier grant) are
            // dropped, exactly like the runner does.
            let _ = app.submit(at, kind);
            // A tiny slice: agents stay in flight across submissions.
            let quantum = rng.gen_range(1u64..8);
            app.step(quantum)
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
        // Drain to quiescence in bounded slices (never one blocking call).
        loop {
            let progress = app.step(16).unwrap_or_else(|e| panic!("case {case}: {e}"));
            if progress.quiescent {
                break;
            }
        }
        app.check_invariants()
            .unwrap_or_else(|e| panic!("case {case} ({}): {e}", app.name()));
    }
    let granted = app
        .records()
        .iter()
        .filter(|r| r.outcome.is_granted())
        .count() as u64;
    let rejected = app.records().len() as u64 - granted;
    (granted, rejected)
}

/// Corollary 5.7 under incremental execution: labels stay present, correct
/// and short across mixed full-churn traces on all four shapes.
#[test]
fn ancestry_labeling_invariants_hold_under_incremental_steps() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(7_000 + case);
        let n0 = rng.gen_range(8usize..28);
        let seed = rng.gen_range(0u64..1_000);
        let tree = build_tree(shape_for(case, n0));
        let mut labels = AncestryLabeling::new(SimConfig::new(seed), tree)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let rounds = rng.gen_range(4usize..9);
        let (granted, _) = drive_incrementally(&mut labels, case, &mut rng, rounds);
        assert!(granted > 0, "case {case}: nothing granted");
        // Every ticket resolved: the driver never strands a request.
        assert!(labels.tree().check_invariants().is_ok(), "case {case}");
    }
}

/// Theorem 5.4 under incremental execution: the light-ancestor bound holds
/// across mixed full-churn traces on all four shapes.
#[test]
fn heavy_child_light_depth_holds_under_incremental_steps() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(8_000 + case);
        let n0 = rng.gen_range(6usize..20);
        let seed = rng.gen_range(0u64..1_000);
        let tree = build_tree(shape_for(case, n0));
        let mut heavy = HeavyChildDecomposition::new(SimConfig::new(seed), tree)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let rounds = rng.gen_range(4usize..9);
        let (granted, _) = drive_incrementally(&mut heavy, case, &mut rng, rounds);
        assert!(granted > 0, "case {case}: nothing granted");
        assert!(heavy.tree().check_invariants().is_ok(), "case {case}");
    }
}

//! End-to-end determinism of the sweep engine over the real controller
//! families: the same grid must emit byte-identical CSV and JSON whether it
//! runs on one worker or many, and re-running must reproduce exactly.

use dcn_bench::run_grid;
use dcn_workload::{ArrivalMode, ChurnModel, MwBudget, Placement, SweepGrid, TreeShape};

/// FNV-1a over the report bytes: the golden-hash fingerprint used to pin the
/// exact CSV/JSON output across storage-layer changes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn grid() -> SweepGrid {
    SweepGrid {
        name: "determinism".to_string(),
        families: ["iterated", "distributed", "trivial", "aaps"]
            .map(String::from)
            .to_vec(),
        apps: vec![],
        shapes: vec![
            TreeShape::Path { nodes: 15 },
            TreeShape::PreferentialAttachment { nodes: 15, seed: 3 },
            TreeShape::Spider {
                legs: 3,
                leg_length: 5,
            },
        ],
        shards: vec![],
        churns: vec![
            ChurnModel::GrowOnly,
            ChurnModel::default_mixed(),
            ChurnModel::BurstyDeepLeaf { burst: 4 },
        ],
        placements: vec![Placement::Uniform, Placement::Deepest],
        // Both schedules: closed-loop batches and open-loop interleaved
        // arrivals, in which requests are submitted while the distributed
        // family's agents are still in flight — determinism must survive
        // mid-flight submission too.
        arrivals: vec![ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 16 }],
        budgets: vec![MwBudget { m: 32, w: 8 }],
        requests: 24,
        replicates: 1,
        base_seed: 41,
    }
}

/// One worker and N workers (more workers than cells included) produce the
/// same bytes, and a repeated run reproduces them.
#[test]
fn sweep_reports_are_byte_identical_across_worker_counts() {
    let grid = grid();
    assert_eq!(grid.cell_count(), 144);
    let serial = run_grid(&grid, 1);
    let serial_csv = serial.to_csv();
    let serial_json = serial.to_json();
    for workers in [4, 16, 100] {
        let parallel = run_grid(&grid, workers);
        assert_eq!(
            serial_csv,
            parallel.to_csv(),
            "CSV diverged at {workers} workers"
        );
        assert_eq!(
            serial_json,
            parallel.to_json(),
            "JSON diverged at {workers} workers"
        );
    }
    // Replay: a fresh serial run reproduces the bytes too.
    let again = run_grid(&grid, 1);
    assert_eq!(serial_csv, again.to_csv());
}

/// The same grid with the §5 apps axis attached: `size-estimator` and
/// `name-assigner` cells run through `ScenarioRunner::run_app` inside the
/// same engine, and the emitted CSV/JSON must stay byte-identical whether
/// the grid runs on 1, 4 or 16 workers.
fn apps_grid() -> SweepGrid {
    let mut grid = grid();
    grid.name = "determinism-apps".to_string();
    grid.families = vec!["iterated".to_string(), "distributed".to_string()];
    grid.apps = vec!["size-estimator".to_string(), "name-assigner".to_string()];
    grid
}

/// Satellite of the application-layer refactor: the apps grid is
/// byte-identical across worker counts and reproducible on re-run, exactly
/// like the controller grid.
#[test]
fn apps_grid_reports_are_byte_identical_across_worker_counts() {
    let grid = apps_grid();
    assert_eq!(grid.cell_count(), 144);
    let serial = run_grid(&grid, 1);
    let serial_csv = serial.to_csv();
    let serial_json = serial.to_json();
    for workers in [4, 16] {
        let parallel = run_grid(&grid, workers);
        assert_eq!(
            serial_csv,
            parallel.to_csv(),
            "CSV diverged at {workers} workers"
        );
        assert_eq!(
            serial_json,
            parallel.to_json(),
            "JSON diverged at {workers} workers"
        );
    }
    // Replay: a fresh serial run reproduces the bytes too.
    let again = run_grid(&grid, 1);
    assert_eq!(serial_csv, again.to_csv());
    // The app cells all ran clean: every ticket answered, no §5 invariant
    // violations anywhere on the diversified grid.
    for cell in serial
        .cells
        .iter()
        .filter(|c| c.cell.kind == dcn_workload::CellKind::App)
    {
        let report = cell
            .app_report()
            .unwrap_or_else(|| panic!("cell {}: {:?}", cell.cell.index, cell.report));
        assert!(
            cell.violation.is_none(),
            "cell {} ({} / {}): {:?}",
            cell.cell.index,
            cell.cell.family,
            cell.cell.scenario.name,
            cell.violation
        );
        assert_eq!(report.invariant_violations, 0);
        assert!(report.invariant_checks > 0);
    }
    // Both app families produced summary rows with real message costs.
    let summaries = serial.summaries();
    assert_eq!(summaries.len(), 4);
    for s in summaries.iter().filter(|s| s.family.contains('-')) {
        assert_eq!(s.cells, 36, "{}", s.family);
        assert_eq!(s.errors, 0, "{}", s.family);
        assert!(s.p95_messages > 0, "{}", s.family);
    }
}

/// Golden-hash regression: the `dcn-sweep --quick` CSV/JSON bytes (the
/// shared [`dcn_bench::quick_grid`] with the CLI's default seed) are pinned
/// to the fingerprints recorded *before* the PR-5 storage migration
/// (HashMap → SecondaryMap/FxHashMap). Any change to iteration order, seed
/// derivation, rng consumption or report formatting moves these hashes; a
/// storage layer swap must not.
#[test]
fn quick_sweep_output_matches_the_pre_migration_golden_hashes() {
    let report = run_grid(
        &dcn_bench::quick_grid(dcn_bench::DEFAULT_SWEEP_SEED, 1, false),
        4,
    );
    assert_eq!(fnv1a(report.to_csv().as_bytes()), 0x5f11_4439_3da3_8ffb);
    assert_eq!(fnv1a(report.to_json().as_bytes()), 0x145f_ad9c_a905_130d);
}

/// Same pin for the apps axis (`dcn-sweep --quick --apps`).
#[test]
fn quick_apps_sweep_output_matches_the_pre_migration_golden_hashes() {
    let report = run_grid(
        &dcn_bench::quick_grid(dcn_bench::DEFAULT_SWEEP_SEED, 1, true),
        4,
    );
    assert_eq!(fnv1a(report.to_csv().as_bytes()), 0x28f8_1db0_2517_7e1e);
    assert_eq!(fnv1a(report.to_json().as_bytes()), 0x044f_0be1_1db2_f5d2);
}

/// The sharded-controller grid: the `distributed` family side by side with
/// `sharded:k1`, `sharded:k2` and `sharded:k8` on the same scenario points.
/// The low-M budget forces per-shard slice exhaustion, so the k ≥ 2 cells
/// actually run cross-shard permit-exchange waves inside the sweep.
fn sharded_grid() -> SweepGrid {
    let mut grid = grid();
    grid.name = "determinism-sharded".to_string();
    grid.families = vec!["distributed".to_string()];
    grid.shards = vec![1, 2, 8];
    grid.budgets = vec![MwBudget { m: 32, w: 8 }, MwBudget { m: 10, w: 3 }];
    grid
}

/// Satellite of the sharded controller: the `shards` axis emits
/// byte-identical CSV/JSON across 1, 4 and 16 sweep workers (the per-shard
/// worker threads nest inside the sweep's worker pool), and re-running
/// reproduces the bytes.
#[test]
fn sharded_grid_reports_are_byte_identical_across_worker_counts() {
    let grid = sharded_grid();
    assert_eq!(grid.cell_count(), 288);
    let serial = run_grid(&grid, 1);
    let serial_csv = serial.to_csv();
    let serial_json = serial.to_json();
    for workers in [4, 16] {
        let parallel = run_grid(&grid, workers);
        assert_eq!(
            serial_csv,
            parallel.to_csv(),
            "CSV diverged at {workers} workers"
        );
        assert_eq!(
            serial_json,
            parallel.to_json(),
            "JSON diverged at {workers} workers"
        );
    }
    let again = run_grid(&grid, 1);
    assert_eq!(serial_csv, again.to_csv());
    // Every sharded cell ran clean: built, answered every ticket, and kept
    // the global §2.2 safety/liveness conditions across shards.
    for cell in &serial.cells {
        assert!(
            cell.report.is_ok(),
            "cell {} ({}): {:?}",
            cell.cell.index,
            cell.cell.scenario.name,
            cell.report
        );
        assert!(
            cell.violation.is_none(),
            "cell {} ({} / {}): {:?}",
            cell.cell.index,
            cell.cell.family,
            cell.cell.scenario.name,
            cell.violation
        );
    }
    let summaries = serial.summaries();
    assert_eq!(summaries.len(), 4);
    for s in &summaries {
        assert_eq!(s.cells, 72, "{}", s.family);
        assert_eq!(s.errors, 0, "{}", s.family);
        assert!(s.p95_messages > 0, "{}", s.family);
    }
}

/// Property over the whole grid: `sharded:k1` is a strict pass-through of
/// the `distributed` family. Because the sweep's per-cell seeds are
/// family-blind, the two drivers meet the identical workload at every
/// scenario point, so their outcome columns must agree row for row.
#[test]
fn sharded_k1_rows_match_the_distributed_family_rows() {
    let report = run_grid(&sharded_grid(), 4);
    let distributed: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.cell.family == "distributed")
        .collect();
    let k1: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.cell.family == "sharded:k1")
        .collect();
    assert_eq!(distributed.len(), 72);
    assert_eq!(distributed.len(), k1.len());
    for (d, s) in distributed.iter().zip(&k1) {
        assert_eq!(d.cell.scenario.seed, s.cell.scenario.seed);
        let (dr, sr) = (
            d.run_report().expect("distributed cell ran"),
            s.run_report().expect("sharded:k1 cell ran"),
        );
        for (label, a, b) in [
            ("submitted", dr.submitted, sr.submitted),
            ("granted", dr.granted, sr.granted),
            ("rejected", dr.rejected, sr.rejected),
            ("wasted", dr.wasted, sr.wasted),
            ("moves", dr.moves, sr.moves),
            ("messages", dr.messages, sr.messages),
            ("p50_latency", dr.p50_answer_latency, sr.p50_answer_latency),
            ("p95_latency", dr.p95_answer_latency, sr.p95_answer_latency),
            ("final_nodes", dr.final_nodes as u64, sr.final_nodes as u64),
        ] {
            assert_eq!(a, b, "{} diverged on {}", label, d.cell.scenario.name);
        }
    }
}

/// Every cell of the grid runs clean over the real families: no build/run
/// errors and no safety/liveness/accounting violations.
#[test]
fn every_family_survives_the_diversified_grid() {
    let report = run_grid(&grid(), 4);
    for cell in &report.cells {
        assert!(
            cell.report.is_ok(),
            "cell {} ({}): {:?}",
            cell.cell.index,
            cell.cell.scenario.name,
            cell.report
        );
        assert!(
            cell.violation.is_none(),
            "cell {} ({} / {}): {:?}",
            cell.cell.index,
            cell.cell.family,
            cell.cell.scenario.name,
            cell.violation
        );
    }
    // All four families actually produced work.
    let summaries = report.summaries();
    assert_eq!(summaries.len(), 4);
    for s in &summaries {
        assert_eq!(s.cells, 36, "{}", s.family);
        assert_eq!(s.errors, 0, "{}", s.family);
        assert!(s.p95_messages > 0, "{}", s.family);
    }
}

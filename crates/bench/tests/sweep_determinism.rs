//! End-to-end determinism of the sweep engine over the real controller
//! families: the same grid must emit byte-identical CSV and JSON whether it
//! runs on one worker or many, and re-running must reproduce exactly.

use dcn_bench::run_grid;
use dcn_workload::{ArrivalMode, ChurnModel, MwBudget, Placement, SweepGrid, TreeShape};

fn grid() -> SweepGrid {
    SweepGrid {
        name: "determinism".to_string(),
        families: ["iterated", "distributed", "trivial", "aaps"]
            .map(String::from)
            .to_vec(),
        shapes: vec![
            TreeShape::Path { nodes: 15 },
            TreeShape::PreferentialAttachment { nodes: 15, seed: 3 },
            TreeShape::Spider {
                legs: 3,
                leg_length: 5,
            },
        ],
        churns: vec![
            ChurnModel::GrowOnly,
            ChurnModel::default_mixed(),
            ChurnModel::BurstyDeepLeaf { burst: 4 },
        ],
        placements: vec![Placement::Uniform, Placement::Deepest],
        // Both schedules: closed-loop batches and open-loop interleaved
        // arrivals, in which requests are submitted while the distributed
        // family's agents are still in flight — determinism must survive
        // mid-flight submission too.
        arrivals: vec![ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 16 }],
        budgets: vec![MwBudget { m: 32, w: 8 }],
        requests: 24,
        replicates: 1,
        base_seed: 41,
    }
}

/// One worker and N workers (more workers than cells included) produce the
/// same bytes, and a repeated run reproduces them.
#[test]
fn sweep_reports_are_byte_identical_across_worker_counts() {
    let grid = grid();
    assert_eq!(grid.cell_count(), 144);
    let serial = run_grid(&grid, 1);
    let serial_csv = serial.to_csv();
    let serial_json = serial.to_json();
    for workers in [4, 16, 100] {
        let parallel = run_grid(&grid, workers);
        assert_eq!(
            serial_csv,
            parallel.to_csv(),
            "CSV diverged at {workers} workers"
        );
        assert_eq!(
            serial_json,
            parallel.to_json(),
            "JSON diverged at {workers} workers"
        );
    }
    // Replay: a fresh serial run reproduces the bytes too.
    let again = run_grid(&grid, 1);
    assert_eq!(serial_csv, again.to_csv());
}

/// Every cell of the grid runs clean over the real families: no build/run
/// errors and no safety/liveness/accounting violations.
#[test]
fn every_family_survives_the_diversified_grid() {
    let report = run_grid(&grid(), 4);
    for cell in &report.cells {
        assert!(
            cell.report.is_ok(),
            "cell {} ({}): {:?}",
            cell.cell.index,
            cell.cell.scenario.name,
            cell.report
        );
        assert!(
            cell.violation.is_none(),
            "cell {} ({} / {}): {:?}",
            cell.cell.index,
            cell.cell.family,
            cell.cell.scenario.name,
            cell.violation
        );
    }
    // All four families actually produced work.
    let summaries = report.summaries();
    assert_eq!(summaries.len(), 4);
    for s in &summaries {
        assert_eq!(s.cells, 36, "{}", s.family);
        assert_eq!(s.errors, 0, "{}", s.family);
        assert!(s.p95_messages > 0, "{}", s.family);
    }
}

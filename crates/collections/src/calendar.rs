//! The [`CalendarQueue`] — an O(1) timing-wheel event queue with a heap
//! overflow tier.

use std::collections::BinaryHeap;

/// Sentinel for "no slot" in the wheel's intrusive lists.
const NONE_SLOT: u32 = u32::MAX;

/// One cell of the wheel's slab: a payload plus the intrusive link to the
/// next item of the same bucket (or the next free slot, when the cell is on
/// the free list). `item` is `None` only for free-listed cells.
struct Slot<T> {
    item: Option<T>,
    next: u32,
}

/// Abstract simulated time (matches `dcn_simnet::Time`).
type Time = u64;

/// A far-future item parked in the overflow tier, ordered as a **min**-heap
/// by `(time, seq)` (the comparison is reversed so it can sit in a std
/// max-`BinaryHeap`). Payloads never participate in the ordering.
struct Far<T> {
    time: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Far<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}

impl<T> Eq for Far<T> {}

impl<T> PartialOrd for Far<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Far<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the std max-heap then pops the smallest (time, seq).
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic time-ordered queue: a hierarchical *calendar* (timing
/// wheel) whose near tier is an array of width-1 buckets covering the next
/// `wheel_size` time units, plus a binary-heap overflow tier for far-future
/// items.
///
/// Discrete-event simulators whose delay distributions are bounded (every
/// hop delay drawn from a bounded model, every retry delay a small constant)
/// schedule almost every event within a small horizon of the current time.
/// For that workload the wheel gives O(1) `schedule` and amortized-O(1)
/// `pop`, where a binary heap pays O(log n) pointer-chasing per operation.
/// Items beyond the horizon are parked in the overflow heap and *migrate*
/// into the wheel exactly when the clock advances far enough — rare by the
/// bounded-delay assumption, and paid only by the far-future items
/// themselves.
///
/// # Ordering contract
///
/// Items pop in ascending `(time, seq)` order, where `seq` is the insertion
/// counter — i.e. time-ordered, ties broken FIFO by insertion. This is
/// exactly the total order a `BinaryHeap<Reverse<(time, seq)>>` produces,
/// which makes the wheel a drop-in replacement for heap-backed event queues
/// (property-tested against that model in `tests/prop_calendar.rs`). Within
/// a bucket the FIFO order *is* the seq order: a bucket only ever holds items
/// of a single timestamp (width-1 buckets), direct schedules append in seq
/// order, and overflow items migrate — in heap order — before any direct
/// schedule of their timestamp can occur.
///
/// # Clock discipline
///
/// `now` is the timestamp of the last popped item and never runs backwards:
/// absolute schedules in the past are clamped to `now` and counted
/// ([`CalendarQueue::clamped_count`]); relative schedules whose fire time
/// would overflow [`u64::MAX`] saturate and are counted
/// ([`CalendarQueue::saturated_count`]) — and `debug_assert!` fire in debug
/// builds, because a saturated fire time silently collapses distinct delays
/// onto the same instant.
///
/// ```
/// use dcn_collections::CalendarQueue;
///
/// let mut q: CalendarQueue<&str> = CalendarQueue::new();
/// q.schedule(10, "late");
/// q.schedule(5, "early");
/// q.schedule(5, "early-tie");
/// assert_eq!(q.peek_time(), Some(5));
/// assert_eq!(q.pop(), Some((5, "early")));
/// assert_eq!(q.pop(), Some((5, "early-tie")));
/// assert_eq!(q.now(), 5);
/// assert_eq!(q.pop(), Some((10, "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct CalendarQueue<T> {
    /// The near tier's storage: one slab of linked cells shared by all
    /// buckets, recycled through an internal free list. A single arena keeps
    /// every pending item in one compact allocation (the wheel's working set
    /// is the number of in-flight events, not the number of buckets) where
    /// per-bucket growable buffers would pay one allocator round-trip per
    /// bucket and scatter the payloads across the heap.
    slab: Vec<Slot<T>>,
    /// Head of the slab's free list (`NONE_SLOT` when full).
    free_head: u32,
    /// Per-bucket FIFO list heads/tails into the slab (`NONE_SLOT` = empty).
    /// The bucket of an item at time `t` (with `now <= t < now + wheel_size`)
    /// is `t & mask`; each bucket only ever holds items of one timestamp, and
    /// insertion order within it *is* seq order (see the ordering contract).
    head: Vec<u32>,
    tail: Vec<u32>,
    mask: u64,
    /// One bit per bucket (bit set ⇔ bucket non-empty), so finding the
    /// earliest pending timestamp is a word scan instead of walking empty
    /// buckets one by one.
    occupied: Vec<u64>,
    /// Number of items currently in the wheel.
    wheel_len: usize,
    /// The far tier: items at time `>= now + wheel_size`, min-heap ordered
    /// by `(time, seq)`.
    overflow: BinaryHeap<Far<T>>,
    /// Timestamp of the last popped item (0 initially); monotone.
    now: Time,
    next_seq: u64,
    clamped: u64,
    saturated: u64,
}

/// Default near-horizon width, in time units. Covers every delay the
/// workspace's bounded delay models draw (hop delays ≤ 8 by default, retry
/// delays a small constant) with slack; larger delays are still handled
/// correctly through the overflow tier, just not in O(1). Kept at one
/// bitmap word so the occupancy scan in `wheel_min` is branch-free, and
/// small enough that constructing a simulator (the sweep builds one per
/// cell) zeroes half a kilobyte rather than several.
const DEFAULT_WHEEL_SIZE: usize = 64;

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with the default near-horizon width.
    pub fn new() -> Self {
        Self::with_wheel_size(DEFAULT_WHEEL_SIZE)
    }

    /// Creates an empty queue whose near tier covers the next `wheel_size`
    /// time units. `wheel_size` must be a power of two.
    pub fn with_wheel_size(wheel_size: usize) -> Self {
        assert!(
            wheel_size.is_power_of_two(),
            "wheel size must be a power of two, got {wheel_size}"
        );
        CalendarQueue {
            slab: Vec::new(),
            free_head: NONE_SLOT,
            head: vec![NONE_SLOT; wheel_size],
            tail: vec![NONE_SLOT; wheel_size],
            mask: (wheel_size - 1) as u64,
            occupied: vec![0; wheel_size.div_ceil(64)],
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            clamped: 0,
            saturated: 0,
        }
    }

    /// Current time: the timestamp of the last popped item.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of items still pending (both tiers).
    #[inline]
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Returns `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of absolute-time schedules that pointed into the past and were
    /// clamped to `now` (0 in a correct driver).
    pub fn clamped_count(&self) -> u64 {
        self.clamped
    }

    /// Number of relative schedules whose fire time saturated at
    /// [`u64::MAX`], silently collapsing distinct delays onto one instant
    /// (0 in a correct driver).
    pub fn saturated_count(&self) -> u64 {
        self.saturated
    }

    /// The exclusive upper end of the near horizon: items at `>= now + W`
    /// live in the overflow tier.
    #[inline]
    fn horizon(&self) -> Time {
        self.now.saturating_add(self.mask + 1)
    }

    /// Schedules `item` to fire `delay` units after the current time and
    /// returns its absolute fire time. A fire time that would exceed
    /// [`u64::MAX`] saturates there; the saturation is counted (and asserted
    /// in debug builds) because it collapses distinct delays onto the same
    /// instant.
    #[inline]
    pub fn schedule(&mut self, delay: Time, item: T) -> Time {
        // Fast path for the overwhelmingly common case: a bounded delay
        // lands inside the near horizon by construction (`now + delay <
        // now + W` ⇔ `delay ≤ mask`), so the clamp check, the saturation
        // check and the horizon comparison all vanish.
        if delay <= self.mask {
            // (checked: a clock within `mask` of `Time::MAX` falls through
            // to the saturating slow path instead of overflowing.)
            if let Some(time) = self.now.checked_add(delay) {
                self.next_seq += 1;
                self.push_wheel(time, item);
                return time;
            }
        }
        if delay > Time::MAX - self.now {
            self.saturated += 1;
            debug_assert!(
                false,
                "schedule saturated: now={} + delay={delay} exceeds Time::MAX",
                self.now
            );
        }
        self.schedule_at(self.now.saturating_add(delay), item)
    }

    /// Schedules `item` at the absolute time `at` and returns the actual
    /// fire time. Time never runs backwards: an `at` in the past is clamped
    /// to `now` and the clamp is counted.
    #[inline]
    pub fn schedule_at(&mut self, at: Time, item: T) -> Time {
        let time = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        if time < self.horizon() {
            self.push_wheel(time, item);
        } else {
            self.overflow.push(Far { time, seq, item });
        }
        time
    }

    #[inline]
    fn push_wheel(&mut self, time: Time, item: T) {
        let idx = if self.free_head != NONE_SLOT {
            let idx = self.free_head;
            let slot = &mut self.slab[idx as usize];
            self.free_head = slot.next;
            slot.item = Some(item);
            slot.next = NONE_SLOT;
            idx
        } else {
            let idx = self.slab.len() as u32;
            assert!(idx != NONE_SLOT, "calendar wheel slab overflow");
            self.slab.push(Slot {
                item: Some(item),
                next: NONE_SLOT,
            });
            idx
        };
        let b = (time & self.mask) as usize;
        let tail = self.tail[b];
        if tail == NONE_SLOT {
            self.head[b] = idx;
            self.occupied[b / 64] |= 1u64 << (b % 64);
        } else {
            self.slab[tail as usize].next = idx;
        }
        self.tail[b] = idx;
        self.wheel_len += 1;
    }

    /// The earliest wheel timestamp: the occupancy bitmap is scanned
    /// circularly from `now`'s own bucket, so the cost is a handful of word
    /// operations regardless of how sparse the wheel is. Correct because
    /// every wheel item lies in `[now, now + W)`, where bucket indices are
    /// injective — the first occupied bucket at or after `now`'s position
    /// (circularly) is the earliest timestamp.
    fn wheel_min(&self) -> Time {
        debug_assert!(self.wheel_len > 0);
        let p = (self.now & self.mask) as usize;
        let nwords = self.occupied.len();
        let mut wi = p / 64;
        let mut word = self.occupied[wi] & (!0u64 << (p % 64));
        let q = loop {
            if word != 0 {
                break wi * 64 + word.trailing_zeros() as usize;
            }
            wi = (wi + 1) % nwords;
            word = self.occupied[wi];
        };
        // Circular distance from now's bucket to the found bucket.
        self.now + ((q as u64).wrapping_sub(p as u64) & self.mask)
    }

    /// The timestamp of the next item, without popping it.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        if self.wheel_len > 0 {
            // The overflow invariant (far items are at `>= now + W`, wheel
            // items strictly below it) makes the wheel minimum global.
            Some(self.wheel_min())
        } else {
            self.overflow.peek().map(|far| far.time)
        }
    }

    /// Advances the clock to the earliest pending timestamp and pulls every
    /// overflow item that the new horizon reveals into the wheel. Returns the
    /// timestamp. Caller guarantees the queue is non-empty.
    fn advance(&mut self) -> Time {
        let time = if self.wheel_len > 0 {
            self.wheel_min()
        } else {
            // lint: allow(unwrap) advance() is only called when len > 0, and
            // an empty wheel with a non-zero len means items sit in overflow
            self.overflow.peek().expect("queue is non-empty").time
        };
        self.now = time;
        // Migrate far items revealed by the wider horizon. Migration happens
        // *before* control returns to the caller, so any later direct
        // schedule of the same timestamp (necessarily with a larger seq)
        // lands behind the migrated items — per-bucket FIFO stays seq order.
        let horizon = self.horizon();
        while let Some(far) = self.overflow.peek() {
            if far.time >= horizon {
                break;
            }
            // lint: allow(unwrap) peek() just returned Some on this heap
            let Far { time, item, .. } = self.overflow.pop().expect("peeked");
            self.push_wheel(time, item);
        }
        time
    }

    /// Clears bucket `b`'s occupancy bit once it has been emptied.
    #[inline]
    fn mark_empty(&mut self, b: usize) {
        self.occupied[b / 64] &= !(1u64 << (b % 64));
    }

    /// Unlinks the first cell of bucket `b` (which must be non-empty),
    /// returning its payload and recycling the cell onto the free list.
    #[inline]
    fn pop_bucket_front(&mut self, b: usize) -> T {
        let idx = self.head[b];
        debug_assert!(idx != NONE_SLOT);
        let slot = &mut self.slab[idx as usize];
        // lint: allow(unwrap) every slot on a bucket list holds an item; only
        // free-list slots are empty, and `head[b]` never points at those
        let item = slot.item.take().expect("linked cells hold items");
        let next = slot.next;
        slot.next = self.free_head;
        self.free_head = idx;
        self.head[b] = next;
        if next == NONE_SLOT {
            self.tail[b] = NONE_SLOT;
            self.mark_empty(b);
        }
        self.wheel_len -= 1;
        item
    }

    /// Pops the next item in `(time, seq)` order, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(Time, T)> {
        if self.is_empty() {
            return None;
        }
        let time = self.advance();
        let b = (time & self.mask) as usize;
        Some((time, self.pop_bucket_front(b)))
    }

    /// Pops **every** item sharing the earliest timestamp into `out` (in seq
    /// order, appended), advances the clock to that timestamp and returns it.
    /// This is the batch-drain primitive: one queue probe serves a whole
    /// same-time cohort. Items scheduled *at* the returned timestamp during
    /// the subsequent processing form the next cohort (their seqs are
    /// larger), so repeated batch drains reproduce the exact `(time, seq)`
    /// pop order.
    #[inline]
    pub fn pop_batch(&mut self, out: &mut Vec<T>) -> Option<Time> {
        if self.is_empty() {
            return None;
        }
        let time = self.advance();
        let b = (time & self.mask) as usize;
        while self.head[b] != NONE_SLOT {
            let item = self.pop_bucket_front(b);
            out.push(item);
        }
        Some(time)
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for CalendarQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CalendarQueue")
            .field("now", &self.now)
            .field("wheel_len", &self.wheel_len)
            .field("overflow_len", &self.overflow.len())
            .field("clamped", &self.clamped)
            .field("saturated", &self.saturated)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(7, 1);
        q.schedule(3, 2);
        q.schedule(3, 3);
        q.schedule(9, 4);
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(3, 2), (3, 3), (7, 1), (9, 4)]);
        assert_eq!(q.now(), 9);
    }

    #[test]
    fn far_future_items_cross_the_overflow_tier_in_order() {
        // Wheel of 8: anything ≥ now + 8 is parked in the overflow heap.
        let mut q: CalendarQueue<u32> = CalendarQueue::with_wheel_size(8);
        q.schedule(100, 1);
        q.schedule(3, 2);
        q.schedule(101, 3);
        q.schedule(100, 4);
        assert_eq!(q.pop(), Some((3, 2)));
        // The jump across the empty gap reveals the far items.
        assert_eq!(q.pop(), Some((100, 1)));
        assert_eq!(q.pop(), Some((100, 4)));
        assert_eq!(q.pop(), Some((101, 3)));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 101);
    }

    #[test]
    fn migration_preserves_seq_order_against_direct_schedules() {
        // An overflow item and a later direct schedule of the same timestamp
        // must pop in insertion order. The overflow item (seq 0) is parked at
        // t=10; after the clock advances, a direct schedule at t=10 (larger
        // seq) joins its bucket — migration must already have happened.
        let mut q: CalendarQueue<u32> = CalendarQueue::with_wheel_size(8);
        q.schedule(10, 1); // seq 0 → overflow (10 ≥ 0 + 8)
        q.schedule(4, 2); // seq 1 → wheel
        assert_eq!(q.pop(), Some((4, 2))); // now = 4; horizon 12 > 10 → migrate
        q.schedule_at(10, 3); // seq 2, same timestamp, scheduled later
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 3)));
    }

    #[test]
    fn pop_batch_drains_exactly_one_timestamp() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(6, 3);
        q.schedule(5, 4);
        let mut out = Vec::new();
        assert_eq!(q.pop_batch(&mut out), Some(5));
        assert_eq!(out, vec![1, 2, 4]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.len(), 1);
        // A same-time schedule after the drain forms the *next* cohort.
        q.schedule(0, 5);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(5));
        assert_eq!(out, vec![5]);
        out.clear();
        assert_eq!(q.pop_batch(&mut out), Some(6));
        assert_eq!(out, vec![3]);
        assert_eq!(q.pop_batch(&mut out), None);
    }

    #[test]
    fn past_schedules_are_clamped_and_counted() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(10, 1);
        q.pop();
        assert_eq!(q.now(), 10);
        assert_eq!(q.schedule_at(3, 2), 10);
        assert_eq!(q.clamped_count(), 1);
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.now(), 10);
    }

    #[test]
    fn peek_time_reports_without_popping() {
        let mut q: CalendarQueue<u32> = CalendarQueue::with_wheel_size(8);
        assert_eq!(q.peek_time(), None);
        q.schedule(100, 1); // overflow
        assert_eq!(q.peek_time(), Some(100));
        q.schedule(2, 2); // wheel
        assert_eq!(q.peek_time(), Some(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.now(), 0);
        assert_eq!(q.pop(), Some((2, 2)));
        assert_eq!(q.peek_time(), Some(100));
    }

    #[test]
    fn saturated_schedules_are_counted() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        // At now = 0 a delay of u64::MAX fires exactly at u64::MAX — no
        // collapse, no saturation.
        assert_eq!(q.schedule(u64::MAX, 1), u64::MAX);
        assert_eq!(q.saturated_count(), 0);
        // Advance the clock, then overflow the fire time: the distinct
        // delays MAX and MAX-1 would both land on MAX.
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        q.schedule(10, 1);
        q.pop();
        assert_eq!(q.now(), 10);
        let saturating =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| q.schedule(u64::MAX - 5, 2)));
        if cfg!(debug_assertions) {
            // The debug_assert fires, but only after the count is recorded.
            assert!(saturating.is_err());
        } else {
            assert_eq!(saturating.unwrap(), u64::MAX);
        }
        assert_eq!(q.saturated_count(), 1);
    }

    #[test]
    fn len_and_is_empty_track_both_tiers() {
        let mut q: CalendarQueue<u32> = CalendarQueue::with_wheel_size(8);
        assert!(q.is_empty());
        q.schedule(1, 1);
        q.schedule(1000, 2);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}

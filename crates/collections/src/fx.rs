//! The [`FxHasher`] and the `std` container aliases built on it.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// The multiplicative mixing constant: `⌊2^64 / φ⌋` rounded to an odd
/// neighbour, the same constant the Firefox/rustc "Fx" hash uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, **fixed-seed** hasher: rotate, xor, multiply.
///
/// This is an in-tree implementation of the hash rustc and Firefox use for
/// their internal tables (the workspace has no crates.io access, so
/// `rustc-hash` itself is not available). It is several times cheaper than
/// SipHash on the short integer keys the hot paths use, and having no random
/// per-instance seed it hashes identically across runs and platforms — one
/// less nondeterminism hazard, at the cost of no HashDoS resistance, which is
/// irrelevant for a simulator hashing its own ids.
///
/// ```
/// use dcn_collections::FxHashMap;
///
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(17, "seventeen");
/// assert_eq!(m.get(&17), Some(&"seventeen"));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // lint: allow(unwrap) chunks_exact(8) yields exactly 8-byte chunks
            let word = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Builds [`FxHasher`]s. Zero-sized and [`Default`], so the container
/// aliases construct with `::default()`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using the [`FxHasher`]. Construct with
/// `FxHashMap::default()`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the [`FxHasher`]. Construct with
/// `FxHashSet::default()`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher.hash_one(value)
    }

    #[test]
    fn equal_values_hash_equal_and_the_seed_is_fixed() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"tree"), hash_of(&"tree"));
        // No per-instance randomness: two independent builders agree.
        let a = FxBuildHasher.build_hasher().finish();
        let b = FxBuildHasher.build_hasher().finish();
        assert_eq!(a, b);
    }

    #[test]
    fn nearby_keys_spread() {
        // Not a statistical test — just a guard against a degenerate
        // implementation (e.g. the identity function on small ints).
        let hashes: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let mut sorted = hashes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collisions on consecutive small keys");
        assert!(hashes.windows(2).all(|w| w[0].abs_diff(w[1]) > 1000));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        let long = vec![7u8; 23];
        assert_eq!(hash_of(&long), hash_of(&long.clone()));
        assert_ne!(hash_of(&vec![7u8; 23]), hash_of(&vec![7u8; 24]));
    }

    #[test]
    fn containers_work_with_the_alias_types() {
        let mut map: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..100 {
            map.insert((i, i * 2), i as u64);
        }
        assert_eq!(map.len(), 100);
        assert_eq!(map.get(&(40, 80)), Some(&40));
        let set: FxHashSet<u32> = (0..50).collect();
        assert!(set.contains(&49));
        assert_eq!(set.len(), 50);
    }
}

//! # dcn-collections — entity-keyed storage for the hot paths
//!
//! The workspace's entity identifiers — `NodeId`, `AgentId`, `RequestId` —
//! are dense arena indices: allocated sequentially, never reused. Storing
//! per-entity state in a general-purpose `std::collections::HashMap` pays a
//! SipHash round per access for keys that are already perfect array indices.
//! On the simulator's event loop that hashing dominates the profile, so this
//! crate provides the two storage shapes the hot paths actually need:
//!
//! * [`SecondaryMap`] — a dense `Vec<Option<V>>` slot map keyed by any
//!   [`EntityKey`]. O(1) access with no hashing at all, and iteration in
//!   **index order**, which makes every loop over it deterministic by
//!   construction (a property the byte-identical sweep reports rely on).
//!   Use it whenever the key is one of the workspace's dense entity ids.
//! * [`CalendarQueue`] — a timing-wheel priority queue for bounded-delay
//!   discrete-event scheduling: O(1) schedule/pop through a width-1 bucket
//!   wheel for the near horizon, a binary-heap overflow tier for far-future
//!   items, popping in the exact `(time, insertion)` order a
//!   `BinaryHeap<Reverse<_>>` would produce — but without the O(log n)
//!   sift per event.
//! * [`FxHashMap`] / [`FxHashSet`] — `std` hash containers with the
//!   [`FxHasher`], an in-tree implementation of the Firefox/rustc
//!   multiply-rotate hash. For keys that are *not* dense indices (composite
//!   tuples, foreign u64 counters) where a hash table is still the right
//!   shape but SipHash is overkill. The hasher is fixed-seed and therefore
//!   deterministic across runs and platforms — but iteration order is still
//!   unspecified, so hot-path loops over these must not let the order
//!   escape into outputs (sort first, or aggregate order-insensitively).
//!
//! The storage policy for the workspace (DESIGN.md "Performance model"):
//! dense entity key → [`SecondaryMap`]; sparse or composite key →
//! [`FxHashMap`]; `std` SipHash maps only in cold paths, justified by a
//! `// perf: cold` comment.
//!
//! ```
//! use dcn_collections::{EntityKey, SecondaryMap};
//!
//! #[derive(Clone, Copy, PartialEq, Eq, Debug)]
//! struct Id(u32);
//! impl EntityKey for Id {
//!     fn index(self) -> usize {
//!         self.0 as usize
//!     }
//!     fn from_index(index: usize) -> Self {
//!         Id(index as u32)
//!     }
//! }
//!
//! let mut map: SecondaryMap<Id, &str> = SecondaryMap::new();
//! map.insert(Id(3), "three");
//! map.insert(Id(1), "one");
//! assert_eq!(map.get(Id(3)), Some(&"three"));
//! // Iteration is in index order, not insertion order.
//! let keys: Vec<Id> = map.keys().collect();
//! assert_eq!(keys, vec![Id(1), Id(3)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calendar;
mod fx;
mod secondary;

pub use calendar::CalendarQueue;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use secondary::SecondaryMap;

/// A dense entity identifier: a copyable key that is (reversibly) a plain
/// array index.
///
/// Implemented by the workspace's arena ids (`NodeId`, `AgentId`,
/// `RequestId`), whose values are allocated sequentially and never reused.
/// The contract is `from_index(k.index()) == k` for every key handed to a
/// [`SecondaryMap`]; indices should be dense (small relative to the number
/// of live entities), since a `SecondaryMap` allocates up to the largest
/// index it has seen.
pub trait EntityKey: Copy + Eq {
    /// The raw array index of this key.
    fn index(self) -> usize;

    /// Rebuilds the key from a raw index (the inverse of
    /// [`EntityKey::index`]).
    fn from_index(index: usize) -> Self;
}

//! The [`SecondaryMap`] slot map.

use crate::EntityKey;
use std::fmt;
use std::marker::PhantomData;

/// A dense map from an [`EntityKey`] to `V`: a `Vec<Option<V>>` indexed by
/// `key.index()`.
///
/// Compared to a `HashMap` keyed by the same id, every operation is a bounds
/// check plus an array access — no hashing — and iteration visits entries in
/// **ascending index order**, so loops over the map are deterministic without
/// any sorting. Removing an entry leaves a vacant slot that is reused if the
/// same index is inserted again; the backing vector never shrinks, so memory
/// is proportional to the largest index ever inserted (which, for the
/// workspace's never-reused arena ids, is the same growth law as the arenas
/// themselves).
///
/// ```
/// use dcn_collections::{EntityKey, SecondaryMap};
/// # #[derive(Clone, Copy, PartialEq, Eq, Debug)]
/// # struct Id(u32);
/// # impl EntityKey for Id {
/// #     fn index(self) -> usize { self.0 as usize }
/// #     fn from_index(index: usize) -> Self { Id(index as u32) }
/// # }
/// let mut m: SecondaryMap<Id, u64> = SecondaryMap::new();
/// assert_eq!(m.insert(Id(2), 20), None);
/// assert_eq!(m.insert(Id(2), 22), Some(20));
/// *m.get_or_insert_with(Id(0), || 1) += 4;
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.remove(Id(2)), Some(22));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![(Id(0), &5)]);
/// ```
pub struct SecondaryMap<K, V> {
    slots: Vec<Option<V>>,
    len: usize,
    _key: PhantomData<K>,
}

impl<K: EntityKey, V> SecondaryMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        SecondaryMap {
            slots: Vec::new(),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Creates an empty map with room for indices `0..capacity` without
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        SecondaryMap {
            slots: Vec::with_capacity(capacity),
            len: 0,
            _key: PhantomData,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Returns `true` if `key` has an entry.
    pub fn contains_key(&self, key: K) -> bool {
        self.slots.get(key.index()).is_some_and(Option::is_some)
    }

    /// Shared access to the value at `key`.
    pub fn get(&self, key: K) -> Option<&V> {
        self.slots.get(key.index()).and_then(Option::as_ref)
    }

    /// Exclusive access to the value at `key`.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        self.slots.get_mut(key.index()).and_then(Option::as_mut)
    }

    /// Inserts `value` at `key`, returning the previous value if the slot
    /// was occupied.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let index = key.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let old = self.slots[index].replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes and returns the value at `key`, leaving a vacant slot.
    pub fn remove(&mut self, key: K) -> Option<V> {
        let old = self.slots.get_mut(key.index()).and_then(Option::take);
        if old.is_some() {
            self.len -= 1;
        }
        old
    }

    /// Exclusive access to the value at `key`, inserting `default()` first
    /// if the slot is vacant (the moral equivalent of
    /// `HashMap::entry(key).or_insert_with(default)`).
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let index = key.index();
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let slot = &mut self.slots[index];
        if slot.is_none() {
            *slot = Some(default());
            self.len += 1;
        }
        // lint: allow(unwrap) the branch above filled the slot if it was empty
        slot.as_mut().expect("slot was just filled")
    }

    /// Keeps only the entries for which `keep` returns `true`. Entries are
    /// visited in index order.
    pub fn retain(&mut self, mut keep: impl FnMut(K, &mut V) -> bool) {
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if let Some(value) = slot {
                if !keep(K::from_index(index), value) {
                    *slot = None;
                    self.len -= 1;
                }
            }
        }
    }

    /// Iterates over `(key, &value)` pairs in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (K, &V)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_ref().map(|v| (K::from_index(index), v)))
    }

    /// Iterates over `(key, &mut value)` pairs in ascending index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (K, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_mut().map(|v| (K::from_index(index), v)))
    }

    /// Iterates over the occupied keys in ascending index order.
    pub fn keys(&self) -> impl Iterator<Item = K> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.as_ref().map(|_| K::from_index(index)))
    }

    /// Iterates over the values in ascending key-index order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates over the values mutably, in ascending key-index order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }
}

impl<K: EntityKey, V> Default for SecondaryMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: EntityKey, V: Clone> Clone for SecondaryMap<K, V> {
    fn clone(&self) -> Self {
        SecondaryMap {
            slots: self.slots.clone(),
            len: self.len,
            _key: PhantomData,
        }
    }
}

impl<K: EntityKey + fmt::Debug, V: fmt::Debug> fmt::Debug for SecondaryMap<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: EntityKey, V> FromIterator<(K, V)> for SecondaryMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = SecondaryMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    struct Id(usize);
    impl EntityKey for Id {
        fn index(self) -> usize {
            self.0
        }
        fn from_index(index: usize) -> Self {
            Id(index)
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: SecondaryMap<Id, String> = SecondaryMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(Id(5), "five".into()), None);
        assert_eq!(m.insert(Id(5), "FIVE".into()), Some("five".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(Id(5)).map(String::as_str), Some("FIVE"));
        assert!(m.contains_key(Id(5)));
        assert!(!m.contains_key(Id(4)));
        assert_eq!(m.remove(Id(5)), Some("FIVE".into()));
        assert_eq!(m.remove(Id(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn iteration_is_in_index_order() {
        let mut m: SecondaryMap<Id, u32> = SecondaryMap::new();
        for &i in &[9, 2, 7, 0] {
            m.insert(Id(i), i as u32 * 10);
        }
        let pairs: Vec<(Id, u32)> = m.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(
            pairs,
            vec![(Id(0), 0), (Id(2), 20), (Id(7), 70), (Id(9), 90)]
        );
        assert_eq!(
            m.keys().collect::<Vec<_>>(),
            vec![Id(0), Id(2), Id(7), Id(9)]
        );
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![0, 20, 70, 90]);
    }

    #[test]
    fn get_or_insert_with_fills_vacant_slots_once() {
        let mut m: SecondaryMap<Id, Vec<u32>> = SecondaryMap::new();
        m.get_or_insert_with(Id(3), Vec::new).push(1);
        m.get_or_insert_with(Id(3), || panic!("slot is occupied"))
            .push(2);
        assert_eq!(m.get(Id(3)), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn retain_keeps_len_consistent() {
        let mut m: SecondaryMap<Id, u32> = (0..10).map(|i| (Id(i), i as u32)).collect();
        m.retain(|_, v| *v % 2 == 0);
        assert_eq!(m.len(), 5);
        assert!(m.values().all(|v| v % 2 == 0));
    }

    #[test]
    fn removed_slots_are_reusable() {
        let mut m: SecondaryMap<Id, u32> = SecondaryMap::new();
        m.insert(Id(4), 1);
        m.remove(Id(4));
        assert_eq!(m.insert(Id(4), 2), None);
        assert_eq!(m.get(Id(4)), Some(&2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn values_mut_and_iter_mut_mutate_in_place() {
        let mut m: SecondaryMap<Id, u32> = (0..4).map(|i| (Id(i), 1)).collect();
        for v in m.values_mut() {
            *v += 1;
        }
        for (k, v) in m.iter_mut() {
            *v += k.index() as u32;
        }
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
    }
}

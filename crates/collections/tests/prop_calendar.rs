//! Seeded case-loop property test: a [`CalendarQueue`] must produce exactly
//! the pop sequence of the `BinaryHeap<Reverse<(time, seq, item)>>` it
//! replaced — the global ascending `(time, seq)` order, ties broken FIFO by
//! insertion — together with the same `now()`, `len()` and `clamped_count()`
//! observables, under arbitrary interleavings of `schedule`, `schedule_at`,
//! `pop` and `pop_batch`. Small wheel widths are drawn on purpose so the
//! overflow tier and its migration path are constantly exercised.

use dcn_collections::CalendarQueue;
use dcn_rng::{DetRng, Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The reference model: the heap the simulator historically used. `seq` is
/// the insertion counter, so the heap's total order on `(time, seq)` *is*
/// the determinism contract the calendar has to reproduce.
#[derive(Default)]
struct HeapModel {
    heap: BinaryHeap<Reverse<(u64, u64, u32)>>,
    now: u64,
    next_seq: u64,
    clamped: u64,
}

impl HeapModel {
    fn schedule_at(&mut self, at: u64, item: u32) -> u64 {
        let time = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        self.heap.push(Reverse((time, self.next_seq, item)));
        self.next_seq += 1;
        time
    }

    fn schedule(&mut self, delay: u64, item: u32) -> u64 {
        self.schedule_at(self.now.saturating_add(delay), item)
    }

    fn pop(&mut self) -> Option<(u64, u32)> {
        let Reverse((time, _, item)) = self.heap.pop()?;
        self.now = time;
        Some((time, item))
    }

    /// Pops every item sharing the earliest timestamp, appending to `out`.
    fn pop_batch(&mut self, out: &mut Vec<u32>) -> Option<u64> {
        let Reverse((time, _, item)) = self.heap.pop()?;
        self.now = time;
        out.push(item);
        while let Some(&Reverse((t, _, _))) = self.heap.peek() {
            if t != time {
                break;
            }
            let Reverse((_, _, item)) = self.heap.pop().expect("peeked");
            out.push(item);
        }
        Some(time)
    }
}

fn assert_observables(queue: &CalendarQueue<u32>, model: &HeapModel) {
    assert_eq!(queue.now(), model.now);
    assert_eq!(queue.len(), model.heap.len());
    assert_eq!(queue.is_empty(), model.heap.is_empty());
    assert_eq!(queue.clamped_count(), model.clamped);
    assert_eq!(
        queue.peek_time(),
        model.heap.peek().map(|&Reverse((t, _, _))| t)
    );
}

#[test]
fn calendar_queue_matches_the_heap_model() {
    for case in 0..300u64 {
        let mut rng = DetRng::seed_from_u64(0xca1e_0000 + case);
        // Tiny wheels force items across the overflow tier and back.
        let wheel_size = 1usize << rng.gen_range(1u32..9);
        let mut queue: CalendarQueue<u32> = CalendarQueue::with_wheel_size(wheel_size);
        let mut model = HeapModel::default();
        let ops = rng.gen_range(40usize..240);
        for op in 0..ops {
            let item = op as u32;
            match rng.gen_range(0u32..100) {
                // Bounded relative delays — the wheel's design case.
                0..=39 => {
                    let delay = rng.gen_range(0u64..(2 * wheel_size as u64));
                    assert_eq!(queue.schedule(delay, item), model.schedule(delay, item));
                }
                // Far-future relative delays — straight into the overflow.
                40..=49 => {
                    let delay = rng.gen_range(0u64..10_000);
                    assert_eq!(queue.schedule(delay, item), model.schedule(delay, item));
                }
                // Absolute schedules around `now`, below it often enough to
                // exercise the clamp-and-count path.
                50..=64 => {
                    let at = model.now.saturating_sub(20) + rng.gen_range(0u64..200);
                    assert_eq!(queue.schedule_at(at, item), model.schedule_at(at, item));
                }
                // Single pops.
                65..=84 => {
                    assert_eq!(queue.pop(), model.pop());
                }
                // Batch drains of one whole same-time cohort.
                _ => {
                    let mut got = Vec::new();
                    let mut want = Vec::new();
                    assert_eq!(queue.pop_batch(&mut got), model.pop_batch(&mut want));
                    assert_eq!(got, want);
                }
            }
            assert_observables(&queue, &model);
        }
        // Drain what's left: the full residual pop sequence agrees too.
        loop {
            let (got, want) = (queue.pop(), model.pop());
            assert_eq!(got, want);
            assert_observables(&queue, &model);
            if got.is_none() {
                break;
            }
        }
    }
}

#[test]
fn same_time_cohorts_pop_in_insertion_order_across_tiers() {
    // Directed scenario for the subtle case: items of one timestamp split
    // between the overflow tier (scheduled early, far away) and direct wheel
    // pushes (scheduled later, once the horizon reached them). FIFO order by
    // insertion must survive the migration.
    let mut queue: CalendarQueue<u32> = CalendarQueue::with_wheel_size(4);
    let mut model = HeapModel::default();
    for (delay, item) in [(40u64, 0u32), (40, 1), (1, 2), (41, 3)] {
        assert_eq!(queue.schedule(delay, item), model.schedule(delay, item));
    }
    assert_eq!(queue.pop(), model.pop()); // t=1 → horizon now covers t=40
    for item in [4u32, 5] {
        assert_eq!(queue.schedule_at(40, item), model.schedule_at(40, item));
    }
    let mut got = Vec::new();
    let mut want = Vec::new();
    assert_eq!(queue.pop_batch(&mut got), model.pop_batch(&mut want));
    assert_eq!(got, want);
    assert_eq!(got, vec![0, 1, 4, 5]);
    assert_eq!(queue.pop(), model.pop());
    assert_eq!(queue.pop(), None);
    assert_observables(&queue, &model);
}

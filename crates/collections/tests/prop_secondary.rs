//! Seeded case-loop property test: a [`SecondaryMap`] must behave exactly
//! like a `BTreeMap<usize, V>` — same contents, same lengths, and the same
//! (ascending-key) iteration order — under arbitrary interleavings of
//! insert / remove / get / retain / clear, including re-insertion into slots
//! vacated by a removal.

use dcn_collections::{EntityKey, SecondaryMap};
use dcn_rng::{DetRng, Rng, SeedableRng};
use std::collections::BTreeMap;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Id(usize);

impl EntityKey for Id {
    fn index(self) -> usize {
        self.0
    }
    fn from_index(index: usize) -> Self {
        Id(index)
    }
}

/// Compares every observable of the map against the model.
fn assert_matches_model(map: &SecondaryMap<Id, u64>, model: &BTreeMap<usize, u64>) {
    assert_eq!(map.len(), model.len());
    assert_eq!(map.is_empty(), model.is_empty());
    // Full iteration agrees pairwise — BTreeMap iterates in ascending key
    // order, which is exactly the SecondaryMap iteration contract.
    let got: Vec<(usize, u64)> = map.iter().map(|(k, &v)| (k.index(), v)).collect();
    let want: Vec<(usize, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
    assert_eq!(got, want);
    // keys() / values() are consistent projections of iter().
    assert_eq!(
        map.keys().map(Id::index).collect::<Vec<_>>(),
        want.iter().map(|&(k, _)| k).collect::<Vec<_>>()
    );
    assert_eq!(
        map.values().copied().collect::<Vec<_>>(),
        want.iter().map(|&(_, v)| v).collect::<Vec<_>>()
    );
}

#[test]
fn secondary_map_matches_a_btreemap_model() {
    for case in 0..300u64 {
        let mut rng = DetRng::seed_from_u64(0x5ec0_0000 + case);
        let key_space = 1 + rng.gen_range(0usize..48);
        let mut map: SecondaryMap<Id, u64> = SecondaryMap::new();
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        let ops = rng.gen_range(20usize..160);
        for op in 0..ops {
            let key = rng.gen_range(0usize..key_space);
            match rng.gen_range(0u32..100) {
                // Insert dominates so slots get filled, vacated and refilled.
                0..=44 => {
                    let value = rng.gen::<u64>();
                    assert_eq!(map.insert(Id(key), value), model.insert(key, value));
                }
                45..=69 => {
                    assert_eq!(map.remove(Id(key)), model.remove(&key));
                }
                70..=84 => {
                    assert_eq!(map.get(Id(key)), model.get(&key));
                    assert_eq!(map.contains_key(Id(key)), model.contains_key(&key));
                }
                85..=89 => {
                    let add = rng.gen_range(1u64..10);
                    let got = map.get_or_insert_with(Id(key), || 1000);
                    *got += add;
                    let want = model.entry(key).or_insert(1000);
                    *want += add;
                }
                90..=94 => {
                    let cutoff = rng.gen::<u64>();
                    map.retain(|_, v| *v >= cutoff);
                    model.retain(|_, v| *v >= cutoff);
                }
                95..=97 => {
                    if let (Some(v), Some(w)) = (map.get_mut(Id(key)), model.get_mut(&key)) {
                        *v = v.wrapping_add(op as u64);
                        *w = w.wrapping_add(op as u64);
                    }
                }
                _ => {
                    map.clear();
                    model.clear();
                }
            }
            assert_matches_model(&map, &model);
        }
    }
}

#[test]
fn vacated_slots_are_reused_without_ghosts() {
    // Directed slot-reuse scenario: fill, empty, refill the same indices and
    // check no stale value or length drift survives the churn.
    let mut map: SecondaryMap<Id, u64> = SecondaryMap::new();
    let mut model: BTreeMap<usize, u64> = BTreeMap::new();
    for round in 0..10u64 {
        for k in 0..32usize {
            map.insert(Id(k), round * 100 + k as u64);
            model.insert(k, round * 100 + k as u64);
        }
        for k in (0..32usize).step_by(2) {
            map.remove(Id(k));
            model.remove(&k);
        }
        assert_matches_model(&map, &model);
    }
    assert_eq!(map.len(), 16);
}

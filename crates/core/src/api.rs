//! The shared [`Controller`] runtime abstraction: tickets, events and
//! incremental execution.
//!
//! The workspace grows several controller families — the paper's centralized
//! and distributed (M, W)-Controllers plus the comparison baselines — and they
//! all answer the same kind of question: *may this event take place?* This
//! module is the architectural seam between those implementations and every
//! driver that wants to exercise one of them (the scenario runner and sweep
//! engine in `dcn-workload`, the experiment binaries in `dcn-bench`, the
//! examples and the end-to-end tests): a driver programs against
//! `dyn Controller` and never needs to know which family it is driving.
//!
//! The lifecycle is **ticket-based**, mirroring the paper's online setting
//! where requests arrive at arbitrary nodes at arbitrary times and are
//! answered individually:
//!
//! 1. [`Controller::submit`] hands a request to the controller and returns a
//!    [`RequestId`] *ticket*. Synchronous families answer on the spot; the
//!    distributed family only enqueues a mobile agent.
//! 2. Execution advances either all the way ([`Controller::run_to_quiescence`])
//!    or in bounded slices ([`Controller::step`]), so a driver can interleave
//!    new submissions with in-flight execution (open-loop workloads).
//! 3. Outcomes are observed per request: as [`ControllerEvent`]s drained from
//!    the event stream ([`Controller::drain_events`]), as [`RequestRecord`]s
//!    in the history ([`Controller::records`]), or by ticket
//!    ([`Controller::outcome`]).
//!
//! Cost counters are exposed uniformly through [`ControllerMetrics`].

use crate::request::{Outcome, RequestId, RequestKind, RequestRecord};
use crate::ControllerError;
use dcn_tree::DynamicTree;
use dcn_tree::NodeId;

/// A uniform snapshot of a controller's cost counters.
///
/// Each family reports in its own cost model — the centralized controllers
/// count permit *moves* (§3), the distributed controller counts *messages*
/// (§4) — so both columns are present and a family fills in what it measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerMetrics {
    /// Permit/package movement cost (the centralized move complexity; agent
    /// hops for the distributed controller).
    pub moves: u64,
    /// Total messages sent (agent hops plus auxiliary waves for the
    /// distributed family; request travel plus permit travel for baselines;
    /// equal to `moves` for the purely centralized families, whose model does
    /// not charge request travel).
    pub messages: u64,
    /// The largest per-node state footprint, in bits, under the compressed
    /// representation of Claim 4.8, as sampled at quiescence (plus round
    /// boundaries for the iterated family). This is a lower bound on the
    /// true mid-run peak — per-submission sampling would be quadratic — and
    /// 0 when the family does not track memory at all.
    pub peak_node_memory_bits: u64,
}

/// A per-request outcome notification, drained from
/// [`Controller::drain_events`].
///
/// Events are emitted in answer order. Every ticket issued by
/// [`Controller::submit`] resolves to exactly one of
/// [`ControllerEvent::Granted`], [`ControllerEvent::Rejected`] or
/// [`ControllerEvent::Refused`]; granted *topological* requests additionally
/// emit one [`ControllerEvent::TopologyApplied`] once the change has taken
/// effect on the controller's tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControllerEvent {
    /// The request received a permit.
    Granted {
        /// The request's ticket.
        id: RequestId,
        /// Virtual time at which the answer was delivered (same clock as
        /// [`RequestRecord::answered_at`]).
        at: u64,
        /// What the request asked for.
        kind: RequestKind,
    },
    /// The request was rejected (the budget is spent up to the waste bound).
    Rejected {
        /// The request's ticket.
        id: RequestId,
    },
    /// The request's kind lies outside the controller's dynamic model (see
    /// [`Controller::supports`]); no permit was consumed.
    Refused {
        /// The request's ticket.
        id: RequestId,
    },
    /// A granted topological change has been applied to the controller's
    /// tree.
    TopologyApplied {
        /// The granting request's ticket.
        id: RequestId,
        /// The topological request kind that was applied.
        kind: RequestKind,
        /// The newly created node, for insertions answered synchronously
        /// (`None` for deletions and for the distributed family, whose node
        /// identities are assigned inside the simulator).
        node: Option<NodeId>,
    },
}

impl ControllerEvent {
    /// Appends the events a resolved request produces, in emission order: the
    /// answer event matching the record's outcome (stamped with the record's
    /// answer time), plus one [`ControllerEvent::TopologyApplied`] for a
    /// granted topological request. Shared by every family's event emission
    /// so the event/record contract cannot drift per family.
    pub fn push_for_record(record: &RequestRecord, events: &mut Vec<ControllerEvent>) {
        match record.outcome {
            Outcome::Granted { new_node, .. } => {
                events.push(ControllerEvent::Granted {
                    id: record.id,
                    at: record.answered_at,
                    kind: record.kind,
                });
                if record.kind.is_topological() {
                    events.push(ControllerEvent::TopologyApplied {
                        id: record.id,
                        kind: record.kind,
                        node: new_node,
                    });
                }
            }
            Outcome::Rejected => events.push(ControllerEvent::Rejected { id: record.id }),
            Outcome::Refused => events.push(ControllerEvent::Refused { id: record.id }),
        }
    }

    /// The ticket this event belongs to.
    pub fn id(&self) -> RequestId {
        match *self {
            ControllerEvent::Granted { id, .. }
            | ControllerEvent::Rejected { id }
            | ControllerEvent::Refused { id }
            | ControllerEvent::TopologyApplied { id, .. } => id,
        }
    }

    /// Returns `true` for the three *answer* events (granted / rejected /
    /// refused) that resolve a ticket; `false` for
    /// [`ControllerEvent::TopologyApplied`] notifications.
    pub fn is_answer(&self) -> bool {
        !matches!(self, ControllerEvent::TopologyApplied { .. })
    }
}

/// The result of one bounded execution slice ([`Controller::step`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Progress {
    /// Simulator events processed during this slice (0 for synchronous
    /// families, which answer inside `submit`).
    pub processed: u64,
    /// `true` when every submitted request has been answered and every
    /// granted topological change has been applied — calling
    /// [`Controller::step`] again without new submissions will do nothing.
    pub quiescent: bool,
}

impl Progress {
    /// A slice that found the controller already quiescent.
    pub fn quiescent() -> Self {
        Progress {
            processed: 0,
            quiescent: true,
        }
    }
}

/// The shared behaviour of every (M, W)-controller in the workspace.
///
/// Implemented by [`CentralizedController`](crate::centralized::CentralizedController),
/// [`IteratedController`](crate::centralized::IteratedController),
/// [`DistributedController`](crate::distributed::DistributedController),
/// [`AdaptiveDistributedController`](crate::distributed::AdaptiveDistributedController)
/// and by the `TrivialController` / `AapsController` baselines in
/// `dcn-baseline`.
///
/// Synchronous families answer inside [`Controller::submit`] and emit their
/// events immediately; the distributed families defer execution to
/// [`Controller::run_to_quiescence`] / [`Controller::step`]. Drivers that mix
/// submission and execution freely should drain events after every execution
/// call; drivers that only want aggregates can keep reading
/// [`Controller::granted`] / [`Controller::rejected`].
pub trait Controller {
    /// A short human-readable family name (used in experiment rows).
    fn name(&self) -> &'static str;

    /// The permit budget `M`.
    fn budget(&self) -> u64;

    /// The waste bound `W`.
    fn waste_bound(&self) -> u64;

    /// Returns `true` if this controller's dynamic model covers `kind`.
    ///
    /// The AAPS baseline only supports the grow-only model; submitting an
    /// unsupported kind is not an error — the request is *refused*: it gets a
    /// ticket, a [`ControllerEvent::Refused`] event and an
    /// [`Outcome::Refused`] record, and the safety/liveness accounting is
    /// untouched.
    fn supports(&self, kind: RequestKind) -> bool {
        let _ = kind;
        true
    }

    /// Submits a request arriving at `at` and returns its ticket.
    ///
    /// # Errors
    ///
    /// Returns validation errors (unknown node, malformed topological
    /// request); such a request never entered the controller and resolves to
    /// no event. The *answer* is not part of the return value — it is
    /// observed through [`Controller::drain_events`] /
    /// [`Controller::outcome`] once the execution has progressed far enough
    /// (immediately for synchronous families).
    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError>;

    /// Runs until every submitted request is answered and every granted
    /// topological change has been applied. A no-op for synchronous families.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (event budget exceeded, protocol
    /// violations).
    fn run_to_quiescence(&mut self) -> Result<(), ControllerError>;

    /// Advances execution by at most `budget` simulator events and reports
    /// how far it got, so drivers can interleave new submissions with
    /// in-flight execution (open-loop workloads).
    ///
    /// Synchronous families answer inside [`Controller::submit`] and are
    /// always quiescent; the default implementation (also used by the
    /// batch-oriented adaptive-distributed family) simply delegates to
    /// [`Controller::run_to_quiescence`]. The fixed-bound distributed family
    /// overrides this with true incremental simulation.
    ///
    /// # Errors
    ///
    /// Same as [`Controller::run_to_quiescence`].
    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let _ = budget;
        self.run_to_quiescence()?;
        Ok(Progress::quiescent())
    }

    /// Removes and returns the per-request events produced since the last
    /// drain, in answer order.
    fn drain_events(&mut self) -> Vec<ControllerEvent>;

    /// All resolved requests so far, in answer order (grants, rejects and
    /// refusals alike), with submit/answer virtual times.
    fn records(&self) -> &[RequestRecord];

    /// The outcome of a specific ticket, if it has been answered.
    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.records()
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.outcome)
    }

    /// Number of permits granted so far.
    fn granted(&self) -> u64;

    /// Number of requests rejected so far.
    fn rejected(&self) -> u64;

    /// The spanning tree as currently maintained by the controller.
    fn tree(&self) -> &DynamicTree;

    /// A snapshot of the cost counters.
    fn metrics(&self) -> ControllerMetrics;
}

impl Controller for crate::centralized::CentralizedController {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn budget(&self) -> u64 {
        self.params().m
    }

    fn waste_bound(&self) -> u64 {
        self.params().w
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        let outcome = self.submit(at, kind)?;
        let ledger = self.ledger_mut();
        let id = ledger.issue();
        ledger.record(id, at, kind, outcome);
        Ok(id)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.ledger_mut().drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.ledger().records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.ledger().outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves(),
            messages: self.moves(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

impl Controller for crate::centralized::IteratedController {
    fn name(&self) -> &'static str {
        "iterated"
    }

    fn budget(&self) -> u64 {
        self.budget()
    }

    fn waste_bound(&self) -> u64 {
        self.waste()
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        let outcome = self.submit(at, kind)?;
        let ledger = self.ledger_mut();
        let id = ledger.issue();
        ledger.record(id, at, kind, outcome);
        Ok(id)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.ledger_mut().drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.ledger().records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.ledger().outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves(),
            messages: self.moves(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

impl Controller for crate::distributed::DistributedController {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn budget(&self) -> u64 {
        self.budget()
    }

    fn waste_bound(&self) -> u64 {
        self.waste()
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.submit(at, kind)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.run()
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        self.step(budget)
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.metrics().agent_hops,
            messages: self.messages(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{CentralizedController, IteratedController};
    use crate::distributed::DistributedController;
    use dcn_simnet::SimConfig;

    fn drive(ctrl: &mut dyn Controller, requests: usize) -> Vec<RequestId> {
        let mut ids = Vec::new();
        for i in 0..requests {
            let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
            let at = nodes[(i * 7) % nodes.len()];
            ids.push(ctrl.submit(at, RequestKind::NonTopological).unwrap());
        }
        ctrl.run_to_quiescence().unwrap();
        ids
    }

    #[test]
    fn all_core_families_drive_uniformly_through_dyn_controller() {
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(
                CentralizedController::new(DynamicTree::with_initial_star(15), 8, 4, 64).unwrap(),
            ),
            Box::new(
                IteratedController::new(DynamicTree::with_initial_star(15), 8, 0, 64).unwrap(),
            ),
            Box::new(
                DistributedController::new(
                    SimConfig::new(3),
                    DynamicTree::with_initial_star(15),
                    8,
                    4,
                    64,
                )
                .unwrap(),
            ),
        ];
        for ctrl in &mut controllers {
            let ids = drive(ctrl.as_mut(), 20);
            assert!(ctrl.granted() <= ctrl.budget(), "{}", ctrl.name());
            assert!(ctrl.granted() + ctrl.rejected() == 20, "{}", ctrl.name());
            assert!(ctrl.granted() >= ctrl.budget() - ctrl.waste_bound());
            assert!(ctrl.metrics().messages > 0 || ctrl.metrics().moves > 0);
            assert!(ctrl.supports(RequestKind::RemoveSelf));
            // Tickets are unique and every one resolves to an outcome.
            assert_eq!(ids.len(), 20);
            for &id in &ids {
                assert!(ctrl.outcome(id).is_some(), "{}: {id}", ctrl.name());
            }
            // Event totals mirror the counters exactly.
            let events = ctrl.drain_events();
            let granted = events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Granted { .. }))
                .count() as u64;
            let rejected = events
                .iter()
                .filter(|e| matches!(e, ControllerEvent::Rejected { .. }))
                .count() as u64;
            assert_eq!(granted, ctrl.granted(), "{}", ctrl.name());
            assert_eq!(rejected, ctrl.rejected(), "{}", ctrl.name());
            // Draining is destructive.
            assert!(ctrl.drain_events().is_empty());
        }
    }

    #[test]
    fn stepping_interleaves_submission_with_execution() {
        let mut ctrl = DistributedController::new(
            SimConfig::new(11),
            DynamicTree::with_initial_path(20),
            16,
            8,
            128,
        )
        .unwrap();
        let nodes: Vec<NodeId> = Controller::tree(&ctrl).nodes().collect();
        Controller::submit(&mut ctrl, nodes[15], RequestKind::NonTopological).unwrap();
        // A tiny slice leaves the agent in flight…
        let progress = Controller::step(&mut ctrl, 2).unwrap();
        assert_eq!(progress.processed, 2);
        assert!(!progress.quiescent);
        // …while a second request arrives mid-flight.
        Controller::submit(&mut ctrl, nodes[9], RequestKind::NonTopological).unwrap();
        let mut total = progress.processed;
        loop {
            let p = Controller::step(&mut ctrl, 64).unwrap();
            total += p.processed;
            if p.quiescent {
                break;
            }
        }
        assert!(total > 2);
        assert_eq!(ctrl.granted(), 2);
        let events = Controller::drain_events(&mut ctrl);
        assert_eq!(events.iter().filter(|e| e.is_answer()).count(), 2);
    }

    #[test]
    fn metrics_snapshot_reports_memory_for_the_distributed_family() {
        let mut ctrl = DistributedController::new(
            SimConfig::new(5),
            DynamicTree::with_initial_path(40),
            16,
            8,
            128,
        )
        .unwrap();
        let deep = ctrl.tree().nodes().last().unwrap();
        Controller::submit(&mut ctrl, deep, RequestKind::NonTopological).unwrap();
        ctrl.run().unwrap();
        assert!(ctrl.peak_node_memory_bits() > 0);
    }
}

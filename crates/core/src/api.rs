//! The shared [`Controller`] runtime abstraction.
//!
//! The workspace grows several controller families — the paper's centralized
//! and distributed (M, W)-Controllers plus the comparison baselines — and they
//! all answer the same kind of question: *may this event take place?* This
//! module is the architectural seam between those implementations and every
//! driver that wants to exercise one of them (the scenario runner in
//! `dcn-workload`, the experiment binaries in `dcn-bench`, the examples and
//! the end-to-end tests): a driver programs against `dyn Controller` and never
//! needs to know which family it is driving.
//!
//! The lifecycle is submit-then-drain: [`Controller::submit`] hands a request
//! to the controller (synchronous families answer it on the spot, the
//! distributed family only enqueues an agent), and
//! [`Controller::run_to_quiescence`] drives the execution until every
//! submitted request has been answered and every granted topological change
//! has been applied. Cost counters are exposed uniformly through
//! [`ControllerMetrics`].

use crate::request::RequestKind;
use crate::ControllerError;
use dcn_tree::DynamicTree;
use dcn_tree::NodeId;

/// A uniform snapshot of a controller's cost counters.
///
/// Each family reports in its own cost model — the centralized controllers
/// count permit *moves* (§3), the distributed controller counts *messages*
/// (§4) — so both columns are present and a family fills in what it measures.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ControllerMetrics {
    /// Permit/package movement cost (the centralized move complexity; agent
    /// hops for the distributed controller).
    pub moves: u64,
    /// Total messages sent (agent hops plus auxiliary waves for the
    /// distributed family; request travel plus permit travel for baselines;
    /// equal to `moves` for the purely centralized families, whose model does
    /// not charge request travel).
    pub messages: u64,
    /// The largest per-node state footprint, in bits, under the compressed
    /// representation of Claim 4.8, as sampled at quiescence (plus round
    /// boundaries for the iterated family). This is a lower bound on the
    /// true mid-run peak — per-submission sampling would be quadratic — and
    /// 0 when the family does not track memory at all.
    pub peak_node_memory_bits: u64,
}

/// The shared behaviour of every (M, W)-controller in the workspace.
///
/// Implemented by [`CentralizedController`](crate::centralized::CentralizedController),
/// [`IteratedController`](crate::centralized::IteratedController),
/// [`DistributedController`](crate::distributed::DistributedController) and by
/// the `TrivialController` / `AapsController` baselines in `dcn-baseline`.
///
/// Drivers must call [`Controller::run_to_quiescence`] after a batch of
/// submissions before reading answers: synchronous families answer inside
/// `submit` and treat the call as a no-op, while the distributed family
/// executes all in-flight agents there.
pub trait Controller {
    /// A short human-readable family name (used in experiment rows).
    fn name(&self) -> &'static str;

    /// The permit budget `M`.
    fn budget(&self) -> u64;

    /// The waste bound `W`.
    fn waste_bound(&self) -> u64;

    /// Returns `true` if this controller's dynamic model covers `kind`.
    ///
    /// The AAPS baseline only supports the grow-only model; drivers check
    /// this before submitting so that unsupported operations are counted as
    /// *refusals* instead of surfacing as errors.
    fn supports(&self, kind: RequestKind) -> bool {
        let _ = kind;
        true
    }

    /// Submits a request arriving at `at`.
    ///
    /// # Errors
    ///
    /// Returns validation errors (unknown node, malformed topological
    /// request); the answer itself is *not* part of the return value — it is
    /// reflected in [`Controller::granted`] / [`Controller::rejected`] once
    /// the execution is quiescent.
    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError>;

    /// Runs until every submitted request is answered and every granted
    /// topological change has been applied. A no-op for synchronous families.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (event budget exceeded, protocol
    /// violations).
    fn run_to_quiescence(&mut self) -> Result<(), ControllerError>;

    /// Number of permits granted so far.
    fn granted(&self) -> u64;

    /// Number of requests rejected so far.
    fn rejected(&self) -> u64;

    /// The spanning tree as currently maintained by the controller.
    fn tree(&self) -> &DynamicTree;

    /// A snapshot of the cost counters.
    fn metrics(&self) -> ControllerMetrics;
}

impl Controller for crate::centralized::CentralizedController {
    fn name(&self) -> &'static str {
        "centralized"
    }

    fn budget(&self) -> u64 {
        self.params().m
    }

    fn waste_bound(&self) -> u64 {
        self.params().w
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
        self.submit(at, kind).map(|_| ())
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves(),
            messages: self.moves(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

impl Controller for crate::centralized::IteratedController {
    fn name(&self) -> &'static str {
        "iterated"
    }

    fn budget(&self) -> u64 {
        self.budget()
    }

    fn waste_bound(&self) -> u64 {
        self.waste()
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
        self.submit(at, kind).map(|_| ())
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        Ok(())
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.moves(),
            messages: self.moves(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

impl Controller for crate::distributed::DistributedController {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn budget(&self) -> u64 {
        self.budget()
    }

    fn waste_bound(&self) -> u64 {
        self.waste()
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
        self.submit(at, kind).map(|_| ())
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.run()
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        ControllerMetrics {
            moves: self.metrics().agent_hops,
            messages: self.messages(),
            peak_node_memory_bits: self.peak_node_memory_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{CentralizedController, IteratedController};
    use crate::distributed::DistributedController;
    use dcn_simnet::SimConfig;

    fn drive(ctrl: &mut dyn Controller, requests: usize) {
        for i in 0..requests {
            let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
            let at = nodes[(i * 7) % nodes.len()];
            ctrl.submit(at, RequestKind::NonTopological).unwrap();
        }
        ctrl.run_to_quiescence().unwrap();
    }

    #[test]
    fn all_core_families_drive_uniformly_through_dyn_controller() {
        let mut controllers: Vec<Box<dyn Controller>> = vec![
            Box::new(
                CentralizedController::new(DynamicTree::with_initial_star(15), 8, 4, 64).unwrap(),
            ),
            Box::new(
                IteratedController::new(DynamicTree::with_initial_star(15), 8, 0, 64).unwrap(),
            ),
            Box::new(
                DistributedController::new(
                    SimConfig::new(3),
                    DynamicTree::with_initial_star(15),
                    8,
                    4,
                    64,
                )
                .unwrap(),
            ),
        ];
        for ctrl in &mut controllers {
            drive(ctrl.as_mut(), 20);
            assert!(ctrl.granted() <= ctrl.budget(), "{}", ctrl.name());
            assert!(ctrl.granted() + ctrl.rejected() == 20, "{}", ctrl.name());
            assert!(ctrl.granted() >= ctrl.budget() - ctrl.waste_bound());
            assert!(ctrl.metrics().messages > 0 || ctrl.metrics().moves > 0);
            assert!(ctrl.supports(RequestKind::RemoveSelf));
        }
    }

    #[test]
    fn metrics_snapshot_reports_memory_for_the_distributed_family() {
        let mut ctrl = DistributedController::new(
            SimConfig::new(5),
            DynamicTree::with_initial_path(40),
            16,
            8,
            128,
        )
        .unwrap();
        let deep = ctrl.tree().nodes().last().unwrap();
        Controller::submit(&mut ctrl, deep, RequestKind::NonTopological).unwrap();
        ctrl.run().unwrap();
        assert!(ctrl.peak_node_memory_bits() > 0);
    }
}

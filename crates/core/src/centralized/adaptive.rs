//! The adaptive (unknown-`U`) controllers of Theorem 3.5.
//!
//! When no fixed bound on the number of nodes ever to exist is known, the
//! controller runs in *epochs*. Epoch `i` assumes `U_i = 2·N_i` (twice the
//! number of nodes at the start of the epoch) and runs a terminating
//! `(M_i, W)`-controller, where `M_i = M − (permits granted in earlier
//! epochs)`. The epoch ends — and the data structure is re-initialised with a
//! fresh estimate — according to a [`RefreshPolicy`]:
//!
//! * [`RefreshPolicy::ChangesQuarterU`] (Theorem 3.5, first part): after
//!   `U_i / 4` topological changes, giving move complexity
//!   `O(n₀ log² n₀ · log(M/(W+1)) + Σ_j log² n_j · log(M/(W+1)))`;
//! * [`RefreshPolicy::SizeDoubling`] (second part): when the number of nodes
//!   doubles relative to the maximum seen before the epoch, giving
//!   `O(N log² N · log(M/(W+1)))` where `N` is the maximum number of nodes
//!   ever alive simultaneously.

use super::iterated::IteratedController;
use crate::centralized::base::Attempt;
use crate::request::{Outcome, RequestKind};
use crate::ControllerError;
use dcn_tree::{DynamicTree, NodeId};

/// When an epoch of the adaptive controller ends and the bound `U` is
/// re-estimated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefreshPolicy {
    /// End the epoch after `U_i / 4` topological changes (Theorem 3.5, part 1).
    ChangesQuarterU,
    /// End the epoch when the node count reaches twice the maximum number of
    /// nodes alive before the epoch started (Theorem 3.5, part 2).
    SizeDoubling,
}

/// The adaptive centralized (M, W)-Controller for the case where no bound on
/// the number of nodes is known in advance (Theorem 3.5).
///
/// ```
/// use dcn_controller::centralized::{AdaptiveController, RefreshPolicy};
/// use dcn_controller::RequestKind;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(3);
/// let mut ctrl = AdaptiveController::new(tree, 100, 10, RefreshPolicy::ChangesQuarterU)?;
/// // Grow the network well past the initial size: the controller re-estimates
/// // U at every epoch boundary, so no a-priori bound is needed.
/// for _ in 0..50 {
///     let leaf = ctrl.tree().nodes().last().unwrap();
///     ctrl.submit(leaf, RequestKind::AddLeaf)?;
/// }
/// assert!(ctrl.epochs() > 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AdaptiveController {
    inner: Option<IteratedController>,
    policy: RefreshPolicy,
    m_total: u64,
    w: u64,
    /// Permits granted in completed epochs.
    granted_previous_epochs: u64,
    /// Moves accumulated in completed epochs (incl. reset waves).
    moves_previous_epochs: u64,
    rejected: u64,
    epochs: u32,
    /// Epoch-local bookkeeping.
    epoch_u: u64,
    epoch_changes: u64,
    epoch_size_threshold: usize,
    exhausted: bool,
}

impl AdaptiveController {
    /// Creates an adaptive (m, w)-controller over `tree`. No bound on the
    /// number of nodes is required; `w = 0` is allowed.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::WasteExceedsBudget`] if `w > m`.
    pub fn new(
        tree: DynamicTree,
        m: u64,
        w: u64,
        policy: RefreshPolicy,
    ) -> Result<Self, ControllerError> {
        if w > m {
            return Err(ControllerError::WasteExceedsBudget { m, w });
        }
        let n0 = tree.node_count();
        let epoch_u = 2 * n0 as u64;
        let inner = IteratedController::new(tree, m, w, epoch_u as usize)?;
        Ok(AdaptiveController {
            inner: Some(inner),
            policy,
            m_total: m,
            w,
            granted_previous_epochs: 0,
            moves_previous_epochs: 0,
            rejected: 0,
            epochs: 1,
            epoch_u,
            epoch_changes: 0,
            epoch_size_threshold: 2 * n0,
            exhausted: false,
        })
    }

    fn inner(&self) -> &IteratedController {
        self.inner
            .as_ref()
            // lint: allow(unwrap) the Option is None only inside refresh(),
            // which restores it before returning
            .expect("inner controller always present")
    }

    fn inner_mut(&mut self) -> &mut IteratedController {
        self.inner
            .as_mut()
            // lint: allow(unwrap) the Option is None only inside refresh(),
            // which restores it before returning
            .expect("inner controller always present")
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        self.inner().tree()
    }

    /// Total number of permits granted so far.
    pub fn granted(&self) -> u64 {
        self.granted_previous_epochs + self.inner().granted()
    }

    /// Total number of rejects issued so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total move complexity so far (all epochs, including reset waves).
    pub fn moves(&self) -> u64 {
        self.moves_previous_epochs + self.inner().moves()
    }

    /// Number of epochs started so far.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Returns `true` once the controller has started rejecting requests.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// The permit budget `M` of the controller.
    pub fn budget(&self) -> u64 {
        self.m_total
    }

    /// The waste bound `W` of the controller.
    pub fn waste(&self) -> u64 {
        self.w
    }

    /// Submits a request at node `at`.
    ///
    /// # Errors
    ///
    /// Same as [`IteratedController::try_submit`].
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<Outcome, ControllerError> {
        if self.exhausted {
            self.rejected += 1;
            return Ok(Outcome::Rejected);
        }
        match self.inner_mut().try_submit(at, kind)? {
            Attempt::Granted { serial, new_node } => {
                if kind.is_topological() {
                    self.epoch_changes += 1;
                }
                self.maybe_refresh()?;
                Ok(Outcome::Granted { serial, new_node })
            }
            Attempt::Exhausted | Attempt::LocallyRejected => {
                // The whole budget is spent up to the waste bound; from now on
                // the adaptive controller rejects.
                self.exhausted = true;
                self.rejected += 1;
                Ok(Outcome::Rejected)
            }
        }
    }

    /// Ends the current epoch if the refresh policy says so, carrying the
    /// unspent budget into a fresh inner controller sized for the current
    /// network.
    fn maybe_refresh(&mut self) -> Result<(), ControllerError> {
        let due = match self.policy {
            RefreshPolicy::ChangesQuarterU => self.epoch_changes >= (self.epoch_u / 4).max(1),
            RefreshPolicy::SizeDoubling => {
                self.inner().tree().node_count() >= self.epoch_size_threshold
            }
        };
        if !due {
            return Ok(());
        }
        // lint: allow(unwrap) take() is the only place the Option empties,
        // and a fresh controller is installed below before any early return
        let inner = self.inner.take().expect("inner controller present");
        let granted_this_epoch = inner.granted();
        let moves_this_epoch = inner.moves();
        let m_next = self.m_total - self.granted_previous_epochs - granted_this_epoch;
        self.granted_previous_epochs += granted_this_epoch;
        self.moves_previous_epochs += moves_this_epoch;
        let tree = inner.into_tree();
        let n_next = tree.node_count();
        // Re-initialising the data structure costs a wave over the tree.
        self.moves_previous_epochs += n_next as u64;
        self.epoch_u = (2 * n_next as u64).max(2);
        self.epoch_changes = 0;
        self.epoch_size_threshold = (2 * n_next).max(2);
        self.epochs += 1;
        if m_next == 0 {
            // Nothing left to hand out: the next request will be rejected.
            self.exhausted = true;
        }
        let w_next = self.w.min(m_next);
        let inner = IteratedController::new(tree, m_next, w_next, self.epoch_u as usize)?;
        self.inner = Some(inner);
        Ok(())
    }
}

//! The fixed-bound centralized (M, W)-Controller (§3.1).

use crate::domain::DomainAuditor;
use crate::ledger::RequestLedger;
use crate::package::{MobilePackage, PackageStore, PermitInterval};
use crate::params::Params;
use crate::request::{Outcome, RequestKind};
use crate::ControllerError;
use dcn_tree::{DynamicTree, NodeId};
use std::collections::HashMap;

/// Result of attempting to serve one request without issuing rejects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Attempt {
    /// The request was granted a permit.
    Granted {
        /// Serial number of the consumed permit (interval mode only).
        serial: Option<u64>,
        /// Newly created node for topological insertions.
        new_node: Option<NodeId>,
    },
    /// The controller cannot serve the request: the root's storage holds too
    /// few permits to create the package the request needs. A plain
    /// controller would now reject; the iterated / terminating wrappers
    /// recycle instead.
    Exhausted,
    /// The node already holds a reject package (a reject wave has been
    /// broadcast), so the request is rejected locally without any moves.
    LocallyRejected,
}

/// The centralized (M, W)-Controller for a known bound `U` on the number of
/// nodes ever to exist (§3.1).
///
/// The controller owns the spanning tree: granted topological requests are
/// applied to it immediately (the centralized setting is sequential), which is
/// exactly the paper's controlled dynamic model.
///
/// ```
/// use dcn_controller::centralized::CentralizedController;
/// use dcn_controller::RequestKind;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_path(10);
/// let mut ctrl = CentralizedController::new(tree, 20, 4, 64)?;
/// let deep = ctrl.tree().nodes().last().unwrap();
/// let outcome = ctrl.submit(deep, RequestKind::AddLeaf)?;
/// assert!(outcome.is_granted());
/// assert!(ctrl.moves() > 0); // permits travelled from the root
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CentralizedController {
    params: Params,
    tree: DynamicTree,
    stores: HashMap<NodeId, PackageStore>,
    storage: u64,
    storage_interval: Option<PermitInterval>,
    granted: u64,
    rejected: u64,
    moves: u64,
    next_package_id: u64,
    reject_wave_done: bool,
    auditor: Option<DomainAuditor>,
    /// Ticket/event/record bookkeeping for submissions through the
    /// [`Controller`](crate::Controller) trait (the raw [`CentralizedController::submit`]
    /// below stays ticket-free for the wrappers that drive it directly).
    ledger: RequestLedger,
}

impl CentralizedController {
    /// Creates a controller over `tree` with permit budget `m`, waste bound
    /// `w ≥ 1` and an upper bound `u_bound` on the number of nodes ever to
    /// exist (current nodes plus all future insertions).
    ///
    /// # Errors
    ///
    /// * [`ControllerError::ZeroWasteUnsupported`] for `w = 0` (use
    ///   [`IteratedController`](crate::centralized::IteratedController));
    /// * [`ControllerError::WasteExceedsBudget`] for `w > m`;
    /// * [`ControllerError::BoundTooSmall`] if `u_bound` is smaller than the
    ///   current number of nodes.
    pub fn new(tree: DynamicTree, m: u64, w: u64, u_bound: usize) -> Result<Self, ControllerError> {
        if u_bound < tree.node_count() {
            return Err(ControllerError::BoundTooSmall {
                u: u_bound,
                nodes: tree.node_count(),
            });
        }
        let params = Params::new(m, w, u_bound as u64)?;
        Ok(CentralizedController {
            params,
            tree,
            stores: HashMap::new(),
            storage: m,
            storage_interval: None,
            granted: 0,
            rejected: 0,
            moves: 0,
            next_package_id: 0,
            reject_wave_done: false,
            auditor: None,
            ledger: RequestLedger::new(),
        })
    }

    pub(crate) fn ledger(&self) -> &RequestLedger {
        &self.ledger
    }

    pub(crate) fn ledger_mut(&mut self) -> &mut RequestLedger {
        &mut self.ledger
    }

    /// Enables the domain auditor (§3.2 invariants); intended for tests and
    /// debugging, it does not change the controller's behaviour.
    pub fn with_auditor(mut self) -> Self {
        self.auditor = Some(DomainAuditor::new());
        self
    }

    /// Puts the controller in *interval mode*: the root's permits become the
    /// serial numbers `[interval.lo, interval.hi]` (the interval length must
    /// equal the remaining budget) and every grant reports the serial it
    /// consumed. Used by the name-assignment protocol (§5.2).
    pub fn set_storage_interval(&mut self, interval: PermitInterval) {
        assert_eq!(
            interval.len(),
            self.storage,
            "interval length must equal the number of permits in storage"
        );
        self.storage_interval = Some(interval);
    }

    /// The controller parameters (including the derived `φ` and `ψ`).
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    /// Consumes the controller and returns the tree (used by the adaptive
    /// wrapper at iteration boundaries).
    pub fn into_tree(self) -> DynamicTree {
        self.tree
    }

    /// Number of permits granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Number of requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Move complexity accumulated so far (the paper's cost measure for the
    /// centralized setting).
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of permits that are not yet granted: the root's storage plus
    /// everything currently sitting in packages.
    pub fn uncommitted_permits(&self) -> u64 {
        self.storage
            + self
                .stores
                .values()
                .map(|s| s.total_permits(&self.params))
                .sum::<u64>()
    }

    /// Number of permits sitting in packages (excluding the root's storage):
    /// the quantity the liveness analysis bounds by `W`.
    pub fn permits_in_packages(&self) -> u64 {
        self.stores
            .values()
            .map(|s| s.total_permits(&self.params))
            .sum()
    }

    /// The largest per-node package-store footprint, in bits, under the
    /// compressed representation of Claim 4.8 (the root's storage counter is
    /// included as `O(log M)` bits).
    pub fn peak_node_memory_bits(&self) -> u64 {
        let storage_bits = 64 - self.storage.max(1).leading_zeros() as u64;
        self.stores
            .values()
            .map(|s| s.memory_bits(&self.params))
            .max()
            .unwrap_or(0)
            .max(storage_bits)
    }

    /// The domain auditor, when enabled with [`CentralizedController::with_auditor`].
    pub fn auditor(&self) -> Option<&DomainAuditor> {
        self.auditor.as_ref()
    }

    /// Checks the domain invariants of §3.2 (requires the auditor).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant, or an error if the
    /// auditor is not enabled.
    pub fn check_domain_invariants(&self) -> Result<(), String> {
        let Some(aud) = &self.auditor else {
            return Err("domain auditor not enabled".to_string());
        };
        let host_of = |pkg: u64| -> Option<NodeId> {
            self.stores
                .iter()
                .find(|(_, s)| s.mobiles().iter().any(|p| p.id == pkg))
                .map(|(n, _)| *n)
        };
        aud.check_invariants(&self.tree, &self.params, host_of)
    }

    /// Restarts the controller with a fresh budget `m` and waste bound `w`,
    /// clearing every package (iteration boundary of Observation 3.4 /
    /// Theorem 3.5). The tree, the grant counters and the move counter are
    /// kept. Returns the number of moves charged for the reset (one per node,
    /// accounting for the clearing wave).
    ///
    /// # Errors
    ///
    /// Same parameter validation as [`CentralizedController::new`].
    pub fn restart(&mut self, m: u64, w: u64) -> Result<u64, ControllerError> {
        self.params = Params::new(m, w, self.params.u)?;
        for store in self.stores.values_mut() {
            store.clear(&self.params);
        }
        if let Some(aud) = &mut self.auditor {
            aud.clear();
        }
        self.storage = m;
        self.storage_interval = None;
        self.reject_wave_done = false;
        let cost = self.tree.node_count() as u64;
        self.moves += cost;
        Ok(cost)
    }

    /// Submits a request at node `at`. Rejected requests trigger the
    /// reject-wave (a reject package is delivered to every node, counted in
    /// the move complexity), after which every subsequent request is rejected
    /// locally.
    ///
    /// # Errors
    ///
    /// See [`CentralizedController::try_submit`].
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<Outcome, ControllerError> {
        match self.try_submit(at, kind)? {
            Attempt::Granted { serial, new_node } => Ok(Outcome::Granted { serial, new_node }),
            Attempt::Exhausted => {
                self.broadcast_reject_wave();
                self.rejected += 1;
                Ok(Outcome::Rejected)
            }
            Attempt::LocallyRejected => Ok(Outcome::Rejected),
        }
    }

    /// Attempts to serve a request without ever issuing a reject; returns
    /// [`Attempt::Exhausted`] when the root's storage cannot supply the
    /// package the request needs (the hook used by the iterated, terminating
    /// and adaptive wrappers).
    ///
    /// # Errors
    ///
    /// * [`ControllerError::UnknownNode`] if `at` does not exist;
    /// * [`ControllerError::NotParentOf`] for a malformed
    ///   [`RequestKind::AddInternalAbove`];
    /// * [`ControllerError::CannotRemoveRoot`] for a
    ///   [`RequestKind::RemoveSelf`] at the root.
    pub fn try_submit(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<Attempt, ControllerError> {
        self.validate(at, kind)?;
        // Item 1: a reject package at the node answers the request at once.
        if self.stores.get(&at).is_some_and(PackageStore::has_reject) {
            self.rejected += 1;
            return Ok(Attempt::LocallyRejected);
        }
        // Item 2: a static package at the node grants immediately.
        if let Some(serial) = self.store_mut(at).grant_static() {
            let new_node = self.apply_granted_event(at, kind)?;
            self.granted += 1;
            return Ok(Attempt::Granted { serial, new_node });
        }
        // Item 3: look for the closest filler node on the way to the root.
        let found = self.find_filler(at);
        let (package, host, host_dist) = match found {
            Some((host, host_dist, level)) => {
                let pkg = self
                    .store_mut(host)
                    .take_mobile(level)
                    // lint: allow(unwrap) find_filler() returned this (host,
                    // level) from the live store an instant ago
                    .expect("filler level was just observed");
                if let Some(aud) = &mut self.auditor {
                    aud.package_consumed(pkg.id);
                }
                (pkg, host, host_dist)
            }
            None => {
                // Item 3b: no filler up to the root; create a package there if
                // the storage suffices.
                let root = self.tree.root();
                let dist = self.tree.depth(at) as u64;
                let level = self.params.root_level_for_distance(dist);
                let size = self.params.mobile_size(level);
                if self.storage < size {
                    return Ok(Attempt::Exhausted);
                }
                self.storage -= size;
                let interval = self.carve_interval(size);
                let pkg = MobilePackage {
                    id: self.fresh_package_id(),
                    level,
                    interval,
                };
                (pkg, root, dist)
            }
        };
        // Item 4: distribute the package contents along the path towards `at`.
        let serial = self.distribute(package, host, host_dist, at);
        let new_node = self.apply_granted_event(at, kind)?;
        self.granted += 1;
        Ok(Attempt::Granted { serial, new_node })
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn validate(&self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
        if !self.tree.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::AddInternalAbove(child) => {
                if self.tree.parent(child) != Some(at) {
                    return Err(ControllerError::NotParentOf { at, child });
                }
                Ok(())
            }
            RequestKind::RemoveSelf => {
                if at == self.tree.root() {
                    return Err(ControllerError::CannotRemoveRoot);
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn store_mut(&mut self, node: NodeId) -> &mut PackageStore {
        self.stores.entry(node).or_default()
    }

    fn fresh_package_id(&mut self) -> u64 {
        let id = self.next_package_id;
        self.next_package_id += 1;
        id
    }

    fn carve_interval(&mut self, size: u64) -> Option<PermitInterval> {
        let storage_iv = self.storage_interval?;
        let (taken, rest) = storage_iv.split_off(size);
        self.storage_interval = rest;
        Some(taken)
    }

    /// Finds the closest ancestor of `at` (possibly `at` itself) that is a
    /// filler node with respect to `at`; returns `(host, distance, level)`.
    fn find_filler(&self, at: NodeId) -> Option<(NodeId, u64, u32)> {
        for (dist, node) in self.tree.ancestors(at).enumerate() {
            if let Some(store) = self.stores.get(&node) {
                if let Some(level) = store.filler_level(dist as u64, &self.params) {
                    return Some((node, dist as u64, level));
                }
            }
        }
        None
    }

    /// The recursive distribution `Proc` (§3.1, item 4): carries `package`
    /// from `host` (an ancestor of `at` at distance `host_dist`) down towards
    /// `at`, depositing a package of level `k − 1` at the ancestor `u_{k−1}`
    /// (distance `3·2^{k−2}ψ` from `at`) for every level on the way, until a
    /// level-0 package reaches `at`, becomes static, and grants one permit.
    fn distribute(
        &mut self,
        package: MobilePackage,
        _host: NodeId,
        host_dist: u64,
        at: NodeId,
    ) -> Option<u64> {
        let mut current = package;
        let mut current_dist = host_dist;
        loop {
            if current.level == 0 {
                // Move to `at` and become static, then grant one permit.
                self.moves += current_dist;
                let size = self.params.mobile_size(0);
                self.store_mut(at).add_static(size, current.interval);
                let serial = self
                    .store_mut(at)
                    .grant_static()
                    // lint: allow(unwrap) add_static() above deposited a
                    // level-0 package, whose size is at least one permit
                    .expect("the freshly converted static package holds at least one permit");
                return serial;
            }
            let k = current.level;
            let target_dist = self.params.deposit_distance(k - 1);
            debug_assert!(target_dist < current_dist);
            let target = self
                .tree
                .ancestor_at_distance(at, target_dist as usize)
                // lint: allow(unwrap) target_dist < current_dist ≤ depth(at),
                // so the ancestor at that distance exists
                .expect("deposit point lies on the path between the request and the host");
            self.moves += current_dist - target_dist;
            let (stay, carry) = current.split(self.fresh_package_id(), self.fresh_package_id());
            if let Some(aud) = &mut self.auditor {
                let path = self
                    .tree
                    .path_between(at, target)
                    // lint: allow(unwrap) `target` was produced by
                    // ancestor_at_distance(at, ..) just above
                    .expect("target is an ancestor of the requesting node");
                aud.package_deposited(stay.id, stay.level, target, &path, &self.params);
            }
            self.store_mut(target).add_mobile(stay);
            current = carry;
            current_dist = target_dist;
        }
    }

    /// Applies the event a granted request asked for (the controlled dynamic
    /// model: the change happens only once the permit is delivered).
    fn apply_granted_event(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<Option<NodeId>, ControllerError> {
        match kind {
            RequestKind::NonTopological => Ok(None),
            RequestKind::AddLeaf => {
                let new = self.tree.add_leaf(at)?;
                Ok(Some(new))
            }
            RequestKind::AddInternalAbove(child) => {
                let new = self.tree.add_internal_above(child)?;
                if let Some(aud) = &mut self.auditor {
                    aud.on_add_internal(new, child, &self.tree);
                }
                Ok(Some(new))
            }
            RequestKind::RemoveSelf => {
                // Packages stored at the removed node move to its parent.
                let parent = self
                    .tree
                    .parent(at)
                    // lint: allow(unwrap) validate() refuses Remove at the
                    // root, so `at` has a parent
                    .expect("validate() rejected root removal");
                if let Some(removed_store) = self.stores.remove(&at) {
                    if !removed_store.is_empty() {
                        self.moves += 1;
                        if let Some(aud) = &mut self.auditor {
                            for pkg in removed_store.mobiles() {
                                aud.package_rehosted(pkg.id, parent);
                            }
                        }
                        self.store_mut(parent).merge(removed_store);
                    }
                }
                self.tree.remove(at)?;
                Ok(None)
            }
        }
    }

    /// Grants one permit directly from the root's storage to a request at
    /// `at`, moving it along the whole root-to-`at` path (the trivial
    /// `(1, 0)`-controller used for the very last permit when `W = 0`).
    pub(crate) fn grant_directly_from_root(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<Attempt, ControllerError> {
        self.validate(at, kind)?;
        if self.storage == 0 {
            return Ok(Attempt::Exhausted);
        }
        self.storage -= 1;
        let serial = self.carve_interval(1).map(|iv| iv.lo);
        self.moves += self.tree.depth(at) as u64;
        let new_node = self.apply_granted_event(at, kind)?;
        self.granted += 1;
        Ok(Attempt::Granted { serial, new_node })
    }

    /// Places a reject package at every node (simulated centrally, counted as
    /// one move per delivered package, i.e. `n − 1` moves).
    pub(crate) fn broadcast_reject_wave(&mut self) {
        if self.reject_wave_done {
            return;
        }
        self.reject_wave_done = true;
        let nodes: Vec<NodeId> = self.tree.nodes().collect();
        self.moves += nodes.len().saturating_sub(1) as u64;
        for node in nodes {
            self.store_mut(node).place_reject();
        }
    }
}

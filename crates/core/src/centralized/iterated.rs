//! The iterated controller of Observation 3.4.
//!
//! Running the base `(M, W)`-controller directly costs
//! `O(U · (M/W) · log² U)` moves. The iteration trick halves the "waste"
//! target every round: start with an `(M, M/2)`-controller; whenever the
//! current round would reject, count the `L` still-uncommitted permits, clear
//! the data structure and start an `(L, L/2)`-controller, until `L` is within
//! a constant factor of the real waste bound `W`, at which point one final
//! `(L, W)` round runs. This brings the cost down to
//! `O(U · log² U · log(M/(W+1)))` and also yields a controller for `W = 0`.

use super::base::{Attempt, CentralizedController};
use crate::ledger::RequestLedger;
use crate::request::{Outcome, RequestKind};
use crate::ControllerError;
use dcn_tree::{DynamicTree, NodeId};

/// Which stage of the iteration schedule the controller is in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Stage {
    /// Halving rounds: the inner controller runs with waste target `M_i / 2`.
    Halving,
    /// The final round with the real waste bound `W`.
    Final,
    /// `W = 0` only: exactly one permit remains and is granted directly from
    /// the root to the next request (the trivial `(1, 0)`-controller).
    LastPermit,
    /// All permits accounted for; every further request is rejected.
    Rejecting,
}

/// The iterated centralized `(M, W)`-controller (Observation 3.4). Unlike the
/// base controller it supports `W = 0`.
///
/// ```
/// use dcn_controller::centralized::IteratedController;
/// use dcn_controller::RequestKind;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(15);
/// // W = 0: exactly 5 permits must be granted before any reject.
/// let mut ctrl = IteratedController::new(tree, 5, 0, 64)?;
/// let node = ctrl.tree().root();
/// for _ in 0..5 {
///     assert!(ctrl.submit(node, RequestKind::NonTopological)?.is_granted());
/// }
/// assert!(!ctrl.submit(node, RequestKind::NonTopological)?.is_granted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct IteratedController {
    inner: CentralizedController,
    m: u64,
    w_target: u64,
    stage: Stage,
    iterations: u32,
    rejected: u64,
    reject_wave_charged: bool,
    /// Largest per-node footprint observed at round boundaries (the restart
    /// clears every store, so the end-of-run snapshot alone would miss
    /// earlier rounds' peaks).
    peak_memory_bits: u64,
    /// Ticket/event/record bookkeeping for submissions through the
    /// [`Controller`](crate::Controller) trait.
    ledger: RequestLedger,
}

impl IteratedController {
    /// Creates an iterated `(m, w)`-controller over `tree` with node bound
    /// `u_bound`. `w = 0` is allowed.
    ///
    /// # Errors
    ///
    /// Same as [`CentralizedController::new`] except that `w = 0` is accepted.
    pub fn new(tree: DynamicTree, m: u64, w: u64, u_bound: usize) -> Result<Self, ControllerError> {
        if w > m {
            return Err(ControllerError::WasteExceedsBudget { m, w });
        }
        // First halving round: an (M, max(M/2, 1))-controller. A zero budget
        // degenerates to a controller that rejects everything.
        let w0 = (m / 2).max(1);
        let inner = CentralizedController::new(tree, m.max(1), w0.min(m.max(1)), u_bound)?;
        Ok(IteratedController {
            inner,
            m,
            w_target: w,
            stage: if m == 0 {
                Stage::Rejecting
            } else {
                Stage::Halving
            },
            iterations: 1,
            rejected: 0,
            reject_wave_charged: false,
            peak_memory_bits: 0,
            ledger: RequestLedger::new(),
        })
    }

    pub(crate) fn ledger(&self) -> &RequestLedger {
        &self.ledger
    }

    pub(crate) fn ledger_mut(&mut self) -> &mut RequestLedger {
        &mut self.ledger
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        self.inner.tree()
    }

    /// Consumes the controller and returns the tree.
    pub fn into_tree(self) -> DynamicTree {
        self.inner.into_tree()
    }

    /// The permit budget `M` of the whole iterated schedule.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// The waste bound `W` the schedule converges to.
    pub fn waste(&self) -> u64 {
        self.w_target
    }

    /// The largest per-node package-store footprint in bits observed at any
    /// round boundary or at the current instant (see
    /// [`CentralizedController::peak_node_memory_bits`]).
    pub fn peak_node_memory_bits(&self) -> u64 {
        self.peak_memory_bits
            .max(self.inner.peak_node_memory_bits())
    }

    /// Total number of permits granted so far (across all rounds).
    pub fn granted(&self) -> u64 {
        self.inner.granted()
    }

    /// Total number of rejects issued so far.
    pub fn rejected(&self) -> u64 {
        self.rejected + self.inner.rejected()
    }

    /// Move complexity accumulated so far (across all rounds, including the
    /// per-round reset waves).
    pub fn moves(&self) -> u64 {
        self.inner.moves()
    }

    /// Number of iteration rounds started so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Returns `true` once the controller has started rejecting requests.
    pub fn is_exhausted(&self) -> bool {
        self.stage == Stage::Rejecting
    }

    /// Number of permits not yet granted.
    pub fn uncommitted_permits(&self) -> u64 {
        self.inner.uncommitted_permits()
    }

    /// Submits a request; see [`CentralizedController::submit`]. The iterated
    /// controller recycles uncommitted permits between rounds, so rejects only
    /// start once at most `W` permits can remain ungranted.
    ///
    /// # Errors
    ///
    /// Same as [`CentralizedController::try_submit`].
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<Outcome, ControllerError> {
        match self.try_submit(at, kind)? {
            Attempt::Granted { serial, new_node } => Ok(Outcome::Granted { serial, new_node }),
            Attempt::Exhausted => {
                self.rejected += 1;
                Ok(Outcome::Rejected)
            }
            Attempt::LocallyRejected => Ok(Outcome::Rejected),
        }
    }

    /// Attempts to serve a request without issuing a reject, recycling permits
    /// across rounds as needed. Returns [`Attempt::Exhausted`] only when the
    /// whole iterated schedule is out of permits (at which point at most `W`
    /// permits remain ungranted).
    ///
    /// # Errors
    ///
    /// Same as [`CentralizedController::try_submit`].
    pub fn try_submit(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<Attempt, ControllerError> {
        loop {
            match self.stage {
                Stage::Rejecting => {
                    self.charge_reject_wave();
                    return Ok(Attempt::Exhausted);
                }
                Stage::LastPermit => {
                    // The trivial (1, 0)-controller: the root hands the single
                    // remaining permit directly to the requesting node.
                    let attempt = self.inner.grant_directly_from_root(at, kind)?;
                    self.stage = Stage::Rejecting;
                    return Ok(attempt);
                }
                Stage::Halving | Stage::Final => {
                    match self.inner.try_submit(at, kind)? {
                        Attempt::Granted { serial, new_node } => {
                            return Ok(Attempt::Granted { serial, new_node });
                        }
                        Attempt::LocallyRejected => return Ok(Attempt::LocallyRejected),
                        Attempt::Exhausted => {
                            if self.stage == Stage::Final {
                                self.stage = Stage::Rejecting;
                                self.charge_reject_wave();
                                return Ok(Attempt::Exhausted);
                            }
                            self.advance_round()?;
                            // Retry the same request in the new round.
                        }
                    }
                }
            }
        }
    }

    /// Moves from the current halving round to the next stage, recycling the
    /// uncommitted permits.
    fn advance_round(&mut self) -> Result<(), ControllerError> {
        // The restart below clears every package store; sample the memory
        // footprint first so the reported peak covers earlier rounds.
        self.peak_memory_bits = self
            .peak_memory_bits
            .max(self.inner.peak_node_memory_bits());
        let remaining = self.inner.uncommitted_permits();
        if remaining == 0 {
            self.stage = Stage::Rejecting;
            return Ok(());
        }
        if self.w_target >= 1 && remaining <= 2 * self.w_target {
            // Final round: an (L, min(W, L))-controller.
            self.inner
                .restart(remaining, self.w_target.min(remaining))?;
            self.iterations += 1;
            self.stage = Stage::Final;
            return Ok(());
        }
        if remaining == 1 {
            // Only reachable when W = 0: the very last permit is handed out by
            // the trivial controller.
            self.stage = Stage::LastPermit;
            return Ok(());
        }
        // Next halving round: an (L, L/2)-controller.
        self.inner.restart(remaining, (remaining / 2).max(1))?;
        self.iterations += 1;
        Ok(())
    }

    fn charge_reject_wave(&mut self) {
        if self.reject_wave_charged {
            return;
        }
        self.reject_wave_charged = true;
        // Delivering a reject package to every node costs n - 1 moves;
        // subsequent requests are then answered locally by those packages.
        self.inner.broadcast_reject_wave();
    }
}

//! The centralized (sequential) controllers of §3.
//!
//! The centralized setting is the stepping stone towards the distributed
//! implementation: requests are handled one at a time, and the cost measure is
//! the **move complexity** — the total number of moves of sets of permits or
//! rejects between neighbouring nodes. This module contains:
//!
//! * [`CentralizedController`] — the fixed-bound base construction
//!   (`GrantOrReject` + `Proc`, §3.1), whose move complexity is
//!   `O(U · (M/W) · log² U)` (Lemma 3.3);
//! * [`IteratedController`] — the iteration trick of Observation 3.4 that
//!   improves the factor `M/W` to `log(M/(W+1))` and also handles `W = 0`;
//! * [`TerminatingController`] — the terminating variant of Observation 2.1;
//! * [`AdaptiveController`] — the unknown-`U` controllers of Theorem 3.5
//!   (both the change-counting and the size-doubling refresh policies).

mod adaptive;
mod base;
mod iterated;
mod terminating;

pub use adaptive::{AdaptiveController, RefreshPolicy};
pub use base::{Attempt, CentralizedController};
pub use iterated::IteratedController;
pub use terminating::{TerminatingController, TerminatingOutcome};

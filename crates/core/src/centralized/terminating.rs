//! The terminating controller of Observation 2.1.
//!
//! A *terminating* (M, W)-Controller never issues rejects. Instead, when the
//! underlying controller would reject, the protocol terminates: from that
//! moment on no permit is granted, and at termination time the number of
//! granted permits `m` satisfies `M − W ≤ m ≤ M` and every permitted event has
//! already taken place. In the distributed setting termination is detected by
//! a broadcast-and-upcast wave; in the centralized setting granted events take
//! effect immediately, so the wave is pure accounting (charged as `n` moves).

use super::base::Attempt;
use super::iterated::IteratedController;
use crate::request::RequestKind;
use crate::ControllerError;
use dcn_tree::{DynamicTree, NodeId};

/// The answer of a terminating controller to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TerminatingOutcome {
    /// The request received a permit.
    Granted {
        /// Serial number of the consumed permit (interval mode only).
        serial: Option<u64>,
        /// Newly created node for topological insertions.
        new_node: Option<NodeId>,
    },
    /// The controller has terminated; the request is not granted (and never
    /// will be).
    Terminated,
}

impl TerminatingOutcome {
    /// Returns `true` for granted outcomes.
    pub fn is_granted(&self) -> bool {
        matches!(self, TerminatingOutcome::Granted { .. })
    }
}

/// A terminating centralized (M, W)-Controller built on top of the iterated
/// controller (Observation 2.1 applied to Observation 3.4).
///
/// ```
/// use dcn_controller::centralized::{TerminatingController, TerminatingOutcome};
/// use dcn_controller::RequestKind;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(7);
/// let mut ctrl = TerminatingController::new(tree, 4, 2, 32)?;
/// let root = ctrl.tree().root();
/// let mut granted = 0;
/// for _ in 0..10 {
///     if ctrl.submit(root, RequestKind::NonTopological)?.is_granted() {
///         granted += 1;
///     }
/// }
/// assert!(ctrl.has_terminated());
/// assert!(granted >= 2 && granted <= 4); // M − W ≤ granted ≤ M
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TerminatingController {
    inner: IteratedController,
    m: u64,
    w: u64,
    terminated: bool,
    termination_moves: u64,
}

impl TerminatingController {
    /// Creates a terminating (m, w)-controller over `tree` with node bound
    /// `u_bound`. `w = 0` is allowed.
    ///
    /// # Errors
    ///
    /// Same as [`IteratedController::new`].
    pub fn new(tree: DynamicTree, m: u64, w: u64, u_bound: usize) -> Result<Self, ControllerError> {
        let inner = IteratedController::new(tree, m, w, u_bound)?;
        Ok(TerminatingController {
            inner,
            m,
            w,
            terminated: false,
            termination_moves: 0,
        })
    }

    /// The spanning tree as currently maintained by the controller.
    pub fn tree(&self) -> &DynamicTree {
        self.inner.tree()
    }

    /// Consumes the controller and returns the tree.
    pub fn into_tree(self) -> DynamicTree {
        self.inner.into_tree()
    }

    /// The permit budget `M` of this instance.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// The waste bound `W` of this instance.
    pub fn waste(&self) -> u64 {
        self.w
    }

    /// Number of permits granted so far.
    pub fn granted(&self) -> u64 {
        self.inner.granted()
    }

    /// Move complexity accumulated so far, including the termination wave.
    pub fn moves(&self) -> u64 {
        self.inner.moves() + self.termination_moves
    }

    /// Returns `true` once the controller has terminated.
    pub fn has_terminated(&self) -> bool {
        self.terminated
    }

    /// Number of permits not yet granted.
    pub fn uncommitted_permits(&self) -> u64 {
        self.inner.uncommitted_permits()
    }

    /// Submits a request. Once the controller has terminated every request
    /// receives [`TerminatingOutcome::Terminated`].
    ///
    /// # Errors
    ///
    /// Same as [`IteratedController::try_submit`].
    pub fn submit(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<TerminatingOutcome, ControllerError> {
        if self.terminated {
            return Ok(TerminatingOutcome::Terminated);
        }
        match self.inner.try_submit(at, kind)? {
            Attempt::Granted { serial, new_node } => {
                Ok(TerminatingOutcome::Granted { serial, new_node })
            }
            Attempt::Exhausted | Attempt::LocallyRejected => {
                self.terminate();
                Ok(TerminatingOutcome::Terminated)
            }
        }
    }

    /// Forces termination (used by wrappers that end an iteration early, e.g.
    /// the adaptive controller when enough topological changes have
    /// accumulated). Charges the broadcast-and-upcast wave.
    pub fn terminate(&mut self) {
        if self.terminated {
            return;
        }
        self.terminated = true;
        // Broadcast + upcast over the current tree: 2(n − 1) moves, charged as
        // 2n for simplicity (the asymptotics are unchanged).
        self.termination_moves += 2 * self.inner.tree().node_count() as u64;
    }
}

//! Agent state carried by the mobile agents of the distributed controller.

use crate::package::PermitInterval;
use crate::request::{RequestId, RequestKind};
use dcn_tree::NodeId;

/// The phase of a request-handling agent (the paper's agent program, §4.3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Just created at its origin; about to lock it and inspect it.
    Start,
    /// Climbing towards the root, locking every node, looking for a reject
    /// package, a filler node, or the root.
    Climb,
    /// Carrying (the remaining half of) a package of the given level down the
    /// locked path, depositing a package at every deposit point `u_k`.
    Distribute {
        /// Level of the package currently in the agent's bag.
        level: u32,
        /// Serial-number interval of the carried package (interval mode).
        interval: Option<PermitInterval>,
    },
    /// The request has been answered; climbing back to the topmost locked
    /// node before the final unlocking descent.
    ReturnUp,
    /// Final descent from the topmost node back to the origin, unlocking every
    /// node on the way.
    FinalDescent,
    /// A reject package was encountered (or the root's storage was empty):
    /// descending to the origin, placing reject packages and unlocking.
    RejectDescent,
}

/// State of a request-handling agent.
#[derive(Clone, Copy, Debug)]
pub struct RequestAgent {
    /// The identifier assigned to the request by the driver.
    pub id: RequestId,
    /// What the request asks permission for.
    pub kind: RequestKind,
    pub(crate) phase: Phase,
}

impl RequestAgent {
    /// Creates the agent for a freshly arrived request.
    pub fn new(id: RequestId, kind: RequestKind) -> Self {
        RequestAgent {
            id,
            kind,
            phase: Phase::Start,
        }
    }
}

/// The agents used by the distributed controller.
#[derive(Clone, Copy, Debug)]
pub enum CtrlAgent {
    /// An agent serving one request.
    Request(RequestAgent),
    /// A reject-wave agent: moves to `next_child` (if set), then places a
    /// reject package at its node and fans out to that node's children.
    RejectWave {
        /// The child the agent must move to before acting, if any.
        next_child: Option<NodeId>,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_request_agents_start_in_start_phase() {
        let a = RequestAgent::new(RequestId(3), RequestKind::AddLeaf);
        assert_eq!(a.phase, Phase::Start);
        assert_eq!(a.id, RequestId(3));
    }
}

//! Driver for the fixed-bound distributed controller: request submission,
//! execution and answer collection.

use super::agent::{CtrlAgent, RequestAgent};
use super::protocol::ControllerProtocol;
use crate::api::{ControllerEvent, Progress};
use crate::package::PermitInterval;
use crate::params::Params;
use crate::request::{Outcome, RequestId, RequestKind, RequestRecord};
use crate::verify::ExecutionSummary;
use crate::ControllerError;
use dcn_collections::SecondaryMap;
use dcn_simnet::{DynamicTree, Metrics, NodeId, SimConfig, Simulator};

/// The distributed (M, W)-Controller over a simulated asynchronous network,
/// for a known bound `U` on the number of nodes ever to exist (§4.3).
///
/// Requests are submitted with [`DistributedController::submit`] (each request
/// creates a mobile agent at its origin) and executed concurrently by
/// [`DistributedController::run`]; answers are available afterwards through
/// [`DistributedController::records`] / [`DistributedController::outcome`].
///
/// ```
/// use dcn_controller::distributed::DistributedController;
/// use dcn_controller::RequestKind;
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(15);
/// let mut ctrl = DistributedController::new(SimConfig::new(7), tree, 8, 4, 64)?;
/// let leaves: Vec<_> = ctrl.tree().nodes().skip(1).take(4).collect();
/// for leaf in leaves {
///     ctrl.submit(leaf, RequestKind::AddLeaf)?;
/// }
/// ctrl.run()?;
/// assert_eq!(ctrl.granted(), 4);
/// assert!(ctrl.messages() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DistributedController {
    sim: Simulator<ControllerProtocol>,
    next_request: u64,
    records: Vec<RequestRecord>,
    /// Ticket ids are issued densely from 0, so both per-ticket indexes are
    /// index-keyed (no hashing on the answer-collection path).
    index: SecondaryMap<RequestId, usize>,
    /// Virtual arrival time per in-flight ticket, consumed when the answer is
    /// collected (the protocol only knows the answer time).
    submit_times: SecondaryMap<RequestId, u64>,
    events: Vec<ControllerEvent>,
    submitted: u64,
    m: u64,
    w: u64,
}

impl DistributedController {
    /// Creates a distributed (m, w)-controller over `tree` with node bound
    /// `u_bound`, running on a network with the given simulator configuration.
    ///
    /// # Errors
    ///
    /// Same parameter validation as
    /// [`CentralizedController::new`](crate::centralized::CentralizedController::new).
    pub fn new(
        config: SimConfig,
        tree: DynamicTree,
        m: u64,
        w: u64,
        u_bound: usize,
    ) -> Result<Self, ControllerError> {
        Self::with_interval(config, tree, m, w, u_bound, None)
    }

    /// Like [`DistributedController::new`], but the root's permits carry the
    /// serial numbers of `interval` (whose length must be `m`); every grant
    /// then reports which serial it consumed. Used by the name-assignment
    /// protocol.
    ///
    /// # Errors
    ///
    /// Same as [`DistributedController::new`].
    pub fn with_interval(
        config: SimConfig,
        tree: DynamicTree,
        m: u64,
        w: u64,
        u_bound: usize,
        interval: Option<PermitInterval>,
    ) -> Result<Self, ControllerError> {
        if u_bound < tree.node_count() {
            return Err(ControllerError::BoundTooSmall {
                u: u_bound,
                nodes: tree.node_count(),
            });
        }
        if let Some(iv) = interval {
            assert_eq!(iv.len(), m, "interval length must equal the budget M");
        }
        let params = Params::new(m, w, u_bound as u64)?;
        let protocol = ControllerProtocol::new(params, interval);
        let sim = Simulator::with_tree(config, protocol, tree);
        Ok(DistributedController {
            sim,
            next_request: 0,
            records: Vec::new(),
            index: SecondaryMap::new(),
            submit_times: SecondaryMap::new(),
            events: Vec::new(),
            submitted: 0,
            m,
            w,
        })
    }

    /// The controller parameters.
    pub fn params(&self) -> &Params {
        self.sim.protocol().params()
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.sim.tree()
    }

    /// Consumes the controller and returns the tree in its final state.
    pub fn into_tree(self) -> DynamicTree {
        self.sim.into_tree()
    }

    /// Simulator cost counters (messages are
    /// [`Metrics::total_messages`]).
    pub fn metrics(&self) -> &Metrics {
        self.sim.metrics()
    }

    /// Total number of messages sent so far (agent hops plus auxiliary
    /// service messages).
    pub fn messages(&self) -> u64 {
        self.sim.metrics().total_messages()
    }

    /// The permit budget `M`.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// The waste bound `W`.
    pub fn waste(&self) -> u64 {
        self.w
    }

    /// The largest per-node whiteboard footprint, in bits, under the
    /// compressed representation of Claim 4.8.
    pub fn peak_node_memory_bits(&self) -> u64 {
        let params = *self.params();
        self.sim
            .whiteboards()
            .map(|(_, wb)| wb.store.memory_bits(&params))
            .max()
            .unwrap_or(0)
    }

    /// Number of permits granted so far.
    pub fn granted(&self) -> u64 {
        self.sim.protocol().granted()
    }

    /// Number of requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.sim.protocol().rejected()
    }

    /// Number of requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Number of permits not yet granted (root storage plus packages).
    pub fn uncommitted_permits(&self) -> u64 {
        let params = *self.params();
        self.sim
            .whiteboards()
            .map(|(_, wb)| wb.storage + wb.store.total_permits(&params))
            .sum()
    }

    /// Access to one node's whiteboard (used by the estimator applications).
    pub fn whiteboard(&self, node: NodeId) -> Option<&super::protocol::CtrlWhiteboard> {
        self.sim.whiteboard(node)
    }

    /// The underlying simulator (read-only), for tests that inspect locks,
    /// ports or per-node state.
    pub fn sim(&self) -> &Simulator<ControllerProtocol> {
        &self.sim
    }

    /// Submits a request arriving at node `at`; the request is handled when
    /// [`DistributedController::run`] is called.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::UnknownNode`] if `at` does not exist;
    /// * [`ControllerError::NotParentOf`] / [`ControllerError::CannotRemoveRoot`]
    ///   for malformed topological requests.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.submit_after(at, kind, 0)
    }

    /// Like [`DistributedController::submit`], but the request arrives `delay`
    /// simulated time units in the future (used to spread workloads in time).
    ///
    /// # Errors
    ///
    /// Same as [`DistributedController::submit`].
    pub fn submit_after(
        &mut self,
        at: NodeId,
        kind: RequestKind,
        delay: u64,
    ) -> Result<RequestId, ControllerError> {
        let tree = self.sim.tree();
        if !tree.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::AddInternalAbove(child) if tree.parent(child) != Some(at) => {
                return Err(ControllerError::NotParentOf { at, child });
            }
            RequestKind::RemoveSelf if at == tree.root() => {
                return Err(ControllerError::CannotRemoveRoot);
            }
            _ => {}
        }
        let id = RequestId(self.next_request);
        self.next_request += 1;
        self.submitted += 1;
        self.submit_times.insert(id, self.sim.time() + delay);
        let agent = CtrlAgent::Request(RequestAgent::new(id, kind));
        self.sim.create_agent_delayed(at, agent, delay)?;
        Ok(id)
    }

    /// Runs the network until it is quiescent: every submitted request has
    /// been answered and every granted topological change has been applied.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (event budget exceeded, protocol
    /// violations).
    pub fn run(&mut self) -> Result<(), ControllerError> {
        self.sim.run_until_quiescent()?;
        self.collect_answers();
        Ok(())
    }

    /// Processes at most `budget` simulator events, collecting any answers
    /// produced along the way, and reports whether the network is quiescent —
    /// the incremental counterpart of [`DistributedController::run`] used by
    /// open-loop drivers that submit requests while agents are in flight.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (protocol violations). Unlike
    /// [`DistributedController::run`], the caller owns the budget, so the
    /// configured `max_events` safety net does not apply here.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        // run_events serves whole same-timestamp cohorts out of the
        // simulator's batch buffer, so the budget loop probes the event
        // queue once per cohort instead of once per event.
        let processed = self.sim.run_events(budget)?;
        self.collect_answers();
        Ok(Progress {
            processed,
            quiescent: self.sim.is_quiescent(),
        })
    }

    /// Moves the simulator's freshly produced answers into the record
    /// history, stamping submit times and emitting per-request events.
    fn collect_answers(&mut self) {
        for mut record in self.sim.drain_outputs() {
            record.submitted_at = self.submit_times.remove(record.id).unwrap_or(0);
            ControllerEvent::push_for_record(&record, &mut self.events);
            self.index.insert(record.id, self.records.len());
            self.records.push(record);
        }
    }

    /// Removes and returns the per-request events produced since the last
    /// drain, in answer order.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.events)
    }

    /// All answers collected so far, in the order they were produced.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Removes and returns the collected answers (used by iteration drivers).
    pub fn take_records(&mut self) -> Vec<RequestRecord> {
        self.index.clear();
        std::mem::take(&mut self.records)
    }

    /// The outcome of a specific request, if it has been answered.
    pub fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.index.get(id).map(|&i| self.records[i].outcome)
    }

    /// A correctness summary of the execution so far (see
    /// [`crate::verify::ExecutionSummary`]).
    pub fn summary(&self) -> ExecutionSummary {
        ExecutionSummary {
            m: self.m,
            w: self.w,
            granted: self.granted(),
            rejected: self.rejected(),
            unanswered: self.submitted - self.granted() - self.rejected(),
        }
    }
}

//! The adaptive distributed controller: epochs for unknown `U` (Appendix A)
//! and within-epoch permit recycling (the distributed counterpart of
//! Observations 2.1 / 3.4 and Theorem 4.9).
//!
//! The driver runs the fixed-bound distributed controller in *epochs*. Epoch
//! `i` assumes `U_i = 2·N_i` where `N_i` is the number of nodes at the start
//! of the epoch, and carries the unspent budget `M_i = M − granted`. An epoch
//! is refreshed after `U_i / 4` topological changes; inside an epoch, when the
//! controller exhausts its storage while many permits are still parked in
//! packages, the data structure is cleared and the permits recycled (the
//! halving trick), and the requests that were rejected by the reject wave are
//! resubmitted — this is exactly the queue-and-retry behaviour of the paper's
//! terminating controller.
//!
//! **Modelling note.** The paper detects epoch boundaries with a second
//! controller counting topological changes, and counts `N_{i+1}`, `Y_i` and
//! the unused permits with broadcast-and-upcast waves. This driver performs
//! that bookkeeping directly at the driver (root) level and charges the
//! corresponding wave cost — `O(n)` messages per epoch boundary — to the
//! message counter (`aux`), which keeps the measured totals asymptotically
//! faithful while avoiding a second interleaved protocol instance. DESIGN.md
//! records this substitution.

use super::driver::DistributedController;
use crate::api::ControllerEvent;
use crate::request::{Outcome, RequestId, RequestKind, RequestRecord};
use crate::verify::ExecutionSummary;
use crate::ControllerError;
use dcn_collections::SecondaryMap;
use dcn_simnet::{DynamicTree, NodeId, SimConfig};

/// Summary of one adaptive (multi-epoch) distributed execution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DistributedIterationReport {
    /// Number of epochs (fresh `U` estimates) started.
    pub epochs: u32,
    /// Number of within-epoch recycling rounds (halving trick).
    pub recycles: u32,
    /// Total messages (agent hops + auxiliary waves) over the whole execution.
    pub messages: u64,
    /// Permits granted.
    pub granted: u64,
    /// Requests rejected (only once the overall budget is spent).
    pub rejected: u64,
}

/// The adaptive distributed (M, W)-Controller: no a-priori bound on the number
/// of nodes is needed (Theorem 4.9).
#[derive(Debug)]
pub struct AdaptiveDistributedController {
    config: SimConfig,
    inner: Option<DistributedController>,
    m: u64,
    w: u64,
    granted_total: u64,
    rejected_total: u64,
    submitted_total: u64,
    messages_total: u64,
    epochs: u32,
    recycles: u32,
    epoch_u: u64,
    epoch_changes_at_start: usize,
    exhausted: bool,
    records: Vec<RequestRecord>,
    index: SecondaryMap<RequestId, usize>,
    events: Vec<ControllerEvent>,
    /// Outer tickets: the inner controller is rebuilt at every epoch boundary
    /// and restarts its ids at 0, so the driver issues its own stable ids and
    /// maps inner answers back to them round by round.
    next_ticket: u64,
    /// Virtual time accumulated over torn-down inner simulators; the global
    /// clock is `time_base + inner simulator time`.
    time_base: u64,
    next_seed: u64,
    /// Requests accepted through the [`crate::Controller`] trait, drained by
    /// the next `run_to_quiescence`.
    queued: Vec<PendingRequest>,
}

/// One not-yet-answered outer request: `(ticket, origin, kind, submitted_at)`.
type PendingRequest = (RequestId, NodeId, RequestKind, u64);

impl AdaptiveDistributedController {
    /// Creates an adaptive distributed (m, w)-controller over `tree`.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::WasteExceedsBudget`] if `w > m`.
    pub fn new(
        config: SimConfig,
        tree: DynamicTree,
        m: u64,
        w: u64,
    ) -> Result<Self, ControllerError> {
        if w > m {
            return Err(ControllerError::WasteExceedsBudget { m, w });
        }
        let n0 = tree.node_count();
        let epoch_u = (2 * n0 as u64).max(2);
        let epoch_changes_at_start = tree.change_log().tree_change_count();
        let inner = Self::build_inner(config, tree, m, w, epoch_u, config.seed)?;
        Ok(AdaptiveDistributedController {
            config,
            inner: Some(inner),
            m,
            w,
            granted_total: 0,
            rejected_total: 0,
            submitted_total: 0,
            messages_total: 0,
            epochs: 1,
            recycles: 0,
            epoch_u,
            epoch_changes_at_start,
            exhausted: false,
            records: Vec::new(),
            index: SecondaryMap::new(),
            events: Vec::new(),
            next_ticket: 0,
            time_base: 0,
            next_seed: config.seed.wrapping_add(1),
            queued: Vec::new(),
        })
    }

    fn build_inner(
        config: SimConfig,
        tree: DynamicTree,
        budget: u64,
        w: u64,
        epoch_u: u64,
        seed: u64,
    ) -> Result<DistributedController, ControllerError> {
        let mut cfg = config;
        cfg.seed = seed;
        let u_bound = (epoch_u as usize).max(tree.node_count());
        // The inner controller's waste target: at least half its budget (the
        // halving trick) but never below the real waste bound, and never above
        // the budget itself.
        let inner_w = (budget / 2).max(w).max(1).min(budget.max(1));
        DistributedController::new(cfg, tree, budget.max(1), inner_w, u_bound)
    }

    fn inner(&self) -> &DistributedController {
        // lint: allow(unwrap) None only transiently inside rebuild(), which
        // reinstalls a fresh controller before returning
        self.inner.as_ref().expect("inner controller present")
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.inner().tree()
    }

    /// The permit budget `M`.
    pub fn budget(&self) -> u64 {
        self.m
    }

    /// The waste bound `W`.
    pub fn waste(&self) -> u64 {
        self.w
    }

    /// Permits granted so far (all epochs).
    pub fn granted(&self) -> u64 {
        self.granted_total + self.inner().granted()
    }

    /// Requests rejected with a final answer so far.
    pub fn rejected(&self) -> u64 {
        self.rejected_total
    }

    /// Total messages so far (all epochs, including the modelled waves).
    pub fn messages(&self) -> u64 {
        self.messages_total + self.inner().messages()
    }

    /// Number of epochs started.
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Number of within-epoch recycling rounds performed.
    pub fn recycles(&self) -> u32 {
        self.recycles
    }

    /// Returns `true` once the whole budget has been spent (up to the waste
    /// bound) and the controller rejects every further request.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// All final answers produced so far.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The outcome of a specific ticket, if it has been answered.
    pub fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.index.get(id).map(|&i| self.records[i].outcome)
    }

    /// Removes and returns the per-request events produced since the last
    /// drain, in answer order.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.events)
    }

    /// The current global virtual time: the accumulated clock of torn-down
    /// epochs plus the running inner simulator's clock.
    fn now(&self) -> u64 {
        self.time_base + self.inner().sim().time()
    }

    /// Issues the next outer ticket.
    fn issue(&mut self) -> RequestId {
        let id = RequestId(self.next_ticket);
        self.next_ticket += 1;
        id
    }

    /// Finalises one answer: appends it to the history, indexes it by ticket
    /// and emits the matching events.
    fn finalize(&mut self, record: RequestRecord) -> RequestRecord {
        ControllerEvent::push_for_record(&record, &mut self.events);
        self.index.insert(record.id, self.records.len());
        self.records.push(record);
        record
    }

    /// A correctness summary over the whole execution.
    pub fn summary(&self) -> ExecutionSummary {
        ExecutionSummary {
            m: self.m,
            w: self.w,
            granted: self.granted(),
            rejected: self.rejected(),
            unanswered: self
                .submitted_total
                .saturating_sub(self.granted() + self.rejected()),
        }
    }

    /// Report of the execution so far.
    pub fn report(&self) -> DistributedIterationReport {
        DistributedIterationReport {
            epochs: self.epochs,
            recycles: self.recycles,
            messages: self.messages(),
            granted: self.granted(),
            rejected: self.rejected(),
        }
    }

    /// Submits a batch of requests (each a `(origin, kind)` pair, validated
    /// against the current tree), runs the network to quiescence — recycling
    /// permits and refreshing epochs as needed — and returns the final answer
    /// for every request in the batch.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors; requests whose origin
    /// disappears while they are being retried are answered with a reject.
    pub fn run_batch(
        &mut self,
        requests: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let now = self.now();
        let pending: Vec<PendingRequest> = requests
            .iter()
            .map(|&(origin, kind)| (self.issue(), origin, kind, now))
            .collect();
        self.run_pending(pending)
    }

    /// The multi-epoch execution engine behind [`run_batch`] and the trait's
    /// `run_to_quiescence`: answers every pending outer ticket, recycling
    /// permits and refreshing epochs as needed.
    ///
    /// [`run_batch`]: AdaptiveDistributedController::run_batch
    fn run_pending(
        &mut self,
        mut pending: Vec<PendingRequest>,
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let mut answered: Vec<RequestRecord> = Vec::new();
        self.submitted_total += pending.len() as u64;

        while !pending.is_empty() {
            if self.exhausted {
                for &(id, origin, kind, submitted_at) in &pending {
                    answered.push(self.synthetic_reject(id, origin, kind, submitted_at));
                }
                pending.clear();
                break;
            }
            let time_base = self.time_base;
            // lint: allow(unwrap) None only transiently inside rebuild()
            let inner = self.inner.as_mut().expect("inner controller present");
            // Inner ids restart at 0 per epoch; map them back to the stable
            // outer tickets round by round (inner ids are dense, so the
            // mapping is index-keyed).
            let mut ticket_of: SecondaryMap<RequestId, (RequestId, u64)> = SecondaryMap::new();
            let mut skipped: Vec<PendingRequest> = Vec::new();
            for &(id, origin, kind, submitted_at) in &pending {
                if !inner.tree().contains(origin) {
                    // The origin vanished while the request was waiting to be
                    // retried; answer it with a reject.
                    skipped.push((id, origin, kind, submitted_at));
                    continue;
                }
                let inner_id = inner.submit(origin, kind)?;
                ticket_of.insert(inner_id, (id, submitted_at));
            }
            inner.run()?;
            let round_records = inner.take_records();
            for (id, origin, kind, submitted_at) in skipped {
                answered.push(self.synthetic_reject(id, origin, kind, submitted_at));
            }

            let mut retry: Vec<PendingRequest> = Vec::new();
            let mut saw_reject = false;
            for mut rec in round_records {
                let (outer, submitted_at) = ticket_of
                    .remove(rec.id)
                    // lint: allow(unwrap) the map entry was inserted when this
                    // inner id was submitted, and each id is answered once
                    .expect("every inner answer maps to an outer ticket");
                rec.id = outer;
                rec.submitted_at = submitted_at;
                rec.answered_at += time_base;
                match rec.outcome {
                    Outcome::Granted { .. } => answered.push(self.finalize(rec)),
                    Outcome::Rejected | Outcome::Refused => {
                        saw_reject = true;
                        retry.push((outer, rec.origin, rec.kind, submitted_at));
                    }
                }
            }

            if saw_reject {
                let uncommitted = self.inner().uncommitted_permits();
                if uncommitted <= self.w {
                    // Truly exhausted: the rejects are final (liveness holds:
                    // granted = M − uncommitted ≥ M − W).
                    self.exhausted = true;
                    for (id, origin, kind, submitted_at) in retry.drain(..) {
                        answered.push(self.synthetic_reject(id, origin, kind, submitted_at));
                    }
                } else {
                    // Recycle the parked permits and retry the queued requests
                    // (the terminating-controller behaviour of Obs. 2.1).
                    self.recycles += 1;
                    self.rebuild(false)?;
                }
            }
            pending = retry;

            // Epoch refresh: after U_i / 4 topological changes, re-estimate U.
            let changes = self
                .inner()
                .tree()
                .change_log()
                .tree_change_count()
                .saturating_sub(self.epoch_changes_at_start);
            if changes as u64 >= (self.epoch_u / 4).max(1) && !self.exhausted {
                self.epochs += 1;
                self.rebuild(true)?;
            }
        }
        Ok(answered)
    }

    fn synthetic_reject(
        &mut self,
        id: RequestId,
        origin: NodeId,
        kind: RequestKind,
        submitted_at: u64,
    ) -> RequestRecord {
        self.rejected_total += 1;
        let answered_at = self.now();
        self.finalize(RequestRecord {
            id,
            origin,
            kind,
            outcome: Outcome::Rejected,
            submitted_at,
            answered_at,
        })
    }

    /// Tears down the current inner controller, accounts its cost plus the
    /// boundary waves, and builds a fresh one over the same tree. When
    /// `new_epoch` is true the bound `U` is re-estimated from the current
    /// network size.
    fn rebuild(&mut self, new_epoch: bool) -> Result<(), ControllerError> {
        // lint: allow(unwrap) take() here is the only drain of the Option and
        // a replacement is installed below before any early return
        let inner = self.inner.take().expect("inner controller present");
        self.granted_total += inner.granted();
        self.messages_total += inner.messages();
        // The fresh inner simulator restarts its clock at 0; fold the retired
        // clock into the base so global answer times stay monotone.
        self.time_base += inner.sim().time();
        let tree = inner.into_tree();
        let n = tree.node_count() as u64;
        // Counting / clearing waves at the boundary: broadcast + upcast to
        // count the granted permits and the current size, plus the wave that
        // clears the package data structure.
        self.messages_total += 4 * n;
        if new_epoch {
            self.epoch_u = (2 * n).max(2);
            self.epoch_changes_at_start = tree.change_log().tree_change_count();
        }
        let budget = self.m.saturating_sub(self.granted_total);
        if budget == 0 {
            self.exhausted = true;
        }
        let seed = self.next_seed;
        self.next_seed = self.next_seed.wrapping_add(1);
        let inner = Self::build_inner(self.config, tree, budget, self.w, self.epoch_u, seed)?;
        self.inner = Some(inner);
        Ok(())
    }
}

impl crate::Controller for AdaptiveDistributedController {
    fn name(&self) -> &'static str {
        "adaptive-distributed"
    }

    fn budget(&self) -> u64 {
        self.m
    }

    fn waste_bound(&self) -> u64 {
        self.w
    }

    fn submit(
        &mut self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<RequestId, crate::ControllerError> {
        // Validate against the current tree; execution happens at the next
        // run_to_quiescence (the adaptive driver works in batches so that it
        // can recycle permits and refresh epochs between rounds).
        let tree = self.tree();
        if !tree.contains(at) {
            return Err(crate::ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::AddInternalAbove(child) if tree.parent(child) != Some(at) => {
                return Err(crate::ControllerError::NotParentOf { at, child });
            }
            RequestKind::RemoveSelf if at == tree.root() => {
                return Err(crate::ControllerError::CannotRemoveRoot);
            }
            _ => {}
        }
        let id = self.issue();
        let now = self.now();
        self.queued.push((id, at, kind, now));
        Ok(id)
    }

    fn run_to_quiescence(&mut self) -> Result<(), crate::ControllerError> {
        let queued = std::mem::take(&mut self.queued);
        if !queued.is_empty() {
            self.run_pending(queued)?;
        }
        Ok(())
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> crate::ControllerMetrics {
        crate::ControllerMetrics {
            moves: self.inner().metrics().agent_hops,
            messages: self.messages(),
            peak_node_memory_bits: self.inner().peak_node_memory_bits(),
        }
    }
}

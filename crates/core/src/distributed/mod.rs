//! The distributed (mobile-agent) implementation of the controller (§4).
//!
//! The distributed controller runs on the asynchronous network simulator of
//! [`dcn_simnet`]: a request arriving at a node creates an agent that climbs
//! the spanning tree (locking every node on its way) until it finds a *filler
//! node* or the root, distributes the package it found along the locked path
//! exactly as the centralized `Proc` does, answers the request, and walks the
//! path again to release the locks. Concurrent requests are serialised by the
//! locks and FIFO queues, which is precisely the mechanism the paper uses to
//! reduce the distributed execution to a centralized one (Lemmas 4.2–4.5).

mod agent;
mod driver;
mod iterated;
mod protocol;

pub use agent::{CtrlAgent, RequestAgent};
pub use driver::DistributedController;
pub use iterated::{AdaptiveDistributedController, DistributedIterationReport};
pub use protocol::{ControllerProtocol, CtrlOutput, CtrlWhiteboard};

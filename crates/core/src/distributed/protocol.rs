//! The controller as a [`dcn_simnet::Protocol`]: whiteboards, outputs and the
//! agent program of §4.3.1.

use super::agent::{CtrlAgent, Phase, RequestAgent};
use crate::package::{MobilePackage, PackageStore, PermitInterval};
use crate::params::Params;
use crate::request::{Outcome, RequestKind, RequestRecord};
use dcn_simnet::{Action, NodeCtx, NodeId, Protocol, TopologyChange};

/// Per-node protocol state (the whiteboard of §4.3.1).
#[derive(Clone, Debug)]
pub struct CtrlWhiteboard {
    /// The protocol parameters `(M, W, U, φ, ψ)`, handed from parent to child
    /// when a node joins.
    pub params: Params,
    /// The packages stored at this node.
    pub store: PackageStore,
    /// Permits still in the root's storage (always 0 at non-root nodes).
    pub storage: u64,
    /// Serial-number interval of the root's storage (interval mode only).
    pub storage_interval: Option<PermitInterval>,
    /// Total number of permits that have passed down the tree through this
    /// node (inclusive), maintained for the subtree estimator of Lemma 5.3.
    pub permits_passed_down: u64,
}

impl CtrlWhiteboard {
    fn fresh(params: Params) -> Self {
        CtrlWhiteboard {
            params,
            store: PackageStore::new(),
            storage: 0,
            storage_interval: None,
            permits_passed_down: 0,
        }
    }
}

/// Output records reported by the protocol to the driving harness.
pub type CtrlOutput = RequestRecord;

/// The distributed (M, W)-Controller protocol (one instance drives one
/// controller over one simulated network).
#[derive(Debug)]
pub struct ControllerProtocol {
    params: Params,
    initial_interval: Option<PermitInterval>,
    next_package_id: u64,
    granted: u64,
    rejected: u64,
}

impl ControllerProtocol {
    /// Creates the protocol for the given parameters. The root's whiteboard
    /// will be initialised with `params.m` permits in storage (and the serial
    /// interval, if one is supplied).
    pub fn new(params: Params, initial_interval: Option<PermitInterval>) -> Self {
        ControllerProtocol {
            params,
            initial_interval,
            next_package_id: 0,
            granted: 0,
            rejected: 0,
        }
    }

    /// The protocol parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Number of permits granted so far.
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Number of requests rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    fn fresh_package_id(&mut self) -> u64 {
        let id = self.next_package_id;
        self.next_package_id += 1;
        id
    }

    // ------------------------------------------------------------------
    // Agent program
    // ------------------------------------------------------------------

    /// Item 1 / item 2 of the agent program: the agent has just been created
    /// at (or re-activated at) its origin and holds the lock.
    fn at_origin(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut RequestAgent) -> Action {
        if ctx.whiteboard().store.has_reject() {
            return self.reject_here(ctx, agent);
        }
        if let Some(serial) = ctx.whiteboard_mut().store.grant_static() {
            self.grant(ctx, agent, serial);
            ctx.unlock();
            return Action::Terminate;
        }
        agent.phase = Phase::Climb;
        self.climb_checks(ctx, agent)
    }

    /// Item 3: the agent is at a locked-by-itself node on its way up and
    /// decides whether this node is a reject node, a filler node, the root, or
    /// just another hop.
    fn climb_checks(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut RequestAgent) -> Action {
        let dist = ctx.distance_from_origin() as u64;
        let params = ctx.whiteboard().params;
        if ctx.whiteboard().store.has_reject() {
            // Item 1b: walk back down to the origin, leaving reject packages.
            return self.start_reject_descent(ctx, agent, dist);
        }
        if let Some(level) = ctx.whiteboard().store.filler_level(dist, &params) {
            // Item 3a: this node is the closest filler node ρ(u).
            let pkg = ctx
                .whiteboard_mut()
                .store
                .take_mobile(level)
                // lint: allow(unwrap) the agent only walks down to a level it
                // saw in this whiteboard, and nothing drains it in between
                .expect("filler level was observed in this whiteboard");
            ctx.mark_top();
            agent.phase = Phase::Distribute {
                level: pkg.level,
                interval: pkg.interval,
            };
            return self.distribute_step(ctx, agent);
        }
        if ctx.is_root() {
            // Item 3c.
            let level = params.root_level_for_distance(dist);
            let size = params.mobile_size(level);
            if ctx.whiteboard().storage < size {
                // Not enough permits: trigger the reject wave and answer with
                // a reject.
                ctx.whiteboard_mut().store.place_reject();
                for child in ctx.children().to_vec() {
                    ctx.spawn_agent(CtrlAgent::RejectWave {
                        next_child: Some(child),
                    });
                }
                return self.start_reject_descent(ctx, agent, dist);
            }
            let interval = {
                let wb = ctx.whiteboard_mut();
                wb.storage -= size;
                match wb.storage_interval {
                    Some(iv) => {
                        let (taken, rest) = iv.split_off(size);
                        wb.storage_interval = rest;
                        Some(taken)
                    }
                    None => None,
                }
            };
            ctx.mark_top();
            agent.phase = Phase::Distribute { level, interval };
            return self.distribute_step(ctx, agent);
        }
        Action::Up
    }

    /// Item 4: the agent carries a package down the locked path, depositing a
    /// half at every deposit point `u_k`, until a level-0 package reaches the
    /// origin, becomes static and answers the request.
    fn distribute_step(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut RequestAgent) -> Action {
        let Phase::Distribute {
            mut level,
            mut interval,
        } = agent.phase
        else {
            unreachable!("distribute_step called outside the Distribute phase");
        };
        let dist = ctx.distance_from_origin() as u64;
        let params = ctx.whiteboard().params;
        // Account the permits moving down through this node (subtree
        // estimator, Lemma 5.3). The super-weight counts nodes that *joined*
        // the subtree, so only insertion-carrying agents feed the
        // observable: permits consumed by deletions or by non-topological
        // events travel the same paths but must not inflate it.
        if matches!(
            agent.kind,
            RequestKind::AddLeaf | RequestKind::AddInternalAbove(_)
        ) {
            ctx.whiteboard_mut().permits_passed_down += params.mobile_size(level);
        }

        loop {
            if level == 0 {
                if dist == 0 {
                    // The carried level-0 package becomes static at the origin
                    // and grants one permit.
                    let size = params.mobile_size(0);
                    let serial = {
                        let wb = ctx.whiteboard_mut();
                        wb.store.add_static(size, interval);
                        wb.store
                            .grant_static()
                            // lint: allow(unwrap) add_static() above deposited
                            // a package holding at least one permit
                            .expect("freshly converted static package is non-empty")
                    };
                    self.grant(ctx, agent, serial);
                    if ctx.dist_to_top() == 0 {
                        // The filler was the origin itself: nothing to unlock
                        // above us.
                        ctx.unlock();
                        return Action::Terminate;
                    }
                    agent.phase = Phase::ReturnUp;
                    return Action::Up;
                }
                agent.phase = Phase::Distribute { level, interval };
                return Action::Down;
            }
            let target = params.deposit_distance(level - 1);
            if dist == target {
                // Split: one level-(k−1) package stays here, the other stays
                // in the bag.
                let pkg = MobilePackage {
                    id: 0,
                    level,
                    interval,
                };
                let (stay, carry) = pkg.split(self.fresh_package_id(), self.fresh_package_id());
                ctx.whiteboard_mut().store.add_mobile(stay);
                level = carry.level;
                interval = carry.interval;
                // A further deposit at this same node is impossible (deposit
                // distances are strictly decreasing), so continue the loop to
                // fall into the movement cases.
                continue;
            }
            debug_assert!(dist > target, "the agent overshot a deposit point");
            agent.phase = Phase::Distribute { level, interval };
            return Action::Down;
        }
    }

    /// Grants the request handled by `agent` using the permit `serial`,
    /// schedules the granted event and reports the answer.
    fn grant(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &RequestAgent, serial: Option<u64>) {
        match agent.kind {
            RequestKind::NonTopological => {}
            RequestKind::AddLeaf => {
                ctx.schedule_change(TopologyChange::AddLeaf { parent: ctx.node() })
            }
            RequestKind::AddInternalAbove(child) => {
                ctx.schedule_change(TopologyChange::AddInternalAbove { below: child })
            }
            RequestKind::RemoveSelf => {
                ctx.schedule_change(TopologyChange::Remove { node: ctx.node() })
            }
        }
        self.granted += 1;
        let record = RequestRecord {
            id: agent.id,
            origin: ctx.origin(),
            kind: agent.kind,
            outcome: Outcome::Granted {
                serial,
                new_node: None,
            },
            // The driver stamps the real submit time when it collects the
            // answer; the protocol only knows the answer instant.
            submitted_at: 0,
            answered_at: ctx.time(),
        };
        ctx.emit(record);
    }

    /// Rejects the request at its origin node (which the agent currently
    /// occupies and has locked).
    fn reject_here(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &RequestAgent) -> Action {
        self.rejected += 1;
        let record = RequestRecord {
            id: agent.id,
            origin: ctx.origin(),
            kind: agent.kind,
            outcome: Outcome::Rejected,
            // The driver stamps the real submit time when it collects the
            // answer; the protocol only knows the answer instant.
            submitted_at: 0,
            answered_at: ctx.time(),
        };
        ctx.emit(record);
        ctx.unlock();
        Action::Terminate
    }

    /// Starts the descent of item 1b: the agent found a reject package (or an
    /// empty root storage) at the current node and returns to its origin,
    /// leaving reject packages at the intermediate nodes and unlocking its
    /// path.
    fn start_reject_descent(
        &mut self,
        ctx: &mut NodeCtx<'_, Self>,
        agent: &mut RequestAgent,
        dist: u64,
    ) -> Action {
        ctx.unlock();
        if dist == 0 {
            return self.reject_here_after_unlock(ctx, agent);
        }
        agent.phase = Phase::RejectDescent;
        Action::Down
    }

    fn reject_here_after_unlock(
        &mut self,
        ctx: &mut NodeCtx<'_, Self>,
        agent: &RequestAgent,
    ) -> Action {
        self.rejected += 1;
        let record = RequestRecord {
            id: agent.id,
            origin: ctx.origin(),
            kind: agent.kind,
            outcome: Outcome::Rejected,
            // The driver stamps the real submit time when it collects the
            // answer; the protocol only knows the answer instant.
            submitted_at: 0,
            answered_at: ctx.time(),
        };
        ctx.emit(record);
        Action::Terminate
    }

    /// One step of the reject descent (item 1b): place a reject package,
    /// unlock, keep descending; at the origin, deliver the reject.
    fn reject_descent_step(
        &mut self,
        ctx: &mut NodeCtx<'_, Self>,
        agent: &mut RequestAgent,
    ) -> Action {
        ctx.whiteboard_mut().store.place_reject();
        ctx.unlock();
        if ctx.distance_from_origin() == 0 {
            return self.reject_here_after_unlock(ctx, agent);
        }
        Action::Down
    }

    /// One step of the reject wave: place a reject package here and fan out to
    /// every child.
    fn reject_wave_step(&mut self, ctx: &mut NodeCtx<'_, Self>) -> Action {
        ctx.whiteboard_mut().store.place_reject();
        for child in ctx.children().to_vec() {
            ctx.spawn_agent(CtrlAgent::RejectWave {
                next_child: Some(child),
            });
        }
        Action::Terminate
    }
}

impl Protocol for ControllerProtocol {
    type Whiteboard = CtrlWhiteboard;
    type Agent = CtrlAgent;
    type Output = CtrlOutput;

    fn make_whiteboard(
        &mut self,
        _node: NodeId,
        parent: Option<&CtrlWhiteboard>,
    ) -> CtrlWhiteboard {
        match parent {
            Some(parent_wb) => CtrlWhiteboard::fresh(parent_wb.params),
            None => {
                let mut wb = CtrlWhiteboard::fresh(self.params);
                wb.storage = self.params.m;
                wb.storage_interval = self.initial_interval;
                wb
            }
        }
    }

    fn merge_whiteboard(&mut self, removed: CtrlWhiteboard, parent: &mut CtrlWhiteboard) -> u64 {
        let moved = parent.store.merge(removed.store);
        parent.storage += removed.storage;
        parent.permits_passed_down += removed.permits_passed_down;
        moved + 1
    }

    fn on_activate(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut CtrlAgent) -> Action {
        match agent {
            CtrlAgent::RejectWave { next_child } => {
                if let Some(child) = next_child.take() {
                    return Action::MoveToChild(child);
                }
                self.reject_wave_step(ctx)
            }
            CtrlAgent::Request(req) => match req.phase {
                Phase::Start | Phase::Climb => {
                    if ctx.is_locked() && !ctx.locked_by_me() {
                        return Action::WaitForUnlock;
                    }
                    ctx.lock();
                    if req.phase == Phase::Start {
                        self.at_origin(ctx, req)
                    } else {
                        self.climb_checks(ctx, req)
                    }
                }
                Phase::Distribute { .. } => self.distribute_step(ctx, req),
                Phase::ReturnUp => {
                    if ctx.dist_to_top() == 0 {
                        ctx.unlock();
                        if ctx.distance_from_origin() == 0 {
                            return Action::Terminate;
                        }
                        req.phase = Phase::FinalDescent;
                        return Action::Down;
                    }
                    Action::Up
                }
                Phase::FinalDescent => {
                    ctx.unlock();
                    if ctx.distance_from_origin() == 0 {
                        return Action::Terminate;
                    }
                    Action::Down
                }
                Phase::RejectDescent => self.reject_descent_step(ctx, req),
            },
        }
    }
}

//! Package *domains* (paper §3.2) — analysis-only bookkeeping, implemented as
//! an auditor so that tests can check the domain invariants on real
//! executions.
//!
//! Every existing mobile package `P` of level `k` is associated with a set of
//! (possibly already deleted) nodes, its *domain*, maintained under these
//! rules:
//!
//! * when the recursive distribution deposits a level-`k` package at the
//!   ancestor `u_k` of the requesting node `u`, its domain is the `2^{k−1}ψ`
//!   nodes on the path from `u` to `u_k` closest to `u_k` (excluding `u_k`);
//! * when a package is taken, split, cancelled or becomes static, its domain
//!   disappears;
//! * an internal-node insertion below a domain member's parent adds the new
//!   node to the domain and evicts the bottom-most *existing* member;
//! * deletions do not remove members (deleted nodes simply stay in the
//!   domain).
//!
//! The paper's correctness argument rests on three invariants (checked by
//! [`DomainAuditor::check_invariants`]):
//!
//! 1. the domain of a level-`k` package contains exactly `2^{k−1}ψ` nodes;
//! 2. domains of packages of the same level are pairwise disjoint;
//! 3. the currently existing members of a domain form a path hanging down from
//!    a child of the package's host node.

use crate::params::Params;
use dcn_collections::{FxHashMap, FxHashSet};
use dcn_tree::{DynamicTree, NodeId};

/// The domain of one mobile package.
#[derive(Clone, Debug)]
struct Domain {
    level: u32,
    host: NodeId,
    /// Members ordered from the top (child of the host) to the bottom
    /// (farthest from the root).
    members: Vec<NodeId>,
}

/// Auditor tracking package domains alongside a centralized execution.
///
/// The controller reports package life-cycle events and topological changes;
/// the auditor maintains the domains exactly as the paper's analysis does and
/// can check the three domain invariants at any time.
#[derive(Clone, Debug, Default)]
pub struct DomainAuditor {
    domains: FxHashMap<u64, Domain>,
}

impl DomainAuditor {
    /// Creates an auditor with no tracked domains.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of packages currently holding a domain.
    pub fn tracked(&self) -> usize {
        self.domains.len()
    }

    /// Records that a level-`level` package `pkg` was deposited at `host`
    /// during the distribution towards the requesting node `u`.
    /// `path_from_request` is the path from `u` (inclusive) up to `host`
    /// (inclusive), as returned by `DynamicTree::path_between(u, host)`.
    pub fn package_deposited(
        &mut self,
        pkg: u64,
        level: u32,
        host: NodeId,
        path_from_request: &[NodeId],
        params: &Params,
    ) {
        // Domain size: 2^{level-1} ψ  (ψ/2 for level 0; ψ is a multiple of 4).
        let size = (params.psi << level) / 2;
        // Members are the `size` nodes strictly below `host` on the path,
        // ordered from the child of `host` downwards.
        debug_assert!(path_from_request.last() == Some(&host));
        debug_assert!(path_from_request.len() as u64 > size);
        let below: Vec<NodeId> = path_from_request
            .iter()
            .rev()
            .skip(1) // skip the host itself
            .take(size as usize)
            .copied()
            .collect();
        self.domains.insert(
            pkg,
            Domain {
                level,
                host,
                members: below,
            },
        );
    }

    /// Records that a package was consumed: taken by a request, split, turned
    /// static or cancelled. Its domain disappears.
    pub fn package_consumed(&mut self, pkg: u64) {
        self.domains.remove(&pkg);
    }

    /// Records that a package moved to `new_host` because its previous host
    /// was gracefully deleted.
    pub fn package_rehosted(&mut self, pkg: u64, new_host: NodeId) {
        if let Some(d) = self.domains.get_mut(&pkg) {
            d.host = new_host;
        }
    }

    /// Forgets every domain (iteration reset).
    pub fn clear(&mut self) {
        self.domains.clear();
    }

    /// Records an internal-node insertion: `new_node` was spliced in as the
    /// parent of `below`.
    pub fn on_add_internal(&mut self, new_node: NodeId, below: NodeId, tree: &DynamicTree) {
        for domain in self.domains.values_mut() {
            let Some(pos) = domain.members.iter().position(|&m| m == below) else {
                continue;
            };
            // The new node joins right above `below`; the bottom-most
            // *existing* member leaves.
            domain.members.insert(pos, new_node);
            if let Some(last_existing) = domain.members.iter().rposition(|&m| tree.contains(m)) {
                domain.members.remove(last_existing);
            } else {
                domain.members.pop();
            }
        }
    }

    /// Checks the three domain invariants against the current tree. The
    /// `host_of` closure maps a package id to its current host node (or `None`
    /// if the package no longer exists, which is reported as an error).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn check_invariants(
        &self,
        tree: &DynamicTree,
        params: &Params,
        host_of: impl Fn(u64) -> Option<NodeId>,
    ) -> Result<(), String> {
        // Invariant 1: domain sizes.
        for (id, d) in &self.domains {
            let expected = (params.psi << d.level) / 2;
            if d.members.len() as u64 != expected {
                return Err(format!(
                    "package {id} (level {}) has a domain of {} nodes, expected {expected}",
                    d.level,
                    d.members.len()
                ));
            }
        }
        // Invariant 2: per-level disjointness.
        let mut seen_per_level: FxHashMap<u32, FxHashSet<NodeId>> = FxHashMap::default();
        for (id, d) in &self.domains {
            let seen = seen_per_level.entry(d.level).or_default();
            for &m in &d.members {
                if !seen.insert(m) {
                    return Err(format!(
                        "node {m} appears in two level-{} domains (one of them package {id})",
                        d.level
                    ));
                }
            }
        }
        // Invariant 3: existing members form a path hanging off a child of the
        // host.
        for (id, d) in &self.domains {
            let host = host_of(*id).ok_or_else(|| {
                format!("package {id} has a domain but no host (it no longer exists)")
            })?;
            let existing: Vec<NodeId> = d
                .members
                .iter()
                .copied()
                .filter(|&m| tree.contains(m))
                .collect();
            if existing.is_empty() {
                continue;
            }
            if tree.parent(existing[0]) != Some(host) {
                return Err(format!(
                    "package {id}: topmost existing domain member {} is not a child of host {host}",
                    existing[0]
                ));
            }
            for w in existing.windows(2) {
                if tree.parent(w[1]) != Some(w[0]) {
                    return Err(format!(
                        "package {id}: domain members {} and {} are not parent/child",
                        w[0], w[1]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        // psi is small-ish but still a multiple of 4.
        Params::new(64, 8, 8).unwrap()
    }

    /// Builds a path tree of the given length and returns (tree, nodes) where
    /// nodes[i] is the node at depth i.
    fn path(len: usize) -> (DynamicTree, Vec<NodeId>) {
        let tree = DynamicTree::with_initial_path(len);
        let nodes: Vec<NodeId> = (0..=len).map(NodeId::from_index).collect();
        (tree, nodes)
    }

    #[test]
    fn deposit_creates_a_correctly_sized_domain() {
        let p = params();
        let size = (p.psi / 2) as usize; // level 0
        let (tree, nodes) = path(3 * size + 5);
        let u = nodes[3 * size + 5];
        let host = nodes[3 * size + 5 - (3 * p.psi as usize / 2)];
        let path_up = tree.path_between(u, host).unwrap();
        let mut aud = DomainAuditor::new();
        aud.package_deposited(1, 0, host, &path_up, &p);
        assert_eq!(aud.tracked(), 1);
        aud.check_invariants(&tree, &p, |_| Some(host)).unwrap();
    }

    #[test]
    fn consumed_packages_lose_their_domains() {
        let p = params();
        let (tree, nodes) = path(4 * p.psi as usize);
        let u = *nodes.last().unwrap();
        let host = nodes[nodes.len() - 1 - (3 * p.psi as usize / 2)];
        let path_up = tree.path_between(u, host).unwrap();
        let mut aud = DomainAuditor::new();
        aud.package_deposited(7, 0, host, &path_up, &p);
        aud.package_consumed(7);
        assert_eq!(aud.tracked(), 0);
        aud.check_invariants(&tree, &p, |_| None).unwrap();
    }

    #[test]
    fn overlapping_same_level_domains_are_detected() {
        let p = params();
        let (tree, nodes) = path(4 * p.psi as usize);
        let u = *nodes.last().unwrap();
        let host = nodes[nodes.len() - 1 - (3 * p.psi as usize / 2)];
        let path_up = tree.path_between(u, host).unwrap();
        let mut aud = DomainAuditor::new();
        aud.package_deposited(1, 0, host, &path_up, &p);
        aud.package_deposited(2, 0, host, &path_up, &p);
        let err = aud.check_invariants(&tree, &p, |_| Some(host)).unwrap_err();
        assert!(err.contains("two level-0 domains"));
    }

    #[test]
    fn internal_insertion_updates_domains_and_preserves_invariants() {
        let p = params();
        let (mut tree, nodes) = path(4 * p.psi as usize);
        let u = *nodes.last().unwrap();
        let host = nodes[nodes.len() - 1 - (3 * p.psi as usize / 2)];
        let path_up = tree.path_between(u, host).unwrap();
        let mut aud = DomainAuditor::new();
        aud.package_deposited(1, 0, host, &path_up, &p);
        // Insert an internal node just below the host (i.e. above the current
        // topmost domain member).
        let top_member = *tree.children(host).unwrap().first().unwrap();
        let new_node = tree.add_internal_above(top_member).unwrap();
        aud.on_add_internal(new_node, top_member, &tree);
        aud.check_invariants(&tree, &p, |_| Some(host)).unwrap();
    }

    #[test]
    fn deletions_keep_members_and_invariants_hold() {
        let p = params();
        let (mut tree, nodes) = path(4 * p.psi as usize);
        let u = *nodes.last().unwrap();
        let host = nodes[nodes.len() - 1 - (3 * p.psi as usize / 2)];
        let path_up = tree.path_between(u, host).unwrap();
        let mut aud = DomainAuditor::new();
        aud.package_deposited(1, 0, host, &path_up, &p);
        // Delete a node in the middle of the domain (an internal node).
        let victim = *tree.children(host).unwrap().first().unwrap();
        let victim2 = *tree.children(victim).unwrap().first().unwrap();
        tree.remove_internal(victim2).unwrap();
        aud.check_invariants(&tree, &p, |_| Some(host)).unwrap();
        // Domain size (invariant 1) still counts the deleted node.
        assert_eq!(aud.tracked(), 1);
    }
}

//! Error type for controller operations.

use dcn_tree::NodeId;
use std::error::Error;
use std::fmt;

/// Errors returned by controller construction and request submission.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ControllerError {
    /// The waste parameter `W` exceeds the permit budget `M`.
    WasteExceedsBudget {
        /// The permit budget.
        m: u64,
        /// The waste parameter.
        w: u64,
    },
    /// The base controller requires `W >= 1`; use the iterated controller
    /// (Observation 3.4) for `W = 0`.
    ZeroWasteUnsupported,
    /// The upper bound `U` on the number of nodes ever to exist must be at
    /// least the current number of nodes.
    BoundTooSmall {
        /// The supplied bound.
        u: usize,
        /// The current number of nodes.
        nodes: usize,
    },
    /// A request referenced a node that does not exist.
    UnknownNode(NodeId),
    /// An `AddInternalAbove(child)` request arrived at a node that is not the
    /// parent of `child` (the paper requires the request to arrive at the
    /// parent-to-be).
    NotParentOf {
        /// The node the request arrived at.
        at: NodeId,
        /// The child below the would-be new internal node.
        child: NodeId,
    },
    /// A `RemoveSelf` request targeted the root, which may never be deleted.
    CannotRemoveRoot,
    /// The controller has terminated (terminating variant) and no longer
    /// accepts requests.
    Terminated,
    /// An error surfaced by the underlying network simulator.
    Sim(String),
    /// An error surfaced by the underlying tree.
    Tree(dcn_tree::TreeError),
}

impl fmt::Display for ControllerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ControllerError::WasteExceedsBudget { m, w } => {
                write!(f, "waste W={w} exceeds permit budget M={m}")
            }
            ControllerError::ZeroWasteUnsupported => write!(
                f,
                "the base controller requires W >= 1; use the iterated controller for W = 0"
            ),
            ControllerError::BoundTooSmall { u, nodes } => write!(
                f,
                "bound U={u} is smaller than the current number of nodes {nodes}"
            ),
            ControllerError::UnknownNode(id) => write!(f, "node {id} does not exist"),
            ControllerError::NotParentOf { at, child } => {
                write!(f, "node {at} is not the parent of {child}")
            }
            ControllerError::CannotRemoveRoot => write!(f, "the root cannot be removed"),
            ControllerError::Terminated => write!(f, "the controller has terminated"),
            ControllerError::Sim(msg) => write!(f, "simulator error: {msg}"),
            ControllerError::Tree(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl Error for ControllerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ControllerError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dcn_tree::TreeError> for ControllerError {
    fn from(e: dcn_tree::TreeError) -> Self {
        ControllerError::Tree(e)
    }
}

impl From<dcn_simnet::SimError> for ControllerError {
    fn from(e: dcn_simnet::SimError) -> Self {
        ControllerError::Sim(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let msgs = [
            ControllerError::WasteExceedsBudget { m: 3, w: 5 }.to_string(),
            ControllerError::ZeroWasteUnsupported.to_string(),
            ControllerError::BoundTooSmall { u: 2, nodes: 5 }.to_string(),
            ControllerError::UnknownNode(NodeId::from_index(7)).to_string(),
            ControllerError::CannotRemoveRoot.to_string(),
            ControllerError::Terminated.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn tree_errors_convert_and_chain() {
        let err: ControllerError = dcn_tree::TreeError::RootImmutable.into();
        assert!(matches!(err, ControllerError::Tree(_)));
        assert!(Error::source(&err).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ControllerError>();
    }
}

//! The [`RequestLedger`]: shared ticket/event/record bookkeeping for
//! [`Controller`](crate::Controller) implementations.
//!
//! The redesigned runtime API is *ticket-based*: every submission is issued a
//! [`RequestId`], and its outcome is observable three ways — as a
//! [`ControllerEvent`] drained from the event stream, as a [`RequestRecord`]
//! in the per-request history, and by id through
//! [`Controller::outcome`](crate::Controller::outcome). The synchronous
//! families (centralized, iterated, trivial, AAPS) answer inside `submit`, so
//! their bookkeeping is identical: issue a ticket, record the answer, emit
//! the matching events. This struct packages that bookkeeping so each family
//! embeds one field instead of re-implementing the protocol; the distributed
//! families keep their own (time-aware) bookkeeping but expose the same
//! surface.
//!
//! The ledger also provides the virtual clock of the synchronous families:
//! each issued ticket advances the clock by one, and the answer is recorded
//! at the same instant the request was submitted (latency 0 — the synchronous
//! setting answers on the spot, which is exactly what makes the distributed
//! family's non-zero latencies interesting to compare).

use crate::api::ControllerEvent;
use crate::request::{Outcome, RequestId, RequestKind, RequestRecord};
use dcn_collections::SecondaryMap;
use dcn_tree::NodeId;

/// Ticket issuing, event buffering and request history for a synchronous
/// controller family.
///
/// ```
/// use dcn_controller::{Outcome, RequestKind, RequestLedger};
/// use dcn_tree::NodeId;
///
/// let mut ledger = RequestLedger::new();
/// let id = ledger.issue();
/// ledger.record(
///     id,
///     NodeId::from_index(0),
///     RequestKind::NonTopological,
///     Outcome::Granted { serial: None, new_node: None },
/// );
/// assert!(ledger.outcome(id).unwrap().is_granted());
/// assert_eq!(ledger.drain_events().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct RequestLedger {
    next_id: u64,
    clock: u64,
    events: Vec<ControllerEvent>,
    records: Vec<RequestRecord>,
    index: SecondaryMap<RequestId, usize>,
}

impl RequestLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        RequestLedger::default()
    }

    /// Issues the next ticket and advances the virtual clock by one.
    pub fn issue(&mut self) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.clock += 1;
        id
    }

    /// The current virtual time (number of tickets issued so far).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Records the final answer for `id` and emits the matching events:
    /// [`ControllerEvent::Granted`] (plus [`ControllerEvent::TopologyApplied`]
    /// for granted topological requests — the synchronous families apply the
    /// change before `submit` returns), [`ControllerEvent::Rejected`] or
    /// [`ControllerEvent::Refused`].
    pub fn record(&mut self, id: RequestId, origin: NodeId, kind: RequestKind, outcome: Outcome) {
        let now = self.clock;
        let record = RequestRecord {
            id,
            origin,
            kind,
            outcome,
            submitted_at: now,
            answered_at: now,
        };
        ControllerEvent::push_for_record(&record, &mut self.events);
        self.index.insert(id, self.records.len());
        self.records.push(record);
    }

    /// Issues a ticket and records a refusal in one step (the path taken when
    /// [`Controller::supports`](crate::Controller::supports) is `false` for
    /// the request's kind).
    pub fn refuse(&mut self, origin: NodeId, kind: RequestKind) -> RequestId {
        let id = self.issue();
        self.record(id, origin, kind, Outcome::Refused);
        id
    }

    /// Removes and returns the buffered events, in emission order.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.events)
    }

    /// All answers recorded so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The outcome of a specific request, if it has been answered.
    pub fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.index.get(id).map(|&i| self.records[i].outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tickets_are_sequential_and_tick_the_clock() {
        let mut ledger = RequestLedger::new();
        assert_eq!(ledger.issue(), RequestId(0));
        assert_eq!(ledger.issue(), RequestId(1));
        assert_eq!(ledger.now(), 2);
    }

    #[test]
    fn granted_topological_requests_emit_two_events() {
        let mut ledger = RequestLedger::new();
        let id = ledger.issue();
        ledger.record(
            id,
            NodeId::from_index(3),
            RequestKind::AddLeaf,
            Outcome::Granted {
                serial: None,
                new_node: Some(NodeId::from_index(9)),
            },
        );
        let events = ledger.drain_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], ControllerEvent::Granted { .. }));
        assert!(matches!(
            events[1],
            ControllerEvent::TopologyApplied {
                node: Some(n),
                ..
            } if n == NodeId::from_index(9)
        ));
        // Draining empties the buffer.
        assert!(ledger.drain_events().is_empty());
    }

    #[test]
    fn refusals_are_recorded_and_retrievable() {
        let mut ledger = RequestLedger::new();
        let id = ledger.refuse(NodeId::from_index(1), RequestKind::RemoveSelf);
        assert_eq!(ledger.outcome(id), Some(Outcome::Refused));
        assert!(matches!(
            ledger.drain_events()[..],
            [ControllerEvent::Refused { id: got }] if got == id
        ));
        // Synchronous records carry zero latency.
        assert_eq!(ledger.records()[0].latency(), 0);
    }
}

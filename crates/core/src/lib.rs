//! # dcn-controller — the (M, W)-Controller for dynamic networks
//!
//! This crate implements the main contribution of Korman & Kutten,
//! *"Controller and Estimator for Dynamic Networks"*: an **(M, W)-Controller**
//! for networks spanned by a tree that may undergo insertions and deletions of
//! both leaves and internal nodes (the *controlled dynamic model*).
//!
//! An (M, W)-Controller answers online requests arriving at arbitrary nodes
//! with either a *permit* or a *reject*, subject to:
//!
//! * **Safety** — at most `M` permits are ever granted;
//! * **Liveness** — every request is eventually answered, and if any request
//!   is rejected, at least `M − W` permits are eventually granted.
//!
//! Following the paper, the crate provides the construction in layers:
//!
//! * [`centralized`] — the sequential controller of §3: permits travel in
//!   *packages* over the tree, requests pull packages from the nearest
//!   *filler node*, and the recursive `Proc` distribution leaves a trail of
//!   geometrically sized packages behind. Includes the iterated controller of
//!   Observation 3.4, the terminating controller of Observation 2.1 and the
//!   adaptive (unknown-`U`) controllers of Theorem 3.5.
//! * [`distributed`] — the mobile-agent implementation of §4 running on the
//!   [`dcn_simnet`] asynchronous network simulator, with path locking, FIFO
//!   waiting queues and reject waves, plus the iterated / adaptive drivers of
//!   §4.5 and Appendix A.
//! * [`domain`] — the *package domain* bookkeeping used by the paper's
//!   analysis (§3.2), implemented as an auditor so tests can check the domain
//!   invariants on real executions.
//! * [`verify`] — safety / liveness / waste checkers shared by tests, property
//!   tests and the experiment harness.
//!
//! Every family is driven through the ticket-based [`Controller`] trait: a
//! submission returns a [`RequestId`] ticket, execution advances either all
//! the way ([`Controller::run_to_quiescence`]) or in bounded slices
//! ([`Controller::step`]), and per-request outcomes are observed as
//! [`ControllerEvent`]s or looked up by ticket:
//!
//! ```
//! use dcn_controller::distributed::DistributedController;
//! use dcn_controller::{Controller, ControllerEvent, RequestKind};
//! use dcn_simnet::SimConfig;
//! use dcn_tree::DynamicTree;
//!
//! # fn main() -> Result<(), dcn_controller::ControllerError> {
//! // A distributed (M, W) = (10, 5) controller over a fresh 64-node star
//! // (the root plus 63 leaves — `with_initial_star(k)` creates k leaves).
//! let tree = DynamicTree::with_initial_star(63);
//! assert_eq!(tree.node_count(), 64);
//! let mut ctrl = DistributedController::new(SimConfig::new(7), tree, 10, 5, 200)?;
//! let leaf = Controller::tree(&ctrl).nodes().last().unwrap();
//!
//! // Submit returns a ticket; the agent is now in flight.
//! let ticket = Controller::submit(&mut ctrl, leaf, RequestKind::AddLeaf)?;
//! assert!(Controller::outcome(&ctrl, ticket).is_none());
//!
//! // Advance the simulator in bounded slices until it is quiescent —
//! // open-loop drivers submit more requests between slices.
//! while !Controller::step(&mut ctrl, 32)?.quiescent {}
//!
//! // The answer arrives as an event (and as a record retrievable by ticket).
//! let events = Controller::drain_events(&mut ctrl);
//! assert!(matches!(events[0], ControllerEvent::Granted { id, .. } if id == ticket));
//! assert!(Controller::outcome(&ctrl, ticket).unwrap().is_granted());
//! assert_eq!(ctrl.granted(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod centralized;
pub mod distributed;
pub mod domain;
mod error;
mod ledger;
mod package;
mod params;
mod request;
pub mod sharded;
pub mod verify;

pub use api::{Controller, ControllerEvent, ControllerMetrics, Progress};
pub use error::ControllerError;
pub use ledger::RequestLedger;
pub use package::{MobilePackage, PackageStore, PermitInterval};
pub use params::Params;
pub use request::{Outcome, RequestId, RequestKind, RequestRecord};
pub use sharded::ShardedController;

pub use dcn_tree::{DynamicTree, NodeId};

//! # dcn-controller — the (M, W)-Controller for dynamic networks
//!
//! This crate implements the main contribution of Korman & Kutten,
//! *"Controller and Estimator for Dynamic Networks"*: an **(M, W)-Controller**
//! for networks spanned by a tree that may undergo insertions and deletions of
//! both leaves and internal nodes (the *controlled dynamic model*).
//!
//! An (M, W)-Controller answers online requests arriving at arbitrary nodes
//! with either a *permit* or a *reject*, subject to:
//!
//! * **Safety** — at most `M` permits are ever granted;
//! * **Liveness** — every request is eventually answered, and if any request
//!   is rejected, at least `M − W` permits are eventually granted.
//!
//! Following the paper, the crate provides the construction in layers:
//!
//! * [`centralized`] — the sequential controller of §3: permits travel in
//!   *packages* over the tree, requests pull packages from the nearest
//!   *filler node*, and the recursive `Proc` distribution leaves a trail of
//!   geometrically sized packages behind. Includes the iterated controller of
//!   Observation 3.4, the terminating controller of Observation 2.1 and the
//!   adaptive (unknown-`U`) controllers of Theorem 3.5.
//! * [`distributed`] — the mobile-agent implementation of §4 running on the
//!   [`dcn_simnet`] asynchronous network simulator, with path locking, FIFO
//!   waiting queues and reject waves, plus the iterated / adaptive drivers of
//!   §4.5 and Appendix A.
//! * [`domain`] — the *package domain* bookkeeping used by the paper's
//!   analysis (§3.2), implemented as an auditor so tests can check the domain
//!   invariants on real executions.
//! * [`verify`] — safety / liveness / waste checkers shared by tests, property
//!   tests and the experiment harness.
//!
//! ```
//! use dcn_controller::centralized::CentralizedController;
//! use dcn_controller::{Outcome, RequestKind};
//! use dcn_tree::DynamicTree;
//!
//! # fn main() -> Result<(), dcn_controller::ControllerError> {
//! // A controller over a fresh 64-node star (the root plus 63 leaves —
//! // `with_initial_star(k)` creates k leaves) that may grant at most 10
//! // permits and may "waste" at most 5 of them.
//! let tree = DynamicTree::with_initial_star(63);
//! assert_eq!(tree.node_count(), 64);
//! let mut ctrl = CentralizedController::new(tree, 10, 5, 200)?;
//! let leaf = ctrl.tree().nodes().last().unwrap();
//! let outcome = ctrl.submit(leaf, RequestKind::AddLeaf)?;
//! assert!(matches!(outcome, Outcome::Granted { .. }));
//! assert_eq!(ctrl.granted(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod api;
pub mod centralized;
pub mod distributed;
pub mod domain;
mod error;
mod package;
mod params;
mod request;
pub mod verify;

pub use api::{Controller, ControllerMetrics};
pub use error::ControllerError;
pub use package::{MobilePackage, PackageStore, PermitInterval};
pub use params::Params;
pub use request::{Outcome, RequestId, RequestKind, RequestRecord};

pub use dcn_tree::{DynamicTree, NodeId};

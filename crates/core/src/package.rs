//! Permit packages and the per-node package store.
//!
//! Permits travel through the tree in *packages* (§3.1). A **mobile** package
//! of level `i` holds exactly `2^i · φ` permits and is what the distribution
//! procedure `Proc` moves and splits; a **static** package holds between 1 and
//! `φ` permits and only ever grants permits to requests arriving at its host
//! node; a **reject** package represents infinitely many rejects.
//!
//! For the name-assignment application (§5.2) every package may additionally
//! carry an explicit [`PermitInterval`]: the permits are then *serial numbers*
//! and a grant consumes one specific integer. Splitting a package splits its
//! interval in half, so intervals stay contiguous and disjoint.

use crate::params::Params;

/// A contiguous, inclusive range of permit serial numbers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PermitInterval {
    /// Smallest serial number in the interval.
    pub lo: u64,
    /// Largest serial number in the interval (inclusive).
    pub hi: u64,
}

impl PermitInterval {
    /// Creates the interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "interval bounds out of order: [{lo}, {hi}]");
        PermitInterval { lo, hi }
    }

    /// Number of permits in the interval.
    pub fn len(&self) -> u64 {
        self.hi - self.lo + 1
    }

    /// Intervals are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Splits off the first `count` serial numbers, returning `(taken, rest)`.
    /// `rest` is `None` when the whole interval is taken.
    pub fn split_off(self, count: u64) -> (PermitInterval, Option<PermitInterval>) {
        debug_assert!(count >= 1 && count <= self.len());
        let taken = PermitInterval::new(self.lo, self.lo + count - 1);
        let rest = if count == self.len() {
            None
        } else {
            Some(PermitInterval::new(self.lo + count, self.hi))
        };
        (taken, rest)
    }

    /// Splits the interval into two contiguous halves of equal size.
    ///
    /// # Panics
    ///
    /// Panics if the interval size is odd (package sizes are powers of two
    /// times `φ`, so this never happens in the controller).
    pub fn halves(self) -> (PermitInterval, PermitInterval) {
        let len = self.len();
        assert!(len % 2 == 0, "cannot halve an odd-sized interval");
        let mid = self.lo + len / 2;
        (
            PermitInterval::new(self.lo, mid - 1),
            PermitInterval::new(mid, self.hi),
        )
    }
}

/// A mobile permit package of a given level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MobilePackage {
    /// Identity of the package (unique per controller instance; used by the
    /// domain auditor and for deterministic tie-breaking).
    pub id: u64,
    /// Level `i`: the package holds `2^i · φ` permits.
    pub level: u32,
    /// Serial-number interval, when the controller runs in interval mode.
    pub interval: Option<PermitInterval>,
}

impl MobilePackage {
    /// Splits this package into two packages of one level lower, assigning
    /// them the given fresh identities. The interval (if any) is split into
    /// its two halves.
    ///
    /// # Panics
    ///
    /// Panics if the package has level 0.
    pub fn split(self, id_a: u64, id_b: u64) -> (MobilePackage, MobilePackage) {
        assert!(self.level > 0, "cannot split a level-0 package");
        let (ia, ib) = match self.interval {
            Some(iv) => {
                let (a, b) = iv.halves();
                (Some(a), Some(b))
            }
            None => (None, None),
        };
        (
            MobilePackage {
                id: id_a,
                level: self.level - 1,
                interval: ia,
            },
            MobilePackage {
                id: id_b,
                level: self.level - 1,
                interval: ib,
            },
        )
    }
}

/// The packages stored at one node: the merged static pool, the mobile
/// packages, and the reject flag.
///
/// Static packages at a node never move (except when the node is deleted and
/// the whole store is handed to the parent), so — as the paper notes in the
/// memory analysis (Claim 4.8) — they can be represented by a single combined
/// pool.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PackageStore {
    static_permits: u64,
    static_intervals: Vec<PermitInterval>,
    mobiles: Vec<MobilePackage>,
    reject: bool,
}

impl PackageStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns `true` if the node holds a reject package.
    pub fn has_reject(&self) -> bool {
        self.reject
    }

    /// Places a reject package at the node (idempotent).
    pub fn place_reject(&mut self) {
        self.reject = true;
    }

    /// Number of permits currently available in the static pool.
    pub fn static_permits(&self) -> u64 {
        self.static_permits
    }

    /// Adds `count` permits (optionally a specific serial interval of exactly
    /// that size) to the static pool.
    pub fn add_static(&mut self, count: u64, interval: Option<PermitInterval>) {
        debug_assert!(interval.map_or(true, |iv| iv.len() == count));
        self.static_permits += count;
        if let Some(iv) = interval {
            self.static_intervals.push(iv);
        }
    }

    /// Grants one permit from the static pool. Returns `None` if the pool is
    /// empty; otherwise returns the consumed serial number when the store is
    /// in interval mode.
    pub fn grant_static(&mut self) -> Option<Option<u64>> {
        if self.static_permits == 0 {
            return None;
        }
        self.static_permits -= 1;
        let serial = self.pop_serial();
        Some(serial)
    }

    fn pop_serial(&mut self) -> Option<u64> {
        let last = self.static_intervals.last_mut()?;
        let serial = last.lo;
        if last.lo == last.hi {
            self.static_intervals.pop();
        } else {
            last.lo += 1;
        }
        Some(serial)
    }

    /// Adds a mobile package to the node.
    pub fn add_mobile(&mut self, package: MobilePackage) {
        self.mobiles.push(package);
    }

    /// The mobile packages currently hosted at the node.
    pub fn mobiles(&self) -> &[MobilePackage] {
        &self.mobiles
    }

    /// Number of mobile packages at the node.
    pub fn mobile_count(&self) -> usize {
        self.mobiles.len()
    }

    /// Finds the level of the "best" package that makes this node a filler for
    /// a request at distance `dist`: the smallest level `j` such that the node
    /// hosts a level-`j` mobile package and `dist` lies in the level-`j`
    /// filler band.
    pub fn filler_level(&self, dist: u64, params: &Params) -> Option<u32> {
        self.mobiles
            .iter()
            .filter(|p| params.is_filler_band(dist, p.level))
            .map(|p| p.level)
            .min()
    }

    /// Removes and returns one mobile package of the given level (the one with
    /// the smallest id, for determinism). Returns `None` if no such package is
    /// hosted here.
    pub fn take_mobile(&mut self, level: u32) -> Option<MobilePackage> {
        let idx = self
            .mobiles
            .iter()
            .enumerate()
            .filter(|(_, p)| p.level == level)
            .min_by_key(|(_, p)| p.id)
            .map(|(i, _)| i)?;
        Some(self.mobiles.swap_remove(idx))
    }

    /// Total number of permits stored at this node (static pool plus all
    /// mobile packages), used to count "unused" permits at iteration
    /// boundaries.
    pub fn total_permits(&self, params: &Params) -> u64 {
        self.static_permits
            + self
                .mobiles
                .iter()
                .map(|p| params.mobile_size(p.level))
                .sum::<u64>()
    }

    /// Returns `true` when the store holds neither permits nor a reject
    /// package.
    pub fn is_empty(&self) -> bool {
        self.static_permits == 0 && self.mobiles.is_empty() && !self.reject
    }

    /// Removes every package from the store (used when the data structure is
    /// re-initialised at an iteration boundary) and returns the number of
    /// permits that were reclaimed.
    pub fn clear(&mut self, params: &Params) -> u64 {
        let reclaimed = self.total_permits(params);
        self.static_permits = 0;
        self.static_intervals.clear();
        self.mobiles.clear();
        self.reject = false;
        reclaimed
    }

    /// Merges another store into this one (graceful hand-off from a deleted
    /// child). Returns the number of packages moved (an estimate of the
    /// hand-off message count).
    pub fn merge(&mut self, other: PackageStore) -> u64 {
        let moved = other.mobiles.len() as u64
            + u64::from(other.static_permits > 0)
            + u64::from(other.reject);
        self.static_permits += other.static_permits;
        self.static_intervals.extend(other.static_intervals);
        self.mobiles.extend(other.mobiles);
        self.reject |= other.reject;
        moved
    }

    /// Estimated memory footprint of this store in bits under the compressed
    /// representation of Claim 4.8: per-level counters of `O(log U)` bits for
    /// mobile packages, `O(log M)` bits for the merged static pool and one bit
    /// for the reject flag.
    pub fn memory_bits(&self, params: &Params) -> u64 {
        let log_u = (params.u.max(2) as f64).log2().ceil() as u64;
        let log_m = (params.m.max(2) as f64).log2().ceil() as u64;
        let levels_present: std::collections::BTreeSet<u32> =
            self.mobiles.iter().map(|p| p.level).collect();
        levels_present.len() as u64 * log_u + log_m + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(1_000, 100, 50).unwrap()
    }

    #[test]
    fn interval_arithmetic() {
        let iv = PermitInterval::new(10, 17);
        assert_eq!(iv.len(), 8);
        let (a, b) = iv.halves();
        assert_eq!(a, PermitInterval::new(10, 13));
        assert_eq!(b, PermitInterval::new(14, 17));
        let (taken, rest) = iv.split_off(3);
        assert_eq!(taken, PermitInterval::new(10, 12));
        assert_eq!(rest, Some(PermitInterval::new(13, 17)));
        let (taken, rest) = iv.split_off(8);
        assert_eq!(taken, iv);
        assert_eq!(rest, None);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn interval_rejects_reversed_bounds() {
        let _ = PermitInterval::new(5, 4);
    }

    #[test]
    fn splitting_a_package_halves_level_and_interval() {
        let p = MobilePackage {
            id: 1,
            level: 3,
            interval: Some(PermitInterval::new(0, 7)),
        };
        let (a, b) = p.split(10, 11);
        assert_eq!(a.level, 2);
        assert_eq!(b.level, 2);
        assert_eq!(a.interval, Some(PermitInterval::new(0, 3)));
        assert_eq!(b.interval, Some(PermitInterval::new(4, 7)));
        assert_eq!((a.id, b.id), (10, 11));
    }

    #[test]
    #[should_panic(expected = "level-0")]
    fn splitting_level_zero_panics() {
        let p = MobilePackage {
            id: 1,
            level: 0,
            interval: None,
        };
        let _ = p.split(2, 3);
    }

    #[test]
    fn static_pool_grants_until_empty() {
        let mut store = PackageStore::new();
        store.add_static(2, None);
        assert_eq!(store.static_permits(), 2);
        assert_eq!(store.grant_static(), Some(None));
        assert_eq!(store.grant_static(), Some(None));
        assert_eq!(store.grant_static(), None);
    }

    #[test]
    fn static_pool_with_intervals_returns_serials() {
        let mut store = PackageStore::new();
        store.add_static(3, Some(PermitInterval::new(100, 102)));
        let mut serials = Vec::new();
        while let Some(Some(s)) = store.grant_static() {
            serials.push(s);
        }
        serials.sort_unstable();
        assert_eq!(serials, vec![100, 101, 102]);
    }

    #[test]
    fn filler_level_picks_the_smallest_matching_level() {
        let p = params();
        let mut store = PackageStore::new();
        store.add_mobile(MobilePackage {
            id: 1,
            level: 2,
            interval: None,
        });
        store.add_mobile(MobilePackage {
            id: 2,
            level: 1,
            interval: None,
        });
        // A distance in the level-1 band only.
        let dist = 3 * p.psi;
        assert_eq!(store.filler_level(dist, &p), Some(1));
        // A distance matching neither band.
        assert_eq!(store.filler_level(16 * p.psi + 1, &p), None);
        // A distance in the level-2 band.
        assert_eq!(store.filler_level(6 * p.psi, &p), Some(2));
    }

    #[test]
    fn take_mobile_prefers_smallest_id_and_removes_it() {
        let mut store = PackageStore::new();
        store.add_mobile(MobilePackage {
            id: 7,
            level: 1,
            interval: None,
        });
        store.add_mobile(MobilePackage {
            id: 3,
            level: 1,
            interval: None,
        });
        store.add_mobile(MobilePackage {
            id: 5,
            level: 2,
            interval: None,
        });
        let taken = store.take_mobile(1).unwrap();
        assert_eq!(taken.id, 3);
        assert_eq!(store.mobile_count(), 2);
        assert!(store.take_mobile(4).is_none());
    }

    #[test]
    fn totals_and_clear_reclaim_permits() {
        let p = params();
        let mut store = PackageStore::new();
        store.add_static(3, None);
        store.add_mobile(MobilePackage {
            id: 1,
            level: 2,
            interval: None,
        });
        assert_eq!(store.total_permits(&p), 3 + 4 * p.phi);
        let reclaimed = store.clear(&p);
        assert_eq!(reclaimed, 3 + 4 * p.phi);
        assert!(store.is_empty());
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = PackageStore::new();
        a.add_static(1, None);
        let mut b = PackageStore::new();
        b.add_static(2, None);
        b.add_mobile(MobilePackage {
            id: 9,
            level: 0,
            interval: None,
        });
        b.place_reject();
        let moved = a.merge(b);
        assert!(moved >= 2);
        assert_eq!(a.static_permits(), 3);
        assert_eq!(a.mobile_count(), 1);
        assert!(a.has_reject());
    }

    #[test]
    fn memory_estimate_grows_with_distinct_levels() {
        let p = params();
        let mut store = PackageStore::new();
        let empty_bits = store.memory_bits(&p);
        store.add_mobile(MobilePackage {
            id: 1,
            level: 0,
            interval: None,
        });
        store.add_mobile(MobilePackage {
            id: 2,
            level: 3,
            interval: None,
        });
        store.add_mobile(MobilePackage {
            id: 3,
            level: 3,
            interval: None,
        });
        let with_packages = store.memory_bits(&p);
        assert!(with_packages > empty_bits);
    }
}

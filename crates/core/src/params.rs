//! Controller parameters and the level / distance arithmetic of the paper.
//!
//! For a fixed upper bound `U` on the number of nodes ever to exist, the paper
//! (§3.1) defines
//!
//! * `φ = max{⌊W / 2U⌋, 1}` — the granularity of static packages (a static
//!   package holds between 1 and `φ` permits, a mobile package of *level* `i`
//!   holds exactly `2^i · φ`);
//! * `ψ = 4⌈log U + 2⌉ · max{⌈U / W⌉, 1}` — the distance scale: a *filler
//!   node* for a request at `u` is an ancestor `w` holding a level-`j` mobile
//!   package with `d(u, w) ≤ 2ψ` when `j = 0`, or `2^j ψ < d(u, w) ≤ 2^{j+1}ψ`
//!   when `j ≥ 1`;
//! * during distribution, the level-`k` package left behind sits at the
//!   ancestor `u_k` of `u` at distance `3·2^{k−1}ψ`.
//!
//! All of this integer arithmetic is concentrated in [`Params`] so that the
//! centralized and distributed controllers share exactly the same math.

use crate::ControllerError;

/// The parameters `(M, W, U)` of a single (fixed-bound) controller instance,
/// together with the derived quantities `φ` and `ψ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Params {
    /// Permit budget `M`.
    pub m: u64,
    /// Waste bound `W` (the base construction requires `W ≥ 1`).
    pub w: u64,
    /// Upper bound `U` on the number of nodes ever to exist (initial nodes
    /// plus all insertions).
    pub u: u64,
    /// Static-package granularity `φ`.
    pub phi: u64,
    /// Distance scale `ψ` (always a positive multiple of 4).
    pub psi: u64,
}

impl Params {
    /// Derives the parameters for an `(m, w)`-controller with node bound `u`.
    ///
    /// # Errors
    ///
    /// * [`ControllerError::ZeroWasteUnsupported`] if `w == 0` (the base
    ///   construction needs `W ≥ 1`; wrap it per Observation 3.4 for `W = 0`);
    /// * [`ControllerError::WasteExceedsBudget`] if `w > m`.
    pub fn new(m: u64, w: u64, u: u64) -> Result<Self, ControllerError> {
        if w == 0 {
            return Err(ControllerError::ZeroWasteUnsupported);
        }
        if w > m {
            return Err(ControllerError::WasteExceedsBudget { m, w });
        }
        let u = u.max(1);
        let phi = (w / (2 * u)).max(1);
        let log_term = ceil_log2(u) + 2;
        let psi = 4 * log_term * div_ceil(u, w).max(1);
        Ok(Params { m, w, u, phi, psi })
    }

    /// Size (number of permits) of a mobile package of level `level`.
    pub fn mobile_size(&self, level: u32) -> u64 {
        self.phi.saturating_mul(1u64 << level.min(63))
    }

    /// Largest level a mobile package can have (`log U + 1`).
    pub fn max_level(&self) -> u32 {
        ceil_log2(self.u) as u32 + 1
    }

    /// Returns `true` if an ancestor at hop distance `dist` holding a
    /// level-`level` mobile package is a *filler node* for the requesting
    /// node.
    pub fn is_filler_band(&self, dist: u64, level: u32) -> bool {
        if level == 0 {
            dist <= 2 * self.psi
        } else {
            let lo = self.psi.saturating_mul(1u64 << level.min(63));
            let hi = self.psi.saturating_mul(1u64 << (level + 1).min(63));
            lo < dist && dist <= hi
        }
    }

    /// The level `j(u)` used when no filler exists on the way to the root:
    /// the smallest `j ≥ 0` such that `d(u, root) ≤ 2^{j+1} ψ`.
    pub fn root_level_for_distance(&self, dist: u64) -> u32 {
        let mut j = 0u32;
        while self.psi.saturating_mul(1u64 << (j + 1).min(63)) < dist {
            j += 1;
        }
        j
    }

    /// Distance from the requesting node `u` to the deposit point `u_k`:
    /// `d(u, u_k) = 3·2^{k−1}·ψ` (an integer because `ψ` is a multiple of 4).
    pub fn deposit_distance(&self, k: u32) -> u64 {
        // 3 * 2^{k-1} * psi  ==  (3 * psi / 2) << k
        (3 * self.psi / 2).saturating_mul(1u64 << k.min(63))
    }

    /// The theoretical move/message bound of the fixed-bound controller
    /// (Lemma 3.3): `U · (M / W) · log² U`, used by experiments to compare the
    /// measured cost against the claimed shape.
    pub fn single_shot_bound(&self) -> f64 {
        let u = self.u as f64;
        let log2u = (self.u.max(2) as f64).log2();
        u * (self.m as f64 / self.w as f64) * log2u * log2u
    }

    /// The theoretical bound of the iterated controller (Observation 3.4):
    /// `U · log² U · log(M / (W+1))`.
    pub fn iterated_bound(&self) -> f64 {
        let u = self.u as f64;
        let log2u = (self.u.max(2) as f64).log2();
        let ratio = (self.m as f64 / (self.w as f64 + 1.0)).max(2.0);
        u * log2u * log2u * ratio.log2()
    }
}

/// `⌈log2(x)⌉` for `x ≥ 1` (0 for `x = 1`).
pub(crate) fn ceil_log2(x: u64) -> u64 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros() as u64
    }
}

/// `⌈a / b⌉` for `b > 0`.
pub(crate) fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_reference() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(matches!(
            Params::new(10, 0, 100),
            Err(ControllerError::ZeroWasteUnsupported)
        ));
        assert!(matches!(
            Params::new(3, 5, 100),
            Err(ControllerError::WasteExceedsBudget { .. })
        ));
    }

    #[test]
    fn phi_is_one_when_waste_is_small() {
        // W < 2U  =>  phi = 1  (the paper's "no static packages" regime).
        let p = Params::new(100, 10, 100).unwrap();
        assert_eq!(p.phi, 1);
    }

    #[test]
    fn phi_scales_with_large_waste() {
        let p = Params::new(10_000, 4_000, 100).unwrap();
        assert_eq!(p.phi, 4_000 / 200);
    }

    #[test]
    fn psi_is_a_positive_multiple_of_four() {
        for (m, w, u) in [
            (10u64, 1u64, 1u64),
            (100, 7, 64),
            (1000, 999, 512),
            (8, 8, 3),
        ] {
            let p = Params::new(m, w, u).unwrap();
            assert!(p.psi >= 4, "psi too small for {m},{w},{u}");
            assert_eq!(p.psi % 4, 0);
        }
    }

    #[test]
    fn mobile_sizes_double_per_level() {
        let p = Params::new(1000, 200, 10).unwrap();
        assert_eq!(p.mobile_size(0), p.phi);
        assert_eq!(p.mobile_size(3), 8 * p.phi);
    }

    #[test]
    fn filler_bands_partition_distances() {
        let p = Params::new(100, 5, 64).unwrap();
        let psi = p.psi;
        assert!(p.is_filler_band(0, 0));
        assert!(p.is_filler_band(2 * psi, 0));
        assert!(!p.is_filler_band(2 * psi + 1, 0));
        assert!(p.is_filler_band(2 * psi + 1, 1));
        assert!(p.is_filler_band(4 * psi, 1));
        assert!(!p.is_filler_band(4 * psi + 1, 1));
        assert!(p.is_filler_band(8 * psi, 2));
        assert!(!p.is_filler_band(2 * psi, 1));
        assert!(!p.is_filler_band(2 * psi, 2));
    }

    #[test]
    fn root_level_is_minimal() {
        let p = Params::new(100, 5, 64).unwrap();
        let psi = p.psi;
        assert_eq!(p.root_level_for_distance(0), 0);
        assert_eq!(p.root_level_for_distance(2 * psi), 0);
        assert_eq!(p.root_level_for_distance(2 * psi + 1), 1);
        assert_eq!(p.root_level_for_distance(4 * psi), 1);
        assert_eq!(p.root_level_for_distance(4 * psi + 1), 2);
        // Minimality: the band of the returned level always contains the
        // distance (for dist > 0).
        for dist in 1..(16 * psi) {
            let j = p.root_level_for_distance(dist);
            assert!(dist <= psi * (1 << (j + 1)));
            if j > 0 {
                assert!(dist > psi * (1 << j));
            }
        }
    }

    #[test]
    fn deposit_distances_follow_the_three_halves_rule() {
        let p = Params::new(100, 5, 64).unwrap();
        let psi = p.psi;
        assert_eq!(p.deposit_distance(0), 3 * psi / 2);
        assert_eq!(p.deposit_distance(1), 3 * psi);
        assert_eq!(p.deposit_distance(2), 6 * psi);
        // The deposit point for level k lies inside the filler band for level
        // k, so packages left behind are later discoverable.
        for k in 0..6u32 {
            let d = p.deposit_distance(k);
            assert!(
                p.is_filler_band(d, k),
                "deposit point of level {k} not in its band"
            );
        }
    }

    #[test]
    fn bounds_are_monotone_in_u() {
        let small = Params::new(1000, 10, 64).unwrap();
        let large = Params::new(1000, 10, 4096).unwrap();
        assert!(large.single_shot_bound() > small.single_shot_bound());
        assert!(large.iterated_bound() > small.iterated_bound());
    }
}

//! Requests, request identifiers and outcomes.

use dcn_tree::NodeId;
use std::fmt;

/// Identifier of a request submitted to a controller.
///
/// Every [`Controller::submit`](crate::Controller::submit) call that reaches a
/// controller issues one — it is the *ticket* under which the request's
/// outcome is later reported ([`ControllerEvent`](crate::ControllerEvent),
/// [`RequestRecord`], [`Controller::outcome`](crate::Controller::outcome)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl dcn_collections::EntityKey for RequestId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        RequestId(index as u64)
    }
}

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The kind of event a request asks permission for.
///
/// Topological requests follow the paper's conventions on where they arrive
/// (§2.1.2): a request to add a node arrives at the parent-to-be, a request to
/// delete a node arrives at that node itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Add a new leaf as a child of the node the request arrives at.
    AddLeaf,
    /// Split the edge between the given child and the node the request
    /// arrives at (which must be the child's parent) with a new internal node.
    AddInternalAbove(NodeId),
    /// Remove the node the request arrives at (leaf or internal; never the
    /// root).
    RemoveSelf,
    /// A non-topological event (e.g. a resource allocation) at the node the
    /// request arrives at.
    NonTopological,
}

impl RequestKind {
    /// Returns `true` if granting this request changes the tree topology.
    pub fn is_topological(&self) -> bool {
        !matches!(self, RequestKind::NonTopological)
    }
}

/// The answer a controller gives to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The request received a permit; the event may now take place.
    Granted {
        /// The serial number of the consumed permit, when the controller runs
        /// in interval mode (used by the name-assignment protocol).
        serial: Option<u64>,
        /// For topological insertions handled synchronously (centralized
        /// controller), the id of the newly created node.
        new_node: Option<NodeId>,
    },
    /// The request was rejected.
    Rejected,
    /// The controller's dynamic model does not cover the request's kind (the
    /// AAPS baseline refuses deletions and internal insertions); no permit was
    /// consumed and the safety/liveness accounting is untouched.
    Refused,
}

impl Outcome {
    /// Returns `true` for granted outcomes.
    pub fn is_granted(&self) -> bool {
        matches!(self, Outcome::Granted { .. })
    }

    /// Returns `true` for refused outcomes (request kind outside the
    /// controller's dynamic model).
    pub fn is_refused(&self) -> bool {
        matches!(self, Outcome::Refused)
    }
}

/// A fully resolved request, as recorded by every controller family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request's identifier.
    pub id: RequestId,
    /// The node the request arrived at.
    pub origin: NodeId,
    /// What the request asked for.
    pub kind: RequestKind,
    /// The controller's answer.
    pub outcome: Outcome,
    /// Virtual time at which the request was submitted (simulated network
    /// time for the distributed families; the submission serial number for
    /// the synchronous families, which answer inside `submit`).
    pub submitted_at: u64,
    /// Virtual time at which the answer was delivered (same clock as
    /// [`RequestRecord::submitted_at`]).
    pub answered_at: u64,
}

impl RequestRecord {
    /// The request's answer latency in virtual time units
    /// (`answered_at − submitted_at`; 0 for the synchronous families).
    pub fn latency(&self) -> u64 {
        self.answered_at.saturating_sub(self.submitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_formats_compactly() {
        assert_eq!(format!("{}", RequestId(4)), "r4");
        assert_eq!(format!("{:?}", RequestId(4)), "r4");
    }

    #[test]
    fn topological_classification() {
        assert!(RequestKind::AddLeaf.is_topological());
        assert!(RequestKind::RemoveSelf.is_topological());
        assert!(RequestKind::AddInternalAbove(NodeId::from_index(1)).is_topological());
        assert!(!RequestKind::NonTopological.is_topological());
    }

    #[test]
    fn outcome_grant_detection() {
        let g = Outcome::Granted {
            serial: Some(7),
            new_node: None,
        };
        assert!(g.is_granted());
        assert!(!Outcome::Rejected.is_granted());
        assert!(!Outcome::Refused.is_granted());
        assert!(Outcome::Refused.is_refused());
    }

    #[test]
    fn latency_is_the_answer_delay() {
        let rec = RequestRecord {
            id: RequestId(0),
            origin: NodeId::from_index(0),
            kind: RequestKind::NonTopological,
            outcome: Outcome::Rejected,
            submitted_at: 10,
            answered_at: 25,
        };
        assert_eq!(rec.latency(), 15);
    }
}

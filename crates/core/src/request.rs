//! Requests, request identifiers and outcomes.

use dcn_tree::NodeId;
use std::fmt;

/// Identifier of a request submitted to a controller.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Debug for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The kind of event a request asks permission for.
///
/// Topological requests follow the paper's conventions on where they arrive
/// (§2.1.2): a request to add a node arrives at the parent-to-be, a request to
/// delete a node arrives at that node itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Add a new leaf as a child of the node the request arrives at.
    AddLeaf,
    /// Split the edge between the given child and the node the request
    /// arrives at (which must be the child's parent) with a new internal node.
    AddInternalAbove(NodeId),
    /// Remove the node the request arrives at (leaf or internal; never the
    /// root).
    RemoveSelf,
    /// A non-topological event (e.g. a resource allocation) at the node the
    /// request arrives at.
    NonTopological,
}

impl RequestKind {
    /// Returns `true` if granting this request changes the tree topology.
    pub fn is_topological(&self) -> bool {
        !matches!(self, RequestKind::NonTopological)
    }
}

/// The answer a controller gives to a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The request received a permit; the event may now take place.
    Granted {
        /// The serial number of the consumed permit, when the controller runs
        /// in interval mode (used by the name-assignment protocol).
        serial: Option<u64>,
        /// For topological insertions handled synchronously (centralized
        /// controller), the id of the newly created node.
        new_node: Option<NodeId>,
    },
    /// The request was rejected.
    Rejected,
}

impl Outcome {
    /// Returns `true` for granted outcomes.
    pub fn is_granted(&self) -> bool {
        matches!(self, Outcome::Granted { .. })
    }
}

/// A fully resolved request, as reported by the distributed controller driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestRecord {
    /// The request's identifier.
    pub id: RequestId,
    /// The node the request arrived at.
    pub origin: NodeId,
    /// What the request asked for.
    pub kind: RequestKind,
    /// The controller's answer.
    pub outcome: Outcome,
    /// Simulated time at which the answer was delivered.
    pub answered_at: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_id_formats_compactly() {
        assert_eq!(format!("{}", RequestId(4)), "r4");
        assert_eq!(format!("{:?}", RequestId(4)), "r4");
    }

    #[test]
    fn topological_classification() {
        assert!(RequestKind::AddLeaf.is_topological());
        assert!(RequestKind::RemoveSelf.is_topological());
        assert!(RequestKind::AddInternalAbove(NodeId::from_index(1)).is_topological());
        assert!(!RequestKind::NonTopological.is_topological());
    }

    #[test]
    fn outcome_grant_detection() {
        let g = Outcome::Granted {
            serial: Some(7),
            new_node: None,
        };
        assert!(g.is_granted());
        assert!(!Outcome::Rejected.is_granted());
    }
}

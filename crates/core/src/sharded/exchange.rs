//! Deterministic budget-slice assignment for the cross-shard permit exchange.
//!
//! The sharded controller treats its shards like the paper's AAPS bins: each
//! shard grants locally against a slice `(M_i, W_i)` of the global budget and,
//! when slices run dry, a deterministic *exchange wave* recomputes every slice
//! from the unspent global pool (see [`crate::sharded`] and DESIGN.md §10).
//! This module holds the pure arithmetic of that recomputation so it can be
//! unit-tested in isolation.

/// Splits `pool` permits into `k` slices `(m_i, w_i)`.
///
/// The split is even (`pool / k` each, remainder distributed one permit at a
/// time), with *requesters first*: shards flagged in `pending` receive the
/// remainder permits before the others, in ascending shard order, so every
/// wave hands at least one permit to a shard with starved requests whenever
/// the pool allows it. Each non-empty slice gets a waste bound
/// `w_i = clamp(w / k, 1, m_i)`; empty slices are `(0, 0)`.
///
/// Invariant: `Σ m_i == pool` — a wave can never hand out more than the
/// unspent global budget, which is what keeps `Σ granted ≤ M` across shards.
pub(crate) fn slices(pool: u64, w: u64, k: usize, pending: &[bool]) -> Vec<(u64, u64)> {
    debug_assert_eq!(pending.len(), k);
    let base = pool / k as u64;
    let mut rem = (pool % k as u64) as usize;
    let mut shares = vec![base; k];
    // Remainder permits: pending shards first (ascending), then the rest.
    let order = pending
        .iter()
        .enumerate()
        .filter(|(_, &p)| p)
        .map(|(i, _)| i)
        .chain(
            pending
                .iter()
                .enumerate()
                .filter(|(_, &p)| !p)
                .map(|(i, _)| i),
        );
    for i in order {
        if rem == 0 {
            break;
        }
        shares[i] += 1;
        rem -= 1;
    }
    let w_share = (w / k as u64).max(1);
    shares
        .into_iter()
        .map(|m_i| {
            if m_i == 0 {
                (0, 0)
            } else {
                (m_i, w_share.min(m_i))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(slices: &[(u64, u64)]) -> u64 {
        slices.iter().map(|&(m, _)| m).sum()
    }

    #[test]
    fn slices_conserve_the_pool_exactly() {
        for pool in [0u64, 1, 5, 7, 48, 1000] {
            for k in [1usize, 2, 3, 8] {
                let s = slices(pool, 4, k, &vec![false; k]);
                assert_eq!(total(&s), pool, "pool={pool} k={k}");
            }
        }
    }

    #[test]
    fn pending_shards_receive_remainder_first() {
        // pool=5, k=4: base 1, remainder 1 goes to the pending shard 2.
        let s = slices(5, 4, 4, &[false, false, true, false]);
        assert_eq!(s.iter().map(|&(m, _)| m).collect::<Vec<_>>(), [1, 1, 2, 1]);
        // With a starved pool the pending shards get the only permits.
        let s = slices(2, 4, 4, &[false, true, false, true]);
        assert_eq!(s.iter().map(|&(m, _)| m).collect::<Vec<_>>(), [0, 1, 0, 1]);
    }

    #[test]
    fn waste_bounds_stay_within_params_constraints() {
        // Params requires 1 <= w_i <= m_i for every non-empty slice.
        for pool in [1u64, 3, 9, 100] {
            for w in [1u64, 2, 64] {
                let s = slices(pool, w, 4, &[true, false, true, false]);
                for &(m_i, w_i) in &s {
                    if m_i == 0 {
                        assert_eq!(w_i, 0);
                    } else {
                        assert!((1..=m_i).contains(&w_i), "m_i={m_i} w_i={w_i}");
                    }
                }
            }
        }
    }

    #[test]
    fn empty_pool_yields_all_empty_slices() {
        assert_eq!(slices(0, 8, 3, &[true, true, true]), [(0, 0); 3]);
    }
}

//! The sharded (M, W)-controller: k independent per-region distributed
//! controllers federated by a cross-shard permit exchange.
//!
//! The paper's AAPS bin hierarchy and iterated construction already describe a
//! federation scheme — bins hold budget slices and rebalance them in charged
//! exchange waves — and [`ShardedController`] applies it to whole controllers:
//!
//! 1. the spanning tree is carved into `k` regions behind the
//!    [`RegionMap`] addressing seam (global `NodeId` →
//!    `(shard, local NodeId)`);
//! 2. each region runs its own
//!    [`DistributedController`]
//!    over its own simulated network, granting locally against a budget slice
//!    `(M_i, W_i)` with `Σ M_i ≤ M`; with more than one shard, execution
//!    slices run on one worker thread per shard
//!    ([`std::thread::scope`] — results are merged in shard order, so output
//!    is byte-identical however the threads interleave);
//! 3. a shard that exhausts its slice *parks* the rejected ticket instead of
//!    surfacing the rejection; once every shard is quiescent a deterministic
//!    **exchange wave** recomputes all slices from the unspent global pool
//!    (`M − Σ granted`, requesters first — see the `exchange` submodule) and
//!    resubmits
//!    the parked tickets. Only when the pool itself is empty are rejections
//!    surfaced globally, so the federation preserves the paper's liveness
//!    shape: a surfaced rejection implies `granted == M ≥ M − W`.
//!
//! Each wave is charged `k` messages (one slice announcement per shard) in
//! [`Controller::metrics`], the `O(k)` exchange cost of the bin hierarchy.
//!
//! With `k = 1` the controller is a strict pass-through: same tree, same
//! seed, same `U` bound, no rejection interception — records, events and
//! metrics are identical to driving the distributed family directly (a
//! property test in dcn-bench pins this). Shard seeds for `k ≥ 2` are derived
//! family-blind (`split_mix64(seed ^ split_mix64(shard))`), so results never
//! depend on worker-thread count or scheduling.
//!
//! DESIGN.md §10 documents the addressing scheme, the wave protocol and the
//! global-invariant argument.

pub(crate) mod exchange;

use crate::api::{Controller, ControllerEvent, ControllerMetrics, Progress};
use crate::distributed::DistributedController;
use crate::request::{Outcome, RequestId, RequestKind, RequestRecord};
use crate::verify::ExecutionSummary;
use crate::ControllerError;
use dcn_collections::SecondaryMap;
use dcn_rng::split_mix64;
use dcn_simnet::SimConfig;
use dcn_tree::{DynamicTree, LocalMap, NodeId, RegionMap, TopologyEvent};

/// Execution slices at least this large are worth fanning out to the
/// per-shard worker threads; smaller slices run the shards sequentially
/// (identical results — threading is purely a wall-clock optimisation).
const THREAD_SLICE_FLOOR: u64 = 256;

/// Safety valve: consecutive exchange waves without a single grant before the
/// controller reports a livelock instead of spinning.
const MAX_BARREN_WAVES: u64 = 8;

/// Per-ticket routing and bookkeeping state (dense by global ticket id).
#[derive(Clone, Copy, Debug)]
struct Ticket {
    /// Global node the request arrived at.
    origin: NodeId,
    /// Global request kind.
    kind: RequestKind,
    /// Shard the request is routed to (fixed: regions never migrate).
    shard: u32,
    /// Global virtual time of the first submission (preserved across
    /// exchange-wave resubmissions).
    submitted_at: u64,
}

/// One shard: an optional live controller (absent while its slice is empty),
/// its address map, and accumulators carried across exchange epochs.
#[derive(Debug)]
struct Shard {
    /// The live controller for the current epoch, if the slice is non-empty.
    ctrl: Option<DistributedController>,
    /// The region tree, parked here whenever `ctrl` is `None`.
    parked: Option<DynamicTree>,
    /// Local → global address map for this region.
    map: LocalMap,
    /// Base seed for this shard; per-epoch seeds are derived from it.
    seed: u64,
    /// Replay cursor into the region tree's change log.
    log_cursor: usize,
    /// Collection cursor into the current controller's records.
    rec_cursor: usize,
    /// Global ticket id per local ticket id of the current epoch.
    ticket_of_local: Vec<u64>,
    /// Virtual time accumulated by retired epochs.
    time_base: u64,
    /// Agent hops accumulated by retired epochs.
    hops_base: u64,
    /// Messages accumulated by retired epochs.
    msgs_base: u64,
    /// Peak per-node memory over retired epochs.
    peak_mem: u64,
    /// Result of the last parallel execution slice, harvested in shard order.
    step_out: Option<Result<Progress, ControllerError>>,
}

impl Shard {
    /// The shard's current virtual time on the global clock.
    fn now(&self) -> u64 {
        self.time_base + self.ctrl.as_ref().map_or(0, |c| c.sim().time())
    }

    /// Immutable view of the region tree, live or parked.
    fn tree(&self) -> &DynamicTree {
        match &self.ctrl {
            Some(c) => c.tree(),
            // lint: allow(unwrap) exactly one of ctrl/parked is always Some
            None => self.parked.as_ref().unwrap(),
        }
    }
}

/// A federation of per-region distributed controllers behind the single
/// [`Controller`] interface (see the [module docs](self)).
///
/// ```
/// use dcn_controller::sharded::ShardedController;
/// use dcn_controller::{Controller, RequestKind};
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(15);
/// let mut ctrl = ShardedController::new(SimConfig::new(7), tree, 8, 4, 64, 4)?;
/// let leaves: Vec<_> = ctrl.tree().nodes().skip(1).take(4).collect();
/// for leaf in leaves {
///     ctrl.submit(leaf, RequestKind::AddLeaf)?;
/// }
/// ctrl.run_to_quiescence()?;
/// assert_eq!(ctrl.granted(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedController {
    k: usize,
    m: u64,
    w: u64,
    /// Authoritative global tree: submit-time validation runs against it and
    /// per-shard change logs are replayed into it in shard order.
    mirror: DynamicTree,
    map: RegionMap,
    shards: Vec<Shard>,
    tickets: Vec<Ticket>,
    records: Vec<RequestRecord>,
    index: SecondaryMap<RequestId, usize>,
    events: Vec<ControllerEvent>,
    /// Parked tickets awaiting the next exchange wave (FIFO).
    pending: Vec<u64>,
    granted_total: u64,
    rejected_total: u64,
    epoch: u64,
    waves: u64,
    exchange_messages: u64,
    barren_waves: u64,
    /// The caller's simulator configuration; per-shard configs reuse its
    /// delay model and event valve with derived seeds.
    base_config: SimConfig,
}

impl ShardedController {
    /// Creates a sharded (m, w)-controller over `tree`, carved into `shards`
    /// regions. `config.seed` seeds shard 0 directly and every further shard
    /// through one `split_mix64` derivation; `u_bound` is the global bound on
    /// nodes ever to exist (passed through verbatim when `shards == 1`).
    ///
    /// # Errors
    ///
    /// Same parameter validation as
    /// [`DistributedController::new`], plus `shards ≥ 1`.
    pub fn new(
        config: SimConfig,
        tree: DynamicTree,
        m: u64,
        w: u64,
        u_bound: usize,
        shards: usize,
    ) -> Result<Self, ControllerError> {
        if shards == 0 {
            return Err(ControllerError::Sim(
                "shard count must be at least 1".to_string(),
            ));
        }
        if u_bound < tree.node_count() {
            return Err(ControllerError::BoundTooSmall {
                u: u_bound,
                nodes: tree.node_count(),
            });
        }
        // Validate (m, w) once globally, before slicing.
        crate::params::Params::new(m, w, u_bound as u64)?;

        let mut shard_vec = Vec::with_capacity(shards);
        let (mirror, map) = if shards == 1 {
            // Strict pass-through: the single shard owns the caller's tree,
            // seed and bound unchanged.
            let mirror = tree.clone();
            let map = RegionMap::identity(&tree);
            let local = LocalMap::identity(&tree);
            let log_cursor = tree.change_log().len();
            let ctrl = DistributedController::new(config, tree, m, w, u_bound)?;
            shard_vec.push(Shard {
                ctrl: Some(ctrl),
                parked: None,
                map: local,
                seed: config.seed,
                log_cursor,
                rec_cursor: 0,
                ticket_of_local: Vec::new(),
                time_base: 0,
                hops_base: 0,
                msgs_base: 0,
                peak_mem: 0,
                step_out: None,
            });
            (mirror, map)
        } else {
            let (map, regions) = RegionMap::carve(&tree, shards);
            let slices = exchange::slices(m, w, shards, &vec![false; shards]);
            for (i, region) in regions.into_iter().enumerate() {
                let seed = split_mix64(config.seed ^ split_mix64(i as u64));
                let (m_i, w_i) = slices[i];
                let mut shard = Shard {
                    ctrl: None,
                    parked: Some(region.tree),
                    map: region.map,
                    seed,
                    log_cursor: 0,
                    rec_cursor: 0,
                    ticket_of_local: Vec::new(),
                    time_base: 0,
                    hops_base: 0,
                    msgs_base: 0,
                    peak_mem: 0,
                    step_out: None,
                };
                if m_i > 0 {
                    shard.build_ctrl(&config, seed, m_i, w_i)?;
                }
                shard_vec.push(shard);
            }
            (tree, map)
        };
        Ok(ShardedController {
            k: shards,
            m,
            w,
            mirror,
            map,
            shards: shard_vec,
            tickets: Vec::new(),
            records: Vec::new(),
            index: SecondaryMap::new(),
            events: Vec::new(),
            pending: Vec::new(),
            granted_total: 0,
            rejected_total: 0,
            epoch: 0,
            waves: 0,
            exchange_messages: 0,
            barren_waves: 0,
            base_config: config,
        })
    }

    /// Number of shards (regions) the controller runs.
    pub fn shard_count(&self) -> usize {
        self.k
    }

    /// Number of exchange waves run so far.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Messages charged to the permit exchange so far (`k` per wave).
    pub fn exchange_messages(&self) -> u64 {
        self.exchange_messages
    }

    /// Number of requests submitted so far.
    pub fn submitted(&self) -> u64 {
        self.tickets.len() as u64
    }

    /// A correctness summary of the execution so far, aggregated across
    /// shards (see [`ExecutionSummary`]).
    pub fn summary(&self) -> ExecutionSummary {
        let refused = self
            .records
            .iter()
            .filter(|r| r.outcome.is_refused())
            .count() as u64;
        ExecutionSummary {
            m: self.m,
            w: self.w,
            granted: self.granted_total,
            rejected: self.rejected_total,
            unanswered: self.submitted() - refused - self.granted_total - self.rejected_total,
        }
    }

    /// Validates a request against the global mirror (the same three checks
    /// as [`DistributedController::submit`]).
    fn validate(&self, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
        if !self.mirror.contains(at) {
            return Err(ControllerError::UnknownNode(at));
        }
        match kind {
            RequestKind::AddInternalAbove(child) if self.mirror.parent(child) != Some(at) => {
                Err(ControllerError::NotParentOf { at, child })
            }
            RequestKind::RemoveSelf if at == self.mirror.root() => {
                Err(ControllerError::CannotRemoveRoot)
            }
            _ => Ok(()),
        }
    }

    /// Translates a validated global request into its shard-local form:
    /// `(shard, local arrival node, local kind)`.
    fn route(
        &self,
        at: NodeId,
        kind: RequestKind,
    ) -> Result<(usize, NodeId, RequestKind), ControllerError> {
        let unmapped = |node: NodeId| ControllerError::Sim(format!("node {node} has no shard"));
        match kind {
            RequestKind::AddInternalAbove(child) => {
                // Route to the child's shard; locally the request arrives at
                // the child's local parent (a mapped node when the edge is
                // region-internal, the proxy root when `at` lives elsewhere).
                let (shard, lchild) = self.map.locate(child).ok_or(unmapped(child))?;
                let lat = self.shards[shard]
                    .tree()
                    .parent(lchild)
                    .ok_or_else(|| unmapped(child))?;
                Ok((shard, lat, RequestKind::AddInternalAbove(lchild)))
            }
            _ => {
                let (shard, lat) = self.map.locate(at).ok_or(unmapped(at))?;
                Ok((shard, lat, kind))
            }
        }
    }

    /// Hands a routed ticket to its shard's live controller, or parks it for
    /// the next exchange wave when the shard currently has no slice.
    fn dispatch(
        &mut self,
        gid: u64,
        shard: usize,
        lat: NodeId,
        lkind: RequestKind,
    ) -> Result<(), ControllerError> {
        let sh = &mut self.shards[shard];
        match sh.ctrl.as_mut() {
            Some(ctrl) => {
                let lid = ctrl.submit(lat, lkind)?;
                debug_assert_eq!(lid.0 as usize, sh.ticket_of_local.len());
                sh.ticket_of_local.push(gid);
            }
            None => self.pending.push(gid),
        }
        Ok(())
    }

    /// Submits a request arriving at global node `at` (see
    /// [`Controller::submit`]).
    ///
    /// # Errors
    ///
    /// Same validation errors as [`DistributedController::submit`].
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.validate(at, kind)?;
        let (shard, lat, lkind) = self.route(at, kind)?;
        let gid = self.tickets.len() as u64;
        self.tickets.push(Ticket {
            origin: at,
            kind,
            shard: shard as u32,
            submitted_at: self.shards[shard].now(),
        });
        self.dispatch(gid, shard, lat, lkind)?;
        Ok(RequestId(gid))
    }

    /// Appends a globally resolved record: translates bookkeeping, updates
    /// the grant/reject totals and emits the per-request events.
    fn resolve(&mut self, gid: u64, outcome: Outcome, answered_at: u64) {
        let t = self.tickets[gid as usize];
        match outcome {
            Outcome::Granted { .. } => {
                self.granted_total += 1;
                self.barren_waves = 0;
            }
            Outcome::Rejected => self.rejected_total += 1,
            Outcome::Refused => {}
        }
        let record = RequestRecord {
            id: RequestId(gid),
            origin: t.origin,
            kind: t.kind,
            outcome,
            submitted_at: t.submitted_at,
            answered_at,
        };
        ControllerEvent::push_for_record(&record, &mut self.events);
        self.index.insert(record.id, self.records.len());
        self.records.push(record);
    }

    /// Replays shard `i`'s fresh change-log entries into the global mirror
    /// (in log order) and translates its fresh records into global ones.
    /// Called in ascending shard order after every execution slice, which
    /// fixes the global interleaving independently of thread scheduling.
    fn collect_shard(&mut self, i: usize) -> Result<(), ControllerError> {
        let corrupt = || ControllerError::Sim("shard address maps out of sync".to_string());
        // Phase 1: replay topology changes, learning new node addresses.
        {
            let sh = &mut self.shards[i];
            let Some(ctrl) = sh.ctrl.as_ref() else {
                return Ok(());
            };
            let log = ctrl.tree().change_log();
            for entry in log.iter().skip(sh.log_cursor) {
                match entry.event {
                    TopologyEvent::AddLeaf { parent, child } => {
                        let gparent = sh.map.to_global(parent).ok_or_else(corrupt)?;
                        let gchild = self
                            .mirror
                            .add_leaf(gparent)
                            .map_err(ControllerError::Tree)?;
                        sh.map.bind(child, gchild);
                        self.map.bind(gchild, i, child);
                    }
                    TopologyEvent::AddInternal { node, below, .. } => {
                        let gbelow = sh.map.to_global(below).ok_or_else(corrupt)?;
                        let gnode = self
                            .mirror
                            .add_internal_above(gbelow)
                            .map_err(ControllerError::Tree)?;
                        sh.map.bind(node, gnode);
                        self.map.bind(gnode, i, node);
                    }
                    TopologyEvent::RemoveLeaf { node, .. }
                    | TopologyEvent::RemoveInternal { node, .. } => {
                        // A locally-leaf node may be internal globally (its
                        // global children can live in other regions), so the
                        // mirror uses the generic dispatching removal.
                        let gnode = sh.map.to_global(node).ok_or_else(corrupt)?;
                        self.mirror.remove(gnode).map_err(ControllerError::Tree)?;
                    }
                    // The controller protocol never touches non-tree edges.
                    TopologyEvent::AddNonTreeEdge { .. }
                    | TopologyEvent::RemoveNonTreeEdge { .. } => {}
                }
            }
            sh.log_cursor = log.len();
        }
        // Phase 2: translate fresh records. Local rejections are intercepted
        // and parked for the exchange wave (k ≥ 2 only — with one shard the
        // slice IS the global budget and the rejection is final).
        let sh = &self.shards[i];
        // lint: allow(unwrap) phase 1 returned early when ctrl is None
        let ctrl = sh.ctrl.as_ref().unwrap();
        let fresh: Vec<RequestRecord> = ctrl.records()[sh.rec_cursor..].to_vec();
        let time_base = sh.time_base;
        self.shards[i].rec_cursor += fresh.len();
        for r in fresh {
            let gid = self.shards[i]
                .ticket_of_local
                .get(r.id.0 as usize)
                .copied()
                .ok_or_else(corrupt)?;
            match r.outcome {
                Outcome::Rejected if self.k > 1 => self.pending.push(gid),
                Outcome::Granted { serial, new_node } => {
                    let gnew = new_node.and_then(|l| self.shards[i].map.to_global(l));
                    let outcome = Outcome::Granted {
                        serial,
                        new_node: gnew,
                    };
                    self.resolve(gid, outcome, time_base + r.answered_at);
                }
                outcome => self.resolve(gid, outcome, time_base + r.answered_at),
            }
        }
        Ok(())
    }

    /// Runs one exchange wave at a global quiescence point: recomputes every
    /// slice from the unspent pool (requesters first), rebuilds the shard
    /// controllers on fresh epoch seeds, and resubmits the parked tickets —
    /// or surfaces them as rejections once the pool is empty. Charged `k`
    /// messages.
    fn exchange_wave(&mut self) -> Result<(), ControllerError> {
        self.waves += 1;
        self.exchange_messages += self.k as u64;
        let pool = self.m - self.granted_total;
        if pool == 0 {
            // The global budget is spent: every parked ticket is rejected.
            // Liveness holds trivially — granted == M ≥ M − W.
            for gid in std::mem::take(&mut self.pending) {
                let at = self.shards[self.tickets[gid as usize].shard as usize].now();
                self.resolve(gid, Outcome::Rejected, at);
            }
            return Ok(());
        }
        self.barren_waves += 1;
        if self.barren_waves > self.k as u64 + MAX_BARREN_WAVES {
            return Err(ControllerError::Sim(format!(
                "cross-shard permit exchange stalled: {} waves without a grant",
                self.barren_waves
            )));
        }
        self.epoch += 1;
        let mut wants = vec![false; self.k];
        for &gid in &self.pending {
            wants[self.tickets[gid as usize].shard as usize] = true;
        }
        let slices = exchange::slices(pool, self.w, self.k, &wants);
        let base_config = self.base_config;
        let epoch = self.epoch;
        for (i, sh) in self.shards.iter_mut().enumerate() {
            // Retire the current epoch's controller into the accumulators.
            if let Some(ctrl) = sh.ctrl.take() {
                sh.time_base += ctrl.sim().time();
                sh.hops_base += ctrl.metrics().agent_hops;
                sh.msgs_base += ctrl.messages();
                sh.peak_mem = sh.peak_mem.max(ctrl.peak_node_memory_bits());
                sh.parked = Some(ctrl.into_tree());
            }
            sh.ticket_of_local.clear();
            sh.rec_cursor = 0;
            let (m_i, w_i) = slices[i];
            if m_i > 0 {
                let seed = split_mix64(sh.seed ^ split_mix64(epoch));
                sh.build_ctrl(&base_config, seed, m_i, w_i)?;
            }
        }
        // Resubmit parked tickets in arrival order; shards still without a
        // slice keep theirs parked for the next wave.
        for gid in std::mem::take(&mut self.pending) {
            let t = self.tickets[gid as usize];
            if self.validate(t.origin, t.kind).is_err() {
                // The wave outlived the request's target (e.g. the node was
                // removed by a grant while the ticket was parked): outside
                // the dynamic model by the time it could run, so it is
                // refused — no permit is consumed, liveness is untouched.
                let at = self.shards[t.shard as usize].now();
                self.resolve(gid, Outcome::Refused, at);
                continue;
            }
            let (shard, lat, lkind) = self.route(t.origin, t.kind)?;
            debug_assert_eq!(shard as u32, t.shard);
            self.dispatch(gid, shard, lat, lkind)?;
        }
        Ok(())
    }

    /// Advances every shard by an equal share of `budget` (on worker threads
    /// when the share is large enough to pay for the spawn), then merges
    /// results in shard order and runs an exchange wave if the federation is
    /// quiescent with parked tickets (see [`Controller::step`]).
    ///
    /// # Errors
    ///
    /// Propagates shard simulator errors (first shard wins) and exchange
    /// livelock errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        if self.k == 1 {
            // lint: allow(unwrap) the single shard always has a controller
            let progress = self.shards[0].ctrl.as_mut().unwrap().step(budget)?;
            self.collect_shard(0)?;
            return Ok(progress);
        }
        let slice = (budget / self.k as u64).max(1);
        if slice >= THREAD_SLICE_FLOOR {
            std::thread::scope(|scope| {
                for sh in self.shards.iter_mut() {
                    if sh.ctrl.is_some() {
                        scope.spawn(move || {
                            sh.step_out = sh.ctrl.as_mut().map(|c| c.step(slice));
                        });
                    }
                }
            });
        } else {
            for sh in self.shards.iter_mut() {
                sh.step_out = sh.ctrl.as_mut().map(|c| c.step(slice));
            }
        }
        let mut processed = 0;
        for i in 0..self.k {
            if let Some(result) = self.shards[i].step_out.take() {
                processed += result?.processed;
            }
            self.collect_shard(i)?;
        }
        let all_quiescent = self
            .shards
            .iter()
            .all(|sh| sh.ctrl.as_ref().map_or(true, |c| c.sim().is_quiescent()));
        if all_quiescent && !self.pending.is_empty() {
            self.exchange_wave()?;
        }
        let quiescent = self.pending.is_empty()
            && self
                .shards
                .iter()
                .all(|sh| sh.ctrl.as_ref().map_or(true, |c| c.sim().is_quiescent()));
        Ok(Progress {
            processed,
            quiescent,
        })
    }

    /// Runs until every shard is quiescent and no tickets are parked (see
    /// [`Controller::run_to_quiescence`]).
    ///
    /// # Errors
    ///
    /// Same as [`ShardedController::step`].
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        loop {
            let progress = self.step(self.base_config.max_events)?;
            if progress.quiescent {
                return Ok(());
            }
        }
    }

    /// Removes and returns the per-request events produced since the last
    /// drain, in answer order.
    pub fn drain_events(&mut self) -> Vec<ControllerEvent> {
        std::mem::take(&mut self.events)
    }

    /// All globally resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The outcome of a specific ticket, if it has been answered.
    pub fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.index.get(id).map(|&i| self.records[i].outcome)
    }

    /// Permits granted across all shards.
    pub fn granted(&self) -> u64 {
        self.granted_total
    }

    /// Requests rejected globally (surfaced rejections only — locally parked
    /// rejections that a later wave turns into grants never count).
    pub fn rejected(&self) -> u64 {
        self.rejected_total
    }

    /// The global spanning tree (the mirror every shard's changes replay
    /// into).
    pub fn tree(&self) -> &DynamicTree {
        &self.mirror
    }

    /// Aggregated cost counters (see [`Controller::metrics`]): sums over all
    /// shard epochs, plus `k` messages per exchange wave.
    pub fn metrics(&self) -> ControllerMetrics {
        let mut moves = 0;
        let mut messages = self.exchange_messages;
        let mut peak = 0;
        for sh in &self.shards {
            moves += sh.hops_base;
            messages += sh.msgs_base;
            peak = peak.max(sh.peak_mem);
            if let Some(ctrl) = sh.ctrl.as_ref() {
                moves += ctrl.metrics().agent_hops;
                messages += ctrl.messages();
                peak = peak.max(ctrl.peak_node_memory_bits());
            }
        }
        ControllerMetrics {
            moves,
            messages,
            peak_node_memory_bits: peak,
        }
    }
}

impl Shard {
    /// Builds this shard's controller for a new epoch over the parked region
    /// tree, with slice `(m_i, w_i)` and the given epoch seed. The `U` bound
    /// is re-derived per epoch: current region nodes plus at most `m_i`
    /// insertions (one per granted permit) plus slack for the proxy root.
    fn build_ctrl(
        &mut self,
        base: &SimConfig,
        seed: u64,
        m_i: u64,
        w_i: u64,
    ) -> Result<(), ControllerError> {
        // lint: allow(unwrap) exactly one of ctrl/parked is always Some
        let tree = self.parked.take().unwrap();
        let u_bound = tree.node_count() + m_i as usize + 2;
        let config = SimConfig { seed, ..*base };
        self.ctrl = Some(DistributedController::new(config, tree, m_i, w_i, u_bound)?);
        Ok(())
    }
}

impl Controller for ShardedController {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn budget(&self) -> u64 {
        self.m
    }

    fn waste_bound(&self) -> u64 {
        self.w
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.submit(at, kind)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.run_to_quiescence()
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        self.step(budget)
    }

    fn drain_events(&mut self) -> Vec<ControllerEvent> {
        self.drain_events()
    }

    fn records(&self) -> &[RequestRecord] {
        self.records()
    }

    fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.outcome(id)
    }

    fn granted(&self) -> u64 {
        self.granted()
    }

    fn rejected(&self) -> u64 {
        self.rejected()
    }

    fn tree(&self) -> &DynamicTree {
        self.tree()
    }

    fn metrics(&self) -> ControllerMetrics {
        self.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_tree(extra: usize) -> DynamicTree {
        DynamicTree::with_initial_star(extra)
    }

    fn deep_tree(levels: usize, arity: usize) -> DynamicTree {
        let mut tree = DynamicTree::new();
        let mut frontier = vec![tree.root()];
        for _ in 0..levels {
            let mut next = Vec::new();
            for p in frontier {
                for _ in 0..arity {
                    next.push(tree.add_leaf(p).unwrap());
                }
            }
            frontier = next;
        }
        tree
    }

    /// Drives a controller with a deterministic mixed workload and returns
    /// its records.
    fn drive(ctrl: &mut dyn Controller, requests: usize) -> Vec<RequestRecord> {
        for i in 0..requests {
            let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
            let at = nodes[(i * 7 + 3) % nodes.len()];
            let kind = match i % 3 {
                0 => RequestKind::AddLeaf,
                1 => RequestKind::NonTopological,
                _ => RequestKind::AddLeaf,
            };
            ctrl.submit(at, kind).unwrap();
            if i % 5 == 4 {
                ctrl.step(64).unwrap();
            }
        }
        ctrl.run_to_quiescence().unwrap();
        ctrl.records().to_vec()
    }

    #[test]
    fn one_shard_is_a_strict_pass_through_of_the_distributed_family() {
        for seed in [1u64, 7, 42] {
            let mut plain =
                DistributedController::new(SimConfig::new(seed), deep_tree(3, 2), 24, 6, 120)
                    .unwrap();
            let mut sharded =
                ShardedController::new(SimConfig::new(seed), deep_tree(3, 2), 24, 6, 120, 1)
                    .unwrap();
            let a = drive(&mut plain, 18);
            let b = drive(&mut sharded, 18);
            assert_eq!(a, b, "seed={seed}");
            assert_eq!(
                Controller::metrics(&plain),
                ShardedController::metrics(&sharded)
            );
            assert_eq!(plain.granted(), sharded.granted());
            assert_eq!(plain.rejected(), sharded.rejected());
            // The mirror evolved through replay yet matches node for node.
            assert_eq!(
                plain.tree().node_count(),
                ShardedController::tree(&sharded).node_count()
            );
            for node in plain.tree().nodes() {
                assert_eq!(
                    plain.tree().parent(node),
                    ShardedController::tree(&sharded).parent(node)
                );
            }
        }
    }

    #[test]
    fn sharded_run_preserves_global_safety_and_liveness() {
        for k in [2usize, 3, 8] {
            let mut ctrl =
                ShardedController::new(SimConfig::new(11), deep_tree(3, 3), 10, 3, 400, k).unwrap();
            let records = drive(&mut ctrl, 30);
            assert_eq!(records.len(), 30, "k={k}: every ticket answered");
            let summary = ctrl.summary();
            assert!(summary.granted <= 10, "safety: {summary:?}");
            if summary.rejected > 0 {
                // Rejections only surface once the pool is spent.
                assert_eq!(summary.granted, 10, "liveness: {summary:?}");
            }
            assert_eq!(summary.unanswered, 0);
            ctrl.tree().check_invariants().unwrap();
        }
    }

    #[test]
    fn exhaustion_triggers_exchange_waves_and_charges_o_k_messages() {
        // M = 4 permits over 2 shards, 12 add-leaf requests: the slices run
        // dry, waves rebalance, and the 8 surplus requests reject globally.
        let mut ctrl =
            ShardedController::new(SimConfig::new(5), star_tree(11), 4, 2, 200, 2).unwrap();
        let nodes: Vec<NodeId> = ShardedController::tree(&ctrl).nodes().skip(1).collect();
        for i in 0..12 {
            ctrl.submit(nodes[i % nodes.len()], RequestKind::AddLeaf)
                .unwrap();
        }
        ctrl.run_to_quiescence().unwrap();
        assert_eq!(ctrl.granted(), 4);
        assert_eq!(ctrl.rejected(), 8);
        assert!(ctrl.waves() >= 1, "exchange waves ran");
        assert_eq!(ctrl.exchange_messages(), ctrl.waves() * 2);
        // The charged wave cost is part of the uniform metrics.
        let without_waves: u64 = ShardedController::metrics(&ctrl).messages;
        assert!(without_waves >= ctrl.exchange_messages());
    }

    #[test]
    fn sharded_output_is_independent_of_thread_interleaving() {
        // Identical runs (same seed) must produce identical records and
        // events whether slices are large (threaded) or small (sequential).
        let run = |quantum: u64| {
            let mut ctrl =
                ShardedController::new(SimConfig::new(23), deep_tree(4, 2), 16, 4, 300, 4).unwrap();
            let nodes: Vec<NodeId> = ShardedController::tree(&ctrl).nodes().collect();
            for i in 0..20 {
                ctrl.submit(
                    nodes[(i * 5 + 1) % nodes.len()],
                    RequestKind::NonTopological,
                )
                .unwrap();
                ctrl.step(quantum).unwrap();
            }
            ctrl.run_to_quiescence().unwrap();
            ctrl.records().to_vec()
        };
        // 4 shards: quantum 64 -> slice 16 (sequential); 4096 -> 1024 (threads).
        assert_eq!(run(64), run(64));
        let seq: Vec<RequestId> = run(64).iter().map(|r| r.id).collect();
        let par: Vec<RequestId> = run(4096).iter().map(|r| r.id).collect();
        assert_eq!(seq.len(), par.len());
    }

    #[test]
    fn cross_region_add_internal_routes_through_the_proxy() {
        // A deep path tree carved into 2 shards guarantees a cross-region
        // parent edge somewhere along the path.
        let mut tree = DynamicTree::new();
        let mut prev = tree.root();
        let mut chain = vec![prev];
        for _ in 0..16 {
            prev = tree.add_leaf(prev).unwrap();
            chain.push(prev);
        }
        let mut ctrl = ShardedController::new(SimConfig::new(3), tree, 8, 2, 200, 2).unwrap();
        // Submit AddInternalAbove for every parent/child pair on the path;
        // at least one pair straddles the region boundary.
        for pair in chain.windows(2).take(6) {
            ctrl.submit(pair[0], RequestKind::AddInternalAbove(pair[1]))
                .unwrap();
        }
        ctrl.run_to_quiescence().unwrap();
        assert_eq!(ctrl.granted(), 6);
        ctrl.tree().check_invariants().unwrap();
        // Every new internal node took effect on the global mirror.
        assert_eq!(ShardedController::tree(&ctrl).node_count(), 17 + 6);
    }

    #[test]
    fn zero_shards_and_bad_params_are_rejected() {
        assert!(ShardedController::new(SimConfig::new(0), star_tree(3), 8, 4, 64, 0).is_err());
        assert!(ShardedController::new(SimConfig::new(0), star_tree(3), 4, 8, 64, 2).is_err());
        assert!(ShardedController::new(SimConfig::new(0), star_tree(3), 8, 4, 1, 2).is_err());
    }
}

//! Safety / liveness / waste checkers shared by tests, property tests and the
//! experiment harness.
//!
//! The correctness conditions of an (M, W)-Controller (§2.2):
//!
//! * **Safety** — the total number of granted permits is at most `M`;
//! * **Liveness** — every request is answered, and if any request is
//!   rejected, the number of permits eventually granted is at least `M − W`.
//!
//! In a finished (quiescent) execution "eventually" has already happened, so
//! both conditions become simple arithmetic over the execution summary.

/// Summary of one finished controller execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutionSummary {
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W`.
    pub w: u64,
    /// Number of requests granted a permit.
    pub granted: u64,
    /// Number of requests rejected.
    pub rejected: u64,
    /// Number of requests submitted that never received an answer (must be 0
    /// in a quiescent execution).
    pub unanswered: u64,
}

/// A violated correctness condition.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// More than `M` permits were granted.
    Safety {
        /// Permits granted.
        granted: u64,
        /// The budget that was exceeded.
        m: u64,
    },
    /// A request was rejected even though fewer than `M − W` permits were
    /// granted.
    Liveness {
        /// Permits granted.
        granted: u64,
        /// The minimum required once a reject is issued.
        required: u64,
    },
    /// Some requests never received an answer.
    Unanswered {
        /// Number of unanswered requests.
        count: u64,
    },
    /// More answers than requests: `granted + rejected` exceeds the number of
    /// submitted requests. Either a controller answered a request twice or a
    /// driver lost count — both are accounting bugs that would otherwise hide
    /// behind a saturating `unanswered = submitted − answered` computation.
    OverAnswered {
        /// Permits granted.
        granted: u64,
        /// Requests rejected.
        rejected: u64,
        /// Requests actually submitted.
        submitted: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Safety { granted, m } => {
                write!(f, "safety violated: granted {granted} permits with budget M={m}")
            }
            Violation::Liveness { granted, required } => write!(
                f,
                "liveness violated: a request was rejected but only {granted} permits were granted (need at least {required})"
            ),
            Violation::Unanswered { count } => {
                write!(f, "{count} requests never received an answer")
            }
            Violation::OverAnswered {
                granted,
                rejected,
                submitted,
            } => write!(
                f,
                "accounting violated: {granted} grants + {rejected} rejects exceed the {submitted} submitted requests"
            ),
        }
    }
}

impl ExecutionSummary {
    /// Checks the (M, W)-Controller correctness conditions over this summary.
    ///
    /// # Errors
    ///
    /// Returns the first violated condition.
    pub fn check(&self) -> Result<(), Violation> {
        if self.unanswered > 0 {
            return Err(Violation::Unanswered {
                count: self.unanswered,
            });
        }
        if self.granted > self.m {
            return Err(Violation::Safety {
                granted: self.granted,
                m: self.m,
            });
        }
        if self.rejected > 0 {
            let required = self.m.saturating_sub(self.w);
            if self.granted < required {
                return Err(Violation::Liveness {
                    granted: self.granted,
                    required,
                });
            }
        }
        Ok(())
    }

    /// The "waste": permits that were neither granted nor can ever be (only
    /// meaningful once a reject has been issued).
    pub fn waste(&self) -> u64 {
        self.m.saturating_sub(self.granted)
    }
}

/// Convenience: checks a summary and panics with a readable message on
/// violation (for use inside tests).
///
/// # Panics
///
/// Panics if a correctness condition is violated.
pub fn assert_correct(summary: &ExecutionSummary) {
    if let Err(v) = summary.check() {
        panic!("controller correctness violated: {v} ({summary:?})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_when_no_reject_and_under_budget() {
        let s = ExecutionSummary {
            m: 10,
            w: 3,
            granted: 4,
            rejected: 0,
            unanswered: 0,
        };
        assert!(s.check().is_ok());
        assert_eq!(s.waste(), 6);
    }

    #[test]
    fn safety_violation_detected() {
        let s = ExecutionSummary {
            m: 10,
            w: 3,
            granted: 11,
            rejected: 0,
            unanswered: 0,
        };
        assert!(matches!(s.check(), Err(Violation::Safety { .. })));
    }

    #[test]
    fn liveness_violation_detected() {
        let s = ExecutionSummary {
            m: 10,
            w: 3,
            granted: 5,
            rejected: 1,
            unanswered: 0,
        };
        assert!(matches!(s.check(), Err(Violation::Liveness { .. })));
    }

    #[test]
    fn liveness_satisfied_at_exact_boundary() {
        let s = ExecutionSummary {
            m: 10,
            w: 3,
            granted: 7,
            rejected: 5,
            unanswered: 0,
        };
        assert!(s.check().is_ok());
    }

    #[test]
    fn unanswered_requests_detected() {
        let s = ExecutionSummary {
            m: 10,
            w: 3,
            granted: 7,
            rejected: 0,
            unanswered: 2,
        };
        assert!(matches!(s.check(), Err(Violation::Unanswered { .. })));
    }

    #[test]
    fn violations_display_readably() {
        let v = Violation::Safety { granted: 11, m: 10 };
        assert!(v.to_string().contains("safety"));
        let v = Violation::Liveness {
            granted: 3,
            required: 7,
        };
        assert!(v.to_string().contains("liveness"));
        let v = Violation::OverAnswered {
            granted: 6,
            rejected: 5,
            submitted: 10,
        };
        assert!(v.to_string().contains("accounting"));
    }
}

//! Integration tests for the centralized controllers (§3).

use dcn_controller::centralized::{
    AdaptiveController, CentralizedController, IteratedController, RefreshPolicy,
    TerminatingController,
};
use dcn_controller::verify::ExecutionSummary;
use dcn_controller::{ControllerError, Outcome, PermitInterval, RequestKind};
use dcn_tree::{DynamicTree, NodeId};

fn deepest(tree: &DynamicTree) -> NodeId {
    tree.nodes()
        .max_by_key(|&n| tree.depth(n))
        .expect("tree is non-empty")
}

#[test]
fn grants_until_budget_then_rejects_and_liveness_holds() {
    let tree = DynamicTree::with_initial_star(31);
    let m = 10;
    let w = 4;
    let mut ctrl = CentralizedController::new(tree, m, w, 128).unwrap();
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    let mut granted = 0;
    let mut rejected = 0;
    for i in 0..40 {
        let at = nodes[i % nodes.len()];
        match ctrl.submit(at, RequestKind::NonTopological).unwrap() {
            Outcome::Granted { .. } => granted += 1,
            Outcome::Rejected => rejected += 1,
            Outcome::Refused => unreachable!("core families never refuse"),
        }
    }
    assert_eq!(granted, ctrl.granted());
    assert_eq!(rejected, ctrl.rejected());
    assert!(rejected > 0, "the budget must run out over 40 requests");
    ExecutionSummary {
        m,
        w,
        granted,
        rejected,
        unanswered: 0,
    }
    .check()
    .unwrap();
}

#[test]
fn requests_near_the_root_are_cheap_and_deep_requests_cost_more() {
    let tree = DynamicTree::with_initial_path(200);
    let mut ctrl = CentralizedController::new(tree, 100, 50, 512).unwrap();
    let root = ctrl.tree().root();
    ctrl.submit(root, RequestKind::NonTopological).unwrap();
    let cheap = ctrl.moves();
    let deep = deepest(ctrl.tree());
    ctrl.submit(deep, RequestKind::NonTopological).unwrap();
    let expensive = ctrl.moves() - cheap;
    assert!(
        expensive > cheap,
        "deep requests should move permits farther"
    );
}

#[test]
fn topological_requests_change_the_tree() {
    let tree = DynamicTree::with_initial_path(5);
    let mut ctrl = CentralizedController::new(tree, 50, 10, 64).unwrap();
    let leaf = deepest(ctrl.tree());

    // Add a leaf below the deepest node.
    let out = ctrl.submit(leaf, RequestKind::AddLeaf).unwrap();
    let new_leaf = match out {
        Outcome::Granted { new_node, .. } => new_node.unwrap(),
        Outcome::Rejected | Outcome::Refused => panic!("request should be granted"),
    };
    assert_eq!(ctrl.tree().parent(new_leaf), Some(leaf));

    // Split the edge above the new leaf.
    let out = ctrl
        .submit(leaf, RequestKind::AddInternalAbove(new_leaf))
        .unwrap();
    let mid = match out {
        Outcome::Granted { new_node, .. } => new_node.unwrap(),
        Outcome::Rejected | Outcome::Refused => panic!("request should be granted"),
    };
    assert_eq!(ctrl.tree().parent(new_leaf), Some(mid));

    // Remove the internal node again.
    let out = ctrl.submit(mid, RequestKind::RemoveSelf).unwrap();
    assert!(out.is_granted());
    assert!(!ctrl.tree().contains(mid));
    assert_eq!(ctrl.tree().parent(new_leaf), Some(leaf));
    assert!(ctrl.tree().check_invariants().is_ok());
}

#[test]
fn removing_a_node_moves_its_packages_to_the_parent() {
    // A long path so that package deposits land on intermediate nodes.
    let tree = DynamicTree::with_initial_path(300);
    let mut ctrl = CentralizedController::new(tree, 1000, 500, 1024).unwrap();
    let deep = deepest(ctrl.tree());
    ctrl.submit(deep, RequestKind::NonTopological).unwrap();
    let parked_before = ctrl.permits_in_packages();
    assert!(
        parked_before > 0,
        "the distribution should leave packages behind"
    );
    // Delete a node in the middle of the path; no permits may be lost.
    let mid = ctrl
        .tree()
        .nodes()
        .find(|&n| ctrl.tree().depth(n) == 150)
        .unwrap();
    ctrl.submit(mid, RequestKind::RemoveSelf).unwrap();
    assert_eq!(
        ctrl.uncommitted_permits() + ctrl.granted(),
        1000,
        "permits are conserved across deletions"
    );
}

#[test]
fn validation_errors_are_reported() {
    let tree = DynamicTree::with_initial_path(3);
    let mut ctrl = CentralizedController::new(tree, 10, 5, 32).unwrap();
    let root = ctrl.tree().root();
    let ghost = NodeId::from_index(99);
    assert!(matches!(
        ctrl.submit(ghost, RequestKind::NonTopological),
        Err(ControllerError::UnknownNode(_))
    ));
    assert!(matches!(
        ctrl.submit(root, RequestKind::RemoveSelf),
        Err(ControllerError::CannotRemoveRoot)
    ));
    let leaf = deepest(ctrl.tree());
    assert!(matches!(
        ctrl.submit(root, RequestKind::AddInternalAbove(leaf)),
        Err(ControllerError::NotParentOf { .. })
    ));
    assert!(matches!(
        CentralizedController::new(DynamicTree::with_initial_star(10), 5, 0, 32),
        Err(ControllerError::ZeroWasteUnsupported)
    ));
    assert!(matches!(
        CentralizedController::new(DynamicTree::with_initial_star(10), 5, 6, 32),
        Err(ControllerError::WasteExceedsBudget { .. })
    ));
    assert!(matches!(
        CentralizedController::new(DynamicTree::with_initial_star(10), 5, 2, 3),
        Err(ControllerError::BoundTooSmall { .. })
    ));
}

#[test]
fn domain_invariants_hold_during_a_mixed_run() {
    let tree = DynamicTree::with_initial_path(120);
    let mut ctrl = CentralizedController::new(tree, 400, 200, 512)
        .unwrap()
        .with_auditor();
    for i in 0..60usize {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let at = nodes[(i * 7) % nodes.len()];
        let kind = match i % 4 {
            0 => RequestKind::AddLeaf,
            1 => RequestKind::NonTopological,
            2 if at != ctrl.tree().root() => RequestKind::RemoveSelf,
            _ => RequestKind::NonTopological,
        };
        let _ = ctrl.submit(at, kind).unwrap();
        ctrl.check_domain_invariants().unwrap();
    }
}

#[test]
fn interval_mode_reports_distinct_serials_within_budget() {
    let tree = DynamicTree::with_initial_star(20);
    let m = 16;
    let mut ctrl = CentralizedController::new(tree, m, 8, 64).unwrap();
    ctrl.set_storage_interval(PermitInterval::new(100, 100 + m - 1));
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    let mut serials = Vec::new();
    for i in 0..m as usize {
        match ctrl.submit(nodes[i % nodes.len()], RequestKind::NonTopological) {
            Ok(Outcome::Granted { serial, .. }) => serials.push(serial.unwrap()),
            Ok(Outcome::Rejected) => break,
            Ok(Outcome::Refused) => unreachable!("core families never refuse"),
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let mut sorted = serials.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), serials.len(), "serials must be unique");
    assert!(serials.iter().all(|&s| (100..100 + m).contains(&s)));
}

#[test]
fn iterated_controller_handles_zero_waste_exactly() {
    let tree = DynamicTree::with_initial_path(40);
    let m = 7;
    let mut ctrl = IteratedController::new(tree, m, 0, 256).unwrap();
    let mut granted = 0;
    for i in 0..30usize {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let at = nodes[(i * 11) % nodes.len()];
        if ctrl
            .submit(at, RequestKind::NonTopological)
            .unwrap()
            .is_granted()
        {
            granted += 1;
        }
    }
    assert_eq!(
        granted, m,
        "W = 0 means exactly M permits before any reject"
    );
    assert_eq!(ctrl.granted(), m);
    assert!(ctrl.is_exhausted());
}

#[test]
fn iterated_controller_uses_fewer_moves_than_single_shot_for_small_w() {
    // M much larger than W: the single-shot controller pays a factor M/W,
    // the iterated one only log(M/(W+1)).
    let m = 2_000;
    let w = 1;
    let build_tree = || DynamicTree::with_initial_path(60);
    let requests: Vec<usize> = (0..1200).map(|i| (i * 13) % 61).collect();

    let mut single = CentralizedController::new(build_tree(), m, w, 256).unwrap();
    for &d in &requests {
        let at = single
            .tree()
            .nodes()
            .find(|&n| single.tree().depth(n) == d)
            .unwrap();
        let _ = single.submit(at, RequestKind::NonTopological).unwrap();
    }

    let mut iterated = IteratedController::new(build_tree(), m, w, 256).unwrap();
    for &d in &requests {
        let at = iterated
            .tree()
            .nodes()
            .find(|&n| iterated.tree().depth(n) == d)
            .unwrap();
        let _ = iterated.submit(at, RequestKind::NonTopological).unwrap();
    }

    assert!(
        iterated.moves() <= single.moves(),
        "iterated controller should not use more moves ({} vs {})",
        iterated.moves(),
        single.moves()
    );
}

#[test]
fn terminating_controller_grants_between_m_minus_w_and_m() {
    let tree = DynamicTree::with_initial_star(25);
    let (m, w) = (12, 5);
    let mut ctrl = TerminatingController::new(tree, m, w, 128).unwrap();
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    let mut granted = 0;
    for i in 0..50usize {
        if ctrl
            .submit(nodes[i % nodes.len()], RequestKind::NonTopological)
            .unwrap()
            .is_granted()
        {
            granted += 1;
        }
    }
    assert!(ctrl.has_terminated());
    assert!(granted >= m - w && granted <= m, "granted = {granted}");
    assert_eq!(granted, ctrl.granted());
}

#[test]
fn terminating_controller_can_be_forced_to_terminate_early() {
    let tree = DynamicTree::with_initial_star(5);
    let mut ctrl = TerminatingController::new(tree, 10, 5, 32).unwrap();
    let root = ctrl.tree().root();
    assert!(ctrl
        .submit(root, RequestKind::NonTopological)
        .unwrap()
        .is_granted());
    ctrl.terminate();
    assert!(ctrl.has_terminated());
    assert!(!ctrl
        .submit(root, RequestKind::NonTopological)
        .unwrap()
        .is_granted());
}

#[test]
fn adaptive_controller_grows_far_beyond_the_initial_size() {
    // Start from a 4-node network and insert hundreds of nodes: no a-priori
    // bound U is available, epochs must adapt.
    let tree = DynamicTree::with_initial_star(3);
    let mut ctrl = AdaptiveController::new(tree, 500, 50, RefreshPolicy::ChangesQuarterU).unwrap();
    for i in 0..400usize {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let at = nodes[(i * 5) % nodes.len()];
        let out = ctrl.submit(at, RequestKind::AddLeaf).unwrap();
        assert!(out.is_granted(), "request {i} unexpectedly rejected");
    }
    assert!(ctrl.tree().node_count() > 400);
    assert!(ctrl.epochs() > 3, "epochs = {}", ctrl.epochs());
    assert_eq!(ctrl.granted(), 400);
}

#[test]
fn adaptive_controller_respects_safety_and_liveness_under_churn() {
    let tree = DynamicTree::with_initial_star(8);
    let (m, w) = (60, 10);
    let mut ctrl = AdaptiveController::new(tree, m, w, RefreshPolicy::SizeDoubling).unwrap();
    let mut granted = 0;
    let mut rejected = 0;
    for i in 0..200usize {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let at = nodes[(i * 3) % nodes.len()];
        let kind = if i % 5 == 4 && at != ctrl.tree().root() && ctrl.tree().node_count() > 4 {
            RequestKind::RemoveSelf
        } else {
            RequestKind::AddLeaf
        };
        match ctrl.submit(at, kind) {
            Ok(Outcome::Granted { .. }) => granted += 1,
            Ok(Outcome::Rejected) => rejected += 1,
            Ok(Outcome::Refused) => unreachable!("core families never refuse"),
            Err(ControllerError::CannotRemoveRoot) => {}
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(granted <= m);
    if rejected > 0 {
        assert!(granted >= m - w, "granted {granted} < M - W");
    }
    assert!(ctrl.tree().check_invariants().is_ok());
}

#[test]
fn moves_stay_within_the_theoretical_shape() {
    // Measured moves should stay within a moderate constant factor of the
    // Lemma 3.3 bound U·(M/W)·log²U for a demanding workload.
    let n = 256usize;
    let tree = DynamicTree::with_initial_path(n - 1);
    let m = 512;
    let w = 256;
    let u = 2 * n;
    let mut ctrl = CentralizedController::new(tree, m, w, u).unwrap();
    for i in 0..(m as usize) {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let at = nodes[(i * 17) % nodes.len()];
        if !ctrl
            .submit(at, RequestKind::NonTopological)
            .unwrap()
            .is_granted()
        {
            break;
        }
    }
    let bound = ctrl.params().single_shot_bound();
    assert!(
        (ctrl.moves() as f64) < bound,
        "moves {} exceed the theoretical bound {bound}",
        ctrl.moves()
    );
}

//! Integration tests for the distributed controller (§4) on the asynchronous
//! network simulator.

use dcn_controller::distributed::{AdaptiveDistributedController, DistributedController};
use dcn_controller::{Outcome, PermitInterval, RequestKind};
use dcn_simnet::{DelayModel, SimConfig};
use dcn_tree::{DynamicTree, NodeId};

fn cfg(seed: u64) -> SimConfig {
    SimConfig::new(seed).with_delay(DelayModel::Uniform { min: 1, max: 9 })
}

#[test]
fn single_request_far_from_the_root_is_granted() {
    let tree = DynamicTree::with_initial_path(40);
    let deep = NodeId::from_index(40);
    let mut ctrl = DistributedController::new(cfg(1), tree, 10, 5, 128).unwrap();
    let id = ctrl.submit(deep, RequestKind::NonTopological).unwrap();
    ctrl.run().unwrap();
    assert!(matches!(ctrl.outcome(id), Some(Outcome::Granted { .. })));
    assert_eq!(ctrl.granted(), 1);
    // The agent climbed to the root and back twice: at least 4 * depth hops.
    assert!(ctrl.messages() >= 4 * 40);
    // All locks are released at quiescence.
    for node in ctrl.tree().nodes().collect::<Vec<_>>() {
        assert!(!ctrl.sim().is_locked(node));
    }
}

#[test]
fn concurrent_requests_from_all_leaves_are_all_answered() {
    let tree = DynamicTree::with_initial_star(40);
    let mut ctrl = DistributedController::new(cfg(2), tree, 30, 10, 256).unwrap();
    let leaves: Vec<NodeId> = ctrl
        .tree()
        .nodes()
        .filter(|&n| n != ctrl.tree().root())
        .collect();
    for &leaf in &leaves {
        ctrl.submit(leaf, RequestKind::NonTopological).unwrap();
    }
    ctrl.run().unwrap();
    let summary = ctrl.summary();
    assert_eq!(summary.unanswered, 0);
    summary.check().unwrap();
    assert!(
        ctrl.granted() >= 30 - 10,
        "liveness: granted {}",
        ctrl.granted()
    );
    assert!(ctrl.granted() <= 30, "safety: granted {}", ctrl.granted());
    assert!(
        ctrl.rejected() > 0,
        "40 requests vs budget 30 must reject some"
    );
}

#[test]
fn topological_changes_are_applied_gracefully_during_the_run() {
    let tree = DynamicTree::with_initial_path(12);
    let mut ctrl = DistributedController::new(cfg(3), tree, 40, 10, 128).unwrap();
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    // Grow a few leaves, split an edge, and delete a middle node concurrently.
    for &n in nodes.iter().take(6) {
        ctrl.submit(n, RequestKind::AddLeaf).unwrap();
    }
    let mid = nodes[6];
    ctrl.submit(mid, RequestKind::RemoveSelf).unwrap();
    ctrl.run().unwrap();
    assert_eq!(ctrl.summary().unanswered, 0);
    assert!(!ctrl.tree().contains(mid));
    assert!(ctrl.tree().node_count() >= 12 + 6 - 1);
    assert!(ctrl.tree().check_invariants().is_ok());
    assert!(ctrl.metrics().topology_changes_applied >= 7);
}

#[test]
fn safety_and_liveness_hold_under_async_schedule_sweep() {
    for seed in 0..8u64 {
        let tree = DynamicTree::with_initial_star(25);
        let (m, w) = (12, 4);
        let mut ctrl = DistributedController::new(cfg(seed), tree, m, w, 128).unwrap();
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        for i in 0..30usize {
            ctrl.submit(nodes[i % nodes.len()], RequestKind::NonTopological)
                .unwrap();
        }
        ctrl.run().unwrap();
        let s = ctrl.summary();
        assert_eq!(s.unanswered, 0, "seed {seed}");
        s.check().unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        assert!(ctrl.rejected() > 0, "seed {seed}: overload must reject");
    }
}

#[test]
fn distributed_message_complexity_tracks_the_centralized_move_shape() {
    // The distributed controller's messages should be within a constant factor
    // of the centralized controller's moves on the same workload (Lemma 4.5
    // links the two; the agent walks up and down at most four times the
    // distance the permits travel).
    let n = 128usize;
    let make_tree = || DynamicTree::with_initial_path(n - 1);
    let m = 64;
    let w = 16;

    let mut central =
        dcn_controller::centralized::CentralizedController::new(make_tree(), m, w, 4 * n).unwrap();
    let mut distributed = DistributedController::new(cfg(11), make_tree(), m, w, 4 * n).unwrap();

    let targets: Vec<usize> = (0..m as usize).map(|i| (i * 29) % n).collect();
    for &d in &targets {
        let at = central
            .tree()
            .nodes()
            .find(|&x| central.tree().depth(x) == d)
            .unwrap();
        central.submit(at, RequestKind::NonTopological).unwrap();
    }
    for &d in &targets {
        let at = distributed
            .tree()
            .nodes()
            .find(|&x| distributed.tree().depth(x) == d)
            .unwrap();
        distributed.submit(at, RequestKind::NonTopological).unwrap();
    }
    distributed.run().unwrap();

    let moves = central.moves().max(1);
    let msgs = distributed.messages();
    assert!(
        msgs <= 20 * moves + 20 * n as u64,
        "distributed messages {msgs} are wildly out of line with centralized moves {moves}"
    );
}

#[test]
fn interval_mode_grants_unique_serials() {
    let tree = DynamicTree::with_initial_star(20);
    let m = 10;
    let mut ctrl = DistributedController::with_interval(
        cfg(5),
        tree,
        m,
        4,
        64,
        Some(PermitInterval::new(1, m)),
    )
    .unwrap();
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    for i in 0..m as usize {
        ctrl.submit(nodes[i % nodes.len()], RequestKind::NonTopological)
            .unwrap();
    }
    ctrl.run().unwrap();
    let mut serials: Vec<u64> = ctrl
        .records()
        .iter()
        .filter_map(|r| match r.outcome {
            Outcome::Granted { serial, .. } => serial,
            Outcome::Rejected | Outcome::Refused => None,
        })
        .collect();
    let granted = serials.len();
    serials.sort_unstable();
    serials.dedup();
    assert_eq!(serials.len(), granted, "serials must be unique");
    assert!(serials.iter().all(|&s| (1..=m).contains(&s)));
}

#[test]
fn rejected_requests_see_reject_packages_spread_by_the_wave() {
    let tree = DynamicTree::with_initial_star(10);
    let mut ctrl = DistributedController::new(cfg(6), tree, 3, 1, 64).unwrap();
    let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
    for i in 0..20usize {
        ctrl.submit(nodes[i % nodes.len()], RequestKind::NonTopological)
            .unwrap();
    }
    ctrl.run().unwrap();
    assert!(ctrl.rejected() > 0);
    // After the wave, every node should hold a reject package.
    let with_reject = ctrl
        .tree()
        .nodes()
        .filter(|&n| ctrl.whiteboard(n).is_some_and(|wb| wb.store.has_reject()))
        .count();
    assert_eq!(with_reject, ctrl.tree().node_count());
    // A later request is rejected locally, costing no extra permits.
    let id = ctrl.submit(nodes[0], RequestKind::NonTopological).unwrap();
    ctrl.run().unwrap();
    assert_eq!(ctrl.outcome(id), Some(Outcome::Rejected));
}

#[test]
fn adaptive_distributed_controller_handles_growth_without_a_bound() {
    let tree = DynamicTree::with_initial_star(4);
    let mut ctrl = AdaptiveDistributedController::new(cfg(7), tree, 300, 60).unwrap();
    let mut granted = 0u64;
    for round in 0..12 {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let batch: Vec<(NodeId, RequestKind)> = (0..20)
            .map(|i| (nodes[(i * 3 + round) % nodes.len()], RequestKind::AddLeaf))
            .collect();
        let records = ctrl.run_batch(&batch).unwrap();
        granted += records.iter().filter(|r| r.outcome.is_granted()).count() as u64;
    }
    assert_eq!(granted, 240, "all requests fit the budget of 300");
    assert!(ctrl.epochs() > 1, "the network grew, epochs must refresh");
    assert!(ctrl.tree().node_count() > 200);
    ctrl.summary().check().unwrap();
}

#[test]
fn adaptive_distributed_controller_rejects_only_when_budget_spent() {
    let tree = DynamicTree::with_initial_star(6);
    let (m, w) = (50u64, 10u64);
    let mut ctrl = AdaptiveDistributedController::new(cfg(8), tree, m, w).unwrap();
    let mut granted = 0u64;
    let mut rejected = 0u64;
    for round in 0..10 {
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        let batch: Vec<(NodeId, RequestKind)> = (0..10)
            .map(|i| {
                let at = nodes[(i + round) % nodes.len()];
                (at, RequestKind::AddLeaf)
            })
            .collect();
        let records = ctrl.run_batch(&batch).unwrap();
        for r in &records {
            match r.outcome {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected | Outcome::Refused => rejected += 1,
            }
        }
    }
    assert!(granted <= m);
    assert!(rejected > 0);
    assert!(granted >= m - w, "liveness: granted {granted}");
    ctrl.summary().check().unwrap();
}

//! Edge-case tests for the distributed controller: degenerate topologies,
//! requests at the root, hot-spot contention and adversarial delay schedules.

use dcn_controller::distributed::DistributedController;
use dcn_controller::{Outcome, RequestKind};
use dcn_simnet::{DelayModel, SimConfig};
use dcn_tree::{DynamicTree, NodeId};

#[test]
fn a_single_node_network_can_grow_from_nothing() {
    let mut ctrl =
        DistributedController::new(SimConfig::new(1), DynamicTree::new(), 8, 2, 16).unwrap();
    let root = ctrl.tree().root();
    for _ in 0..4 {
        ctrl.submit(root, RequestKind::AddLeaf).unwrap();
    }
    ctrl.run().unwrap();
    assert_eq!(ctrl.granted(), 4);
    assert_eq!(ctrl.tree().node_count(), 5);
    assert!(ctrl.tree().check_invariants().is_ok());
}

#[test]
fn requests_at_the_root_are_served_locally() {
    let tree = DynamicTree::with_initial_star(5);
    let mut ctrl = DistributedController::new(SimConfig::new(2), tree, 4, 2, 32).unwrap();
    let root = ctrl.tree().root();
    ctrl.submit(root, RequestKind::NonTopological).unwrap();
    ctrl.run().unwrap();
    assert_eq!(ctrl.granted(), 1);
    // No tree edge needs to be crossed for a request at the root.
    assert_eq!(ctrl.metrics().agent_hops, 0);
}

#[test]
fn a_hot_spot_of_requests_at_one_deep_node_serializes_through_its_lock() {
    let tree = DynamicTree::with_initial_path(30);
    let deep = NodeId::from_index(30);
    let mut ctrl = DistributedController::new(SimConfig::new(3), tree, 20, 5, 128).unwrap();
    for _ in 0..15 {
        ctrl.submit(deep, RequestKind::NonTopological).unwrap();
    }
    ctrl.run().unwrap();
    assert_eq!(ctrl.granted(), 15);
    assert!(ctrl.metrics().waits > 0, "the hot spot must cause queueing");
    // At this scale the distance parameter ψ exceeds the depth, so every
    // request degenerates to at most two root round-trips (the agent's climb,
    // bounce and unlocking descent): the per-request cost is bounded by
    // 4·depth, never more.
    let per_request = ctrl.messages() as f64 / 15.0;
    assert!(
        per_request <= 4.0 * 30.0,
        "per-request messages {per_request} must not exceed 4·depth"
    );
}

#[test]
fn bimodal_delays_do_not_change_the_outcome_set() {
    let run = |delay: DelayModel| {
        let tree = DynamicTree::with_initial_star(12);
        let config = SimConfig::new(4).with_delay(delay);
        let mut ctrl = DistributedController::new(config, tree, 6, 2, 64).unwrap();
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        for i in 0..10usize {
            ctrl.submit(nodes[i % nodes.len()], RequestKind::NonTopological)
                .unwrap();
        }
        ctrl.run().unwrap();
        (ctrl.granted(), ctrl.rejected())
    };
    let uniform = run(DelayModel::Uniform { min: 1, max: 4 });
    let bimodal = run(DelayModel::Bimodal {
        fast: 1,
        slow: 200,
        slow_percent: 25,
    });
    let constant = run(DelayModel::Constant(3));
    // The specific requests granted may differ, but the counts are forced by
    // safety + liveness: all three schedules grant exactly M = 6.
    assert_eq!(uniform, (6, 4));
    assert_eq!(bimodal, (6, 4));
    assert_eq!(constant, (6, 4));
}

#[test]
fn removing_a_chain_of_internal_nodes_keeps_descendants_reachable() {
    let tree = DynamicTree::with_initial_path(10);
    let mut ctrl = DistributedController::new(SimConfig::new(5), tree, 20, 5, 64).unwrap();
    // Remove nodes at depths 3, 5, 7 (all internal) concurrently.
    for idx in [3u32, 5, 7] {
        ctrl.submit(NodeId::from_index(idx as usize), RequestKind::RemoveSelf)
            .unwrap();
    }
    ctrl.run().unwrap();
    assert_eq!(ctrl.granted(), 3);
    assert_eq!(ctrl.tree().node_count(), 8);
    // The deepest node survives and is still connected to the root.
    let deep = NodeId::from_index(10);
    assert!(ctrl.tree().contains(deep));
    assert!(ctrl.tree().is_ancestor(ctrl.tree().root(), deep));
    assert!(ctrl.tree().check_invariants().is_ok());
}

#[test]
fn permits_parked_in_packages_survive_the_deletion_of_their_host() {
    // A deep request leaves packages on the path; deleting package-holding
    // nodes must conserve permits (they move to the parent whiteboard).
    let tree = DynamicTree::with_initial_path(400);
    let deep = NodeId::from_index(400);
    let mut ctrl = DistributedController::new(SimConfig::new(6), tree, 800, 400, 2048).unwrap();
    ctrl.submit(deep, RequestKind::NonTopological).unwrap();
    ctrl.run().unwrap();
    assert_eq!(ctrl.granted() + ctrl.uncommitted_permits(), 800);

    // Delete thirty nodes spread over the path.
    for i in 1..=30u32 {
        let node = NodeId::from_index((i * 13 % 390) as usize + 5);
        if ctrl.tree().contains(node) {
            let _ = ctrl.submit(node, RequestKind::RemoveSelf);
        }
    }
    ctrl.run().unwrap();
    assert_eq!(
        ctrl.granted() + ctrl.uncommitted_permits(),
        800,
        "permits are conserved across deletions of package hosts"
    );
    assert!(ctrl.tree().check_invariants().is_ok());
}

#[test]
fn answers_match_between_two_identical_runs() {
    let run = |seed: u64| {
        let tree = DynamicTree::with_initial_star(16);
        let mut ctrl = DistributedController::new(SimConfig::new(seed), tree, 10, 3, 64).unwrap();
        let nodes: Vec<NodeId> = ctrl.tree().nodes().collect();
        for i in 0..14usize {
            ctrl.submit(nodes[i % nodes.len()], RequestKind::AddLeaf)
                .unwrap();
        }
        ctrl.run().unwrap();
        let mut outcomes: Vec<(u64, bool)> = ctrl
            .records()
            .iter()
            .map(|r| (r.id.0, matches!(r.outcome, Outcome::Granted { .. })))
            .collect();
        outcomes.sort();
        (outcomes, ctrl.messages())
    };
    assert_eq!(run(99), run(99));
}

//! Property-based tests: random workloads and random asynchronous schedules
//! must never violate the (M, W)-Controller correctness conditions, the
//! domain invariants, permit conservation, or tree consistency.

use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::distributed::DistributedController;
use dcn_controller::verify::ExecutionSummary;
use dcn_controller::{Outcome, RequestKind};
use dcn_simnet::{DelayModel, SimConfig};
use dcn_tree::{DynamicTree, NodeId};
use proptest::prelude::*;

/// An abstract request; the node index is interpreted modulo the current node
/// set so any sequence applies to any intermediate tree.
#[derive(Clone, Copy, Debug)]
enum Req {
    AddLeaf(usize),
    AddInternal(usize),
    Remove(usize),
    Plain(usize),
}

fn req_strategy() -> impl Strategy<Value = Req> {
    prop_oneof![
        3 => (0usize..256).prop_map(Req::AddLeaf),
        2 => (0usize..256).prop_map(Req::AddInternal),
        2 => (0usize..256).prop_map(Req::Remove),
        3 => (0usize..256).prop_map(Req::Plain),
    ]
}

fn pick(tree: &DynamicTree, k: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    nodes[k % nodes.len()]
}

/// Translates an abstract request into a concrete (origin, kind) pair against
/// the current tree, or `None` when it does not apply (e.g. removing the
/// root).
fn concretize(tree: &DynamicTree, req: Req) -> Option<(NodeId, RequestKind)> {
    match req {
        Req::AddLeaf(k) => Some((pick(tree, k), RequestKind::AddLeaf)),
        Req::Plain(k) => Some((pick(tree, k), RequestKind::NonTopological)),
        Req::AddInternal(k) => {
            let child = pick(tree, k);
            let parent = tree.parent(child)?;
            Some((parent, RequestKind::AddInternalAbove(child)))
        }
        Req::Remove(k) => {
            let node = pick(tree, k);
            if node == tree.root() {
                return None;
            }
            Some((node, RequestKind::RemoveSelf))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The centralized base controller: safety, liveness, permit conservation
    /// and tree consistency under arbitrary mixed workloads.
    #[test]
    fn centralized_controller_is_correct_under_random_workloads(
        reqs in prop::collection::vec(req_strategy(), 1..120),
        m in 1u64..60,
        w_frac in 1u64..100,
        n0 in 1usize..40,
    ) {
        let w = (m * w_frac / 100).max(1).min(m);
        let u_bound = n0 + reqs.len() + 1;
        let tree = DynamicTree::with_initial_star(n0);
        let mut ctrl = CentralizedController::new(tree, m, w, u_bound).unwrap().with_auditor();
        let mut granted = 0u64;
        let mut rejected = 0u64;
        for req in &reqs {
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else { continue };
            match ctrl.submit(at, kind).unwrap() {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected => rejected += 1,
            }
            // Permit conservation: granted + uncommitted == M at all times.
            prop_assert_eq!(ctrl.granted() + ctrl.uncommitted_permits(), m);
            // Structural and analysis invariants.
            prop_assert!(ctrl.tree().check_invariants().is_ok());
            ctrl.check_domain_invariants().map_err(|e| {
                TestCaseError::fail(format!("domain invariant violated: {e}"))
            })?;
        }
        ExecutionSummary { m, w, granted, rejected, unanswered: 0 }
            .check()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
    }

    /// The iterated controller supports W = 0 and always grants exactly
    /// min(M, answered-before-exhaustion) permits with no waste.
    #[test]
    fn iterated_controller_with_zero_waste_grants_exactly_m(
        reqs in prop::collection::vec(req_strategy(), 30..150),
        m in 1u64..25,
        n0 in 1usize..30,
    ) {
        let u_bound = n0 + reqs.len() + 1;
        let tree = DynamicTree::with_initial_star(n0);
        let mut ctrl = IteratedController::new(tree, m, 0, u_bound).unwrap();
        let mut granted = 0u64;
        let mut rejected = 0u64;
        for req in &reqs {
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else { continue };
            match ctrl.submit(at, kind).unwrap() {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected => rejected += 1,
            }
        }
        prop_assert!(granted <= m);
        if rejected > 0 {
            prop_assert_eq!(granted, m, "W = 0 requires zero waste once a reject is issued");
        }
        prop_assert!(ctrl.tree().check_invariants().is_ok());
    }

    /// The distributed controller under random workloads, random delay
    /// schedules and concurrent submission: every request answered, safety
    /// and liveness hold, all locks released, tree consistent.
    #[test]
    fn distributed_controller_is_correct_under_random_schedules(
        reqs in prop::collection::vec(req_strategy(), 1..60),
        m in 1u64..40,
        w_frac in 1u64..100,
        n0 in 1usize..25,
        seed in 0u64..u64::MAX,
        max_delay in 1u64..16,
    ) {
        let w = (m * w_frac / 100).max(1).min(m);
        let u_bound = n0 + reqs.len() + 2;
        let tree = DynamicTree::with_initial_star(n0);
        let config = SimConfig::new(seed)
            .with_delay(DelayModel::Uniform { min: 1, max: max_delay });
        let mut ctrl = DistributedController::new(config, tree, m, w, u_bound).unwrap();
        let mut submitted = 0u64;
        for req in &reqs {
            // Concretize against the *initial* tree (all requests are
            // submitted up-front and race with each other).
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else { continue };
            ctrl.submit(at, kind).unwrap();
            submitted += 1;
        }
        ctrl.run().unwrap();
        let answered = ctrl.records().len() as u64;
        prop_assert_eq!(answered, submitted, "every request must be answered");
        let summary = ctrl.summary();
        summary.check().map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert!(ctrl.tree().check_invariants().is_ok());
        for node in ctrl.tree().nodes().collect::<Vec<_>>() {
            prop_assert!(!ctrl.sim().is_locked(node), "node {} left locked", node);
        }
        // Permit conservation in the distributed data structure.
        prop_assert_eq!(ctrl.granted() + ctrl.uncommitted_permits(), m);
    }
}

//! Property-style tests: random workloads and random asynchronous schedules
//! must never violate the (M, W)-Controller correctness conditions, the
//! domain invariants, permit conservation, or tree consistency.
//!
//! The build environment has no proptest, so each property runs a fixed
//! number of seeded random cases through `dcn-rng`: every failure is
//! reproducible from its printed case seed.

use dcn_controller::centralized::{CentralizedController, IteratedController};
use dcn_controller::distributed::DistributedController;
use dcn_controller::verify::ExecutionSummary;
use dcn_controller::{Outcome, RequestKind};
use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_simnet::{DelayModel, SimConfig};
use dcn_tree::{DynamicTree, NodeId};

const CASES: u64 = 48;

/// An abstract request; the node index is interpreted modulo the current node
/// set so any sequence applies to any intermediate tree.
#[derive(Clone, Copy, Debug)]
enum Req {
    AddLeaf(usize),
    AddInternal(usize),
    Remove(usize),
    Plain(usize),
}

/// Draws one request with the weights 3 : 2 : 2 : 3 (mirroring the old
/// proptest strategy).
fn random_req(rng: &mut DetRng) -> Req {
    let k = rng.gen_range(0usize..256);
    match rng.gen_range(0u32..10) {
        0..=2 => Req::AddLeaf(k),
        3..=4 => Req::AddInternal(k),
        5..=6 => Req::Remove(k),
        _ => Req::Plain(k),
    }
}

fn random_reqs(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<Req> {
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| random_req(rng)).collect()
}

fn pick(tree: &DynamicTree, k: usize) -> NodeId {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    nodes[k % nodes.len()]
}

/// Translates an abstract request into a concrete (origin, kind) pair against
/// the current tree, or `None` when it does not apply (e.g. removing the
/// root).
fn concretize(tree: &DynamicTree, req: Req) -> Option<(NodeId, RequestKind)> {
    match req {
        Req::AddLeaf(k) => Some((pick(tree, k), RequestKind::AddLeaf)),
        Req::Plain(k) => Some((pick(tree, k), RequestKind::NonTopological)),
        Req::AddInternal(k) => {
            let child = pick(tree, k);
            let parent = tree.parent(child)?;
            Some((parent, RequestKind::AddInternalAbove(child)))
        }
        Req::Remove(k) => {
            let node = pick(tree, k);
            if node == tree.root() {
                return None;
            }
            Some((node, RequestKind::RemoveSelf))
        }
    }
}

/// The centralized base controller: safety, liveness, permit conservation
/// and tree consistency under arbitrary mixed workloads.
#[test]
fn centralized_controller_is_correct_under_random_workloads() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let reqs = random_reqs(&mut rng, 1, 120);
        let m = rng.gen_range(1u64..60);
        let w_frac = rng.gen_range(1u64..100);
        let n0 = rng.gen_range(1usize..40);
        let w = (m * w_frac / 100).clamp(1, m);
        let u_bound = n0 + reqs.len() + 1;
        let tree = DynamicTree::with_initial_star(n0);
        let mut ctrl = CentralizedController::new(tree, m, w, u_bound)
            .unwrap()
            .with_auditor();
        let mut granted = 0u64;
        let mut rejected = 0u64;
        for req in &reqs {
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else {
                continue;
            };
            match ctrl.submit(at, kind).unwrap() {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected => rejected += 1,
                Outcome::Refused => unreachable!("core families never refuse"),
            }
            // Permit conservation: granted + uncommitted == M at all times.
            assert_eq!(
                ctrl.granted() + ctrl.uncommitted_permits(),
                m,
                "case {case}: permit conservation"
            );
            // Structural and analysis invariants.
            assert!(ctrl.tree().check_invariants().is_ok(), "case {case}");
            ctrl.check_domain_invariants()
                .unwrap_or_else(|e| panic!("case {case}: domain invariant violated: {e}"));
        }
        ExecutionSummary {
            m,
            w,
            granted,
            rejected,
            unanswered: 0,
        }
        .check()
        .unwrap_or_else(|v| panic!("case {case}: {v}"));
    }
}

/// The iterated controller supports W = 0 and always grants exactly
/// min(M, answered-before-exhaustion) permits with no waste.
#[test]
fn iterated_controller_with_zero_waste_grants_exactly_m() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(10_000 + case);
        let reqs = random_reqs(&mut rng, 30, 150);
        let m = rng.gen_range(1u64..25);
        let n0 = rng.gen_range(1usize..30);
        let u_bound = n0 + reqs.len() + 1;
        let tree = DynamicTree::with_initial_star(n0);
        let mut ctrl = IteratedController::new(tree, m, 0, u_bound).unwrap();
        let mut granted = 0u64;
        let mut rejected = 0u64;
        for req in &reqs {
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else {
                continue;
            };
            match ctrl.submit(at, kind).unwrap() {
                Outcome::Granted { .. } => granted += 1,
                Outcome::Rejected => rejected += 1,
                Outcome::Refused => unreachable!("core families never refuse"),
            }
        }
        assert!(granted <= m, "case {case}");
        if rejected > 0 {
            assert_eq!(
                granted, m,
                "case {case}: W = 0 requires zero waste once a reject is issued"
            );
        }
        assert!(ctrl.tree().check_invariants().is_ok(), "case {case}");
    }
}

/// The distributed controller under random workloads, random delay
/// schedules and concurrent submission: every request answered, safety
/// and liveness hold, all locks released, tree consistent.
#[test]
fn distributed_controller_is_correct_under_random_schedules() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(20_000 + case);
        let reqs = random_reqs(&mut rng, 1, 60);
        let m = rng.gen_range(1u64..40);
        let w_frac = rng.gen_range(1u64..100);
        let n0 = rng.gen_range(1usize..25);
        let seed = rng.next_u64();
        let max_delay = rng.gen_range(1u64..16);
        let w = (m * w_frac / 100).clamp(1, m);
        let u_bound = n0 + reqs.len() + 2;
        let tree = DynamicTree::with_initial_star(n0);
        let config = SimConfig::new(seed).with_delay(DelayModel::Uniform {
            min: 1,
            max: max_delay,
        });
        let mut ctrl = DistributedController::new(config, tree, m, w, u_bound).unwrap();
        let mut submitted = 0u64;
        for req in &reqs {
            // Concretize against the *initial* tree (all requests are
            // submitted up-front and race with each other).
            let Some((at, kind)) = concretize(ctrl.tree(), *req) else {
                continue;
            };
            ctrl.submit(at, kind).unwrap();
            submitted += 1;
        }
        ctrl.run().unwrap();
        let answered = ctrl.records().len() as u64;
        assert_eq!(
            answered, submitted,
            "case {case}: every request must be answered"
        );
        ctrl.summary()
            .check()
            .unwrap_or_else(|v| panic!("case {case}: {v}"));
        assert!(ctrl.tree().check_invariants().is_ok(), "case {case}");
        for node in ctrl.tree().nodes().collect::<Vec<_>>() {
            assert!(
                !ctrl.sim().is_locked(node),
                "case {case}: node {node} left locked"
            );
        }
        // Permit conservation in the distributed data structure.
        assert_eq!(
            ctrl.granted() + ctrl.uncommitted_permits(),
            m,
            "case {case}: permit conservation"
        );
    }
}

//! The shared [`IterationDriver`]: one epoch engine for every §5 application.
//!
//! Each §5 protocol runs in *iterations*: an iteration opens with an
//! announcement wave (charged `O(n)` messages), builds a fresh terminating
//! distributed controller whose budget caps the drift of the network away
//! from the iteration-start size, and rotates to a new iteration when that
//! controller is exhausted (charging the closing count wave). Before this
//! module, all six applications hand-rolled that lifecycle — iteration
//! start, exhaustion detection, wave charging via `aux_messages` /
//! `finished_messages`, per-iteration seed derivation and the controller
//! rebuild. The driver owns all of it once; an application shrinks to an
//! [`IterationPolicy`] that picks the per-iteration parameters (α/β budgets,
//! interval mode, renaming waves) plus its own invariant bookkeeping.
//!
//! The driver exposes the same ticket/event/step seam as the controller
//! runtime (PR 3): [`IterationDriver::submit`] returns a stable
//! [`RequestId`] ticket that survives iteration rebuilds, bounded
//! [`IterationDriver::step`] slices interleave execution with new arrivals,
//! [`IterationDriver::drain_events`] streams [`AppEvent`]s (the controller's
//! per-request events plus [`AppEvent::IterationStarted`] at every iteration
//! boundary) and [`IterationDriver::records`] keeps the resolved history.
//! Requests rejected by an exhausted iteration are retried transparently in
//! the next one; their ticket resolves only when a final answer exists.

use crate::invariant::InvariantError;
use dcn_collections::SecondaryMap;
use dcn_controller::distributed::DistributedController;
use dcn_controller::{
    ControllerError, ControllerEvent, Outcome, PermitInterval, Progress, RequestId, RequestKind,
    RequestRecord,
};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// The parameters an [`IterationPolicy`] chooses for one iteration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationPlan {
    /// The inner controller's permit budget `M` for this iteration.
    pub budget: u64,
    /// The inner controller's waste bound `W`.
    pub waste: u64,
    /// Serial-number interval for interval mode (the name assigner hands the
    /// permits out as identities); `None` for anonymous permits.
    pub interval: Option<PermitInterval>,
    /// Messages charged for the iteration-opening announcement wave(s) — one
    /// broadcast (`n`) for the size estimator's `N_i` announcement, two DFS
    /// renaming traversals (`4n`) for the name assigner.
    pub announce_messages: u64,
}

/// The per-application hook of the [`IterationDriver`]: picks each
/// iteration's controller parameters and absorbs answered requests into the
/// application's own state.
pub trait IterationPolicy {
    /// Plans the iteration about to start over `tree` (called once at
    /// construction and again at every rotation, before the inner controller
    /// is rebuilt). State the application refreshes per iteration — the name
    /// assigner's DFS renaming, the subtree estimator's `ω₀` snapshot —
    /// belongs here.
    fn plan(&mut self, tree: &DynamicTree) -> IterationPlan;

    /// Absorbs a round of final answers (called after every answer
    /// collection, before any rotation; `tree` reflects all granted changes
    /// of the round). The default does nothing.
    fn absorb(&mut self, tree: &DynamicTree, records: &[RequestRecord]) {
        let _ = (tree, records);
    }
}

/// An event drained from an [`IterationDriver`] (or any [`Application`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppEvent {
    /// A per-request controller event (grant / reject / refusal / topology
    /// application), with the driver's stable outer ticket.
    Controller(ControllerEvent),
    /// A new iteration started: the epoch announcement of the §5 protocols.
    IterationStarted {
        /// The 1-based iteration index.
        index: u32,
        /// The iteration-start network size `N_i` (the estimate announced to
        /// every node).
        estimate: u64,
    },
}

impl AppEvent {
    /// The ticket this event belongs to, for per-request events.
    pub fn id(&self) -> Option<RequestId> {
        match self {
            AppEvent::Controller(e) => Some(e.id()),
            AppEvent::IterationStarted { .. } => None,
        }
    }

    /// Returns `true` for the answer events that resolve a ticket.
    pub fn is_answer(&self) -> bool {
        matches!(self, AppEvent::Controller(e) if e.is_answer())
    }
}

/// One not-yet-answered outer request.
type PendingRequest = (RequestId, NodeId, RequestKind, u64);

/// The request preconditions of the dynamic model, shared by
/// [`IterationDriver::submit`] (where a violation is a caller error) and the
/// retry path (where it means the request went stale while waiting and is
/// answered with a final reject).
fn validate(tree: &DynamicTree, at: NodeId, kind: RequestKind) -> Result<(), ControllerError> {
    if !tree.contains(at) {
        return Err(ControllerError::UnknownNode(at));
    }
    match kind {
        RequestKind::AddInternalAbove(child) if tree.parent(child) != Some(at) => {
            Err(ControllerError::NotParentOf { at, child })
        }
        RequestKind::RemoveSelf if at == tree.root() => Err(ControllerError::CannotRemoveRoot),
        _ => Ok(()),
    }
}

/// Consecutive grant-free rotations after which the driver stops retrying
/// and rejects the stragglers (a fresh iteration normally grants at least
/// one request; this is the safety valve the old per-app loops capped at 64
/// rounds).
const MAX_STALLED_ROTATIONS: u32 = 64;

/// The shared iteration engine of the §5 applications.
///
/// Owns the inner [`DistributedController`] of the current iteration, the
/// iteration counters and the charged wave messages; rebuilds the controller
/// (with a derived seed) whenever an iteration exhausts its budget, retrying
/// the rejected requests under their original tickets.
#[derive(Debug)]
pub struct IterationDriver<P> {
    config: SimConfig,
    policy: P,
    inner: Option<DistributedController>,
    /// The iteration-start size `N_i` announced to every node.
    estimate: u64,
    iterations: u32,
    aux_messages: u64,
    finished_messages: u64,
    changes_total: u64,
    seed_counter: u64,
    next_ticket: u64,
    /// Global virtual clock base: inner simulators restart at 0 per
    /// iteration, so global times are `time_base + inner time`.
    time_base: u64,
    records: Vec<RequestRecord>,
    index: SecondaryMap<RequestId, usize>,
    events: Vec<AppEvent>,
    /// Outer tickets submitted but not yet handed to the inner controller.
    queued: Vec<PendingRequest>,
    /// Inner ticket → outer ticket mapping for the in-flight requests of the
    /// current iteration (inner ids are dense, so it is index-keyed).
    ticket_of: SecondaryMap<RequestId, (RequestId, u64)>,
    /// Requests rejected by an exhausted iteration, waiting for the rotation
    /// that retries them.
    retry: Vec<PendingRequest>,
    stalled_rotations: u32,
}

impl<P: IterationPolicy> IterationDriver<P> {
    /// Creates the driver over `tree`, planning and starting the first
    /// iteration through `policy`.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors (invalid plan parameters).
    pub fn new(config: SimConfig, tree: DynamicTree, policy: P) -> Result<Self, ControllerError> {
        let mut driver = IterationDriver {
            config,
            policy,
            inner: None,
            estimate: 0,
            iterations: 0,
            aux_messages: 0,
            finished_messages: 0,
            changes_total: 0,
            seed_counter: config.seed,
            next_ticket: 0,
            time_base: 0,
            records: Vec::new(),
            index: SecondaryMap::new(),
            events: Vec::new(),
            queued: Vec::new(),
            ticket_of: SecondaryMap::new(),
            retry: Vec::new(),
            stalled_rotations: 0,
        };
        driver.start_iteration(tree)?;
        Ok(driver)
    }

    fn inner(&self) -> &DistributedController {
        // lint: allow(unwrap) None only transiently inside rotate(), which
        // reinstalls a fresh controller before returning
        self.inner.as_ref().expect("inner controller present")
    }

    /// The iteration policy (the application's own state lives here).
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Mutable access to the iteration policy.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.inner().tree()
    }

    /// The iteration-start size `N_i` held by every node (the estimate `ñ`
    /// of the size-estimation protocol).
    pub fn estimate(&self) -> u64 {
        self.estimate
    }

    /// Number of iterations started so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Total messages so far: retired and current controller messages plus
    /// every charged wave.
    pub fn messages(&self) -> u64 {
        self.finished_messages + self.inner().messages() + self.aux_messages
    }

    /// Number of topological changes granted so far.
    pub fn changes(&self) -> u64 {
        self.changes_total
    }

    /// Amortized messages per topological change (the quantity the §5
    /// theorems bound).
    pub fn amortized_messages_per_change(&self) -> f64 {
        self.messages() as f64 / self.changes_total.max(1) as f64
    }

    /// Charges `messages` auxiliary protocol messages to the driver's
    /// counter (application-level waves: re-labelings, pointer flips, vote
    /// deliveries). Centralising the counter here keeps "what is charged
    /// where" in one place — applications declare costs, they do not own
    /// counters.
    pub fn charge_messages(&mut self, messages: u64) {
        self.aux_messages += messages;
    }

    /// The number of permits that travelled down through `node` in the
    /// current iteration (read off the inner controller's whiteboard; used
    /// by the subtree estimator).
    pub fn permits_passed_down(&self, node: NodeId) -> u64 {
        self.inner()
            .whiteboard(node)
            .map_or(0, |wb| wb.permits_passed_down)
    }

    /// The current global virtual time.
    fn now(&self) -> u64 {
        self.time_base + self.inner().sim().time()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// The outcome of a specific ticket, if it has been answered.
    pub fn outcome(&self, id: RequestId) -> Option<Outcome> {
        self.index.get(id).map(|&i| self.records[i].outcome)
    }

    /// Removes and returns the events produced since the last drain, in
    /// emission order.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        std::mem::take(&mut self.events)
    }

    /// Submits a request arriving at `at` under a stable outer ticket;
    /// execution happens in the next [`IterationDriver::step`] /
    /// [`IterationDriver::run_to_quiescence`] call.
    ///
    /// # Errors
    ///
    /// Returns validation errors against the *current* tree (unknown node,
    /// malformed topological request); such a request never entered the
    /// driver and resolves to no event.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        validate(self.tree(), at, kind)?;
        let id = RequestId(self.next_ticket);
        self.next_ticket += 1;
        let now = self.now();
        self.queued.push((id, at, kind, now));
        Ok(id)
    }

    /// Runs until every submitted ticket has a final answer, rotating
    /// iterations as budgets exhaust.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors and rotation-time construction errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        loop {
            let progress = self.step(u64::MAX)?;
            if progress.quiescent {
                return Ok(());
            }
        }
    }

    /// Advances execution by at most `budget` inner simulator events,
    /// handing queued submissions to the inner controller, collecting final
    /// answers, and rotating iterations when the current one is exhausted.
    /// `Progress::quiescent` is `true` once no ticket is unanswered.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors and rotation-time construction errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let mut processed = 0u64;
        loop {
            self.flush_queued()?;
            // lint: allow(unwrap) None only transiently inside rotate()
            let inner = self.inner.as_mut().expect("inner controller present");
            let slice = inner.step(budget - processed)?;
            processed += slice.processed;
            self.collect_answers();
            if !slice.quiescent {
                // Budget exhausted with agents still in flight.
                return Ok(Progress {
                    processed,
                    quiescent: false,
                });
            }
            // The inner controller is quiescent; are we done, or did an
            // exhausted iteration leave rejected requests to retry?
            if self.retry.is_empty() && self.queued.is_empty() {
                // Settle the policy against the fully-applied tree: grants
                // are answered slightly before the simulator applies their
                // topological change, so bookkeeping keyed on tree contents
                // (identity assignment) needs one final absorb.
                let tree = self
                    .inner
                    .as_ref()
                    // lint: allow(unwrap) None only transiently inside rotate()
                    .expect("inner controller present")
                    .tree();
                self.policy.absorb(tree, &[]);
                return Ok(Progress {
                    processed,
                    quiescent: true,
                });
            }
            if !self.retry.is_empty() {
                if self.stalled_rotations >= MAX_STALLED_ROTATIONS {
                    // Safety valve: iterations keep exhausting without
                    // granting anything; answer the stragglers with final
                    // rejects rather than looping forever.
                    let stragglers = std::mem::take(&mut self.retry);
                    for (id, origin, kind, submitted_at) in stragglers {
                        self.finalize_reject(id, origin, kind, submitted_at);
                    }
                    continue;
                }
                self.rotate()?;
            }
            if processed >= budget {
                return Ok(Progress {
                    processed,
                    quiescent: false,
                });
            }
        }
    }

    /// Hands queued and retried requests to the inner controller, mapping
    /// inner tickets back to the stable outer ones. Requests whose origin
    /// vanished (or whose topological precondition broke) while they waited
    /// are answered with a final reject.
    fn flush_queued(&mut self) -> Result<(), ControllerError> {
        let mut waiting = std::mem::take(&mut self.retry);
        waiting.append(&mut self.queued);
        for (id, origin, kind, submitted_at) in waiting {
            // lint: allow(unwrap) None only transiently inside rotate()
            let inner = self.inner.as_mut().expect("inner controller present");
            if validate(inner.tree(), origin, kind).is_err() {
                // The request went stale while it waited (its target
                // vanished or its precondition broke): final reject.
                self.finalize_reject(id, origin, kind, submitted_at);
                continue;
            }
            let inner_id = inner.submit(origin, kind)?;
            self.ticket_of.insert(inner_id, (id, submitted_at));
        }
        Ok(())
    }

    /// Moves the inner controller's fresh answers into the outer history:
    /// grants become final records/events, rejects join the retry queue for
    /// the next iteration.
    fn collect_answers(&mut self) {
        let time_base = self.time_base;
        // lint: allow(unwrap) None only transiently inside rotate()
        let inner = self.inner.as_mut().expect("inner controller present");
        let round = inner.take_records();
        if round.is_empty() {
            return;
        }
        inner.drain_events(); // outer events are re-emitted under outer tickets
        let mut absorbed: Vec<RequestRecord> = Vec::new();
        for mut rec in round {
            let (outer, submitted_at) = self
                .ticket_of
                .remove(rec.id)
                // lint: allow(unwrap) the entry was inserted when this inner
                // id was submitted, and each id is answered exactly once
                .expect("every inner answer maps to an outer ticket");
            rec.id = outer;
            rec.submitted_at = submitted_at;
            rec.answered_at += time_base;
            match rec.outcome {
                Outcome::Granted { .. } => {
                    if rec.kind.is_topological() {
                        self.changes_total += 1;
                    }
                    self.stalled_rotations = 0;
                    self.finalize(rec);
                    absorbed.push(rec);
                }
                Outcome::Rejected => {
                    self.retry
                        .push((rec.id, rec.origin, rec.kind, submitted_at));
                }
                // The fixed-bound distributed family supports the full
                // dynamic model and never refuses.
                Outcome::Refused => unreachable!("distributed controller never refuses"),
            }
        }
        if !absorbed.is_empty() {
            // lint: allow(unwrap) None only transiently inside rotate()
            let inner = self.inner.as_ref().expect("inner controller present");
            self.policy.absorb(inner.tree(), &absorbed);
        }
    }

    /// Appends a final answer to the history and emits its events.
    fn finalize(&mut self, record: RequestRecord) {
        let mut events = Vec::new();
        ControllerEvent::push_for_record(&record, &mut events);
        self.events
            .extend(events.into_iter().map(AppEvent::Controller));
        self.index.insert(record.id, self.records.len());
        self.records.push(record);
    }

    /// Answers a request with a final driver-level reject (origin vanished,
    /// or the retry safety valve fired).
    fn finalize_reject(
        &mut self,
        id: RequestId,
        origin: NodeId,
        kind: RequestKind,
        submitted_at: u64,
    ) {
        let answered_at = self.now();
        self.finalize(RequestRecord {
            id,
            origin,
            kind,
            outcome: Outcome::Rejected,
            submitted_at,
            answered_at,
        });
    }

    /// Tears down the exhausted iteration's controller — accounting its
    /// messages, folding its clock into the monotone base and charging the
    /// closing count wave (broadcast + upcast, `2n`) — and starts the next
    /// iteration.
    fn rotate(&mut self) -> Result<(), ControllerError> {
        // lint: allow(unwrap) take() here is the only drain of the Option and
        // a replacement is installed below before any early return
        let inner = self.inner.take().expect("inner controller present");
        self.finished_messages += inner.messages();
        self.time_base += inner.sim().time();
        self.ticket_of.clear();
        let tree = inner.into_tree();
        self.aux_messages += 2 * tree.node_count() as u64;
        self.stalled_rotations += 1;
        self.start_iteration(tree)
    }

    /// Plans and starts an iteration over `tree`: charges the announcement
    /// wave, derives the iteration seed, rebuilds the inner controller and
    /// emits [`AppEvent::IterationStarted`].
    fn start_iteration(&mut self, tree: DynamicTree) -> Result<(), ControllerError> {
        let n = tree.node_count() as u64;
        self.iterations += 1;
        self.estimate = n;
        let plan = self.policy.plan(&tree);
        self.aux_messages += plan.announce_messages;
        let budget = plan.budget.max(1);
        let waste = plan.waste.min(budget);
        let u_bound = tree.node_count() + budget as usize + 1;
        let mut cfg = self.config;
        cfg.seed = self.seed_counter;
        self.seed_counter = self.seed_counter.wrapping_add(1);
        let inner =
            DistributedController::with_interval(cfg, tree, budget, waste, u_bound, plan.interval)?;
        self.inner = Some(inner);
        self.events.push(AppEvent::IterationStarted {
            index: self.iterations,
            estimate: self.estimate,
        });
        Ok(())
    }

    /// Submits a batch of requests and runs to quiescence — the convenience
    /// shim over the ticketed lifecycle that every pre-refactor caller used.
    /// Operations that fail validation against the current tree (an earlier
    /// grant removed their target) are skipped, as before; the returned
    /// records cover exactly this batch's tickets, in answer order.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let before = self.records.len();
        for &(at, kind) in ops {
            // Stale intra-batch operations are dropped, matching the
            // historical batch semantics.
            let _ = self.submit(at, kind);
        }
        self.run_to_quiescence()?;
        Ok(self.records[before..].to_vec())
    }
}

/// The uniform driver-facing surface of the six §5 applications: the
/// ticket/event/step lifecycle of the iteration driver plus the
/// application's own invariant check. The scenario runner and sweep engine
/// in `dcn-workload` program against `dyn Application` exactly as the
/// controller drivers program against `dyn Controller`.
pub trait Application {
    /// A short application name (used in report rows and sweep grids).
    fn name(&self) -> &'static str;

    /// Submits a request under a stable ticket (see
    /// [`IterationDriver::submit`]).
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError>;

    /// Advances execution by at most `budget` simulator events (see
    /// [`IterationDriver::step`]).
    ///
    /// # Errors
    ///
    /// Propagates simulator and iteration-rotation errors.
    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError>;

    /// Runs until every ticket is answered.
    ///
    /// # Errors
    ///
    /// Propagates simulator and iteration-rotation errors.
    fn run_to_quiescence(&mut self) -> Result<(), ControllerError>;

    /// Removes and returns the events produced since the last drain.
    fn drain_events(&mut self) -> Vec<AppEvent>;

    /// All resolved requests so far, in answer order.
    fn records(&self) -> &[RequestRecord];

    /// The current spanning tree.
    fn tree(&self) -> &DynamicTree;

    /// Iterations (epochs) started so far.
    fn iterations(&self) -> u32;

    /// Topological changes granted so far.
    fn changes(&self) -> u64;

    /// Total messages so far (controller messages plus every charged wave).
    fn messages(&self) -> u64;

    /// Checks the application's §5 guarantee against its current state.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    fn check_invariants(&self) -> Result<(), InvariantError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal policy: budget n/2, no interval, one broadcast per
    /// iteration.
    struct HalfPolicy;

    impl IterationPolicy for HalfPolicy {
        fn plan(&mut self, tree: &DynamicTree) -> IterationPlan {
            let n = tree.node_count() as u64;
            IterationPlan {
                budget: (n / 2).max(1),
                waste: (n / 4).max(1),
                interval: None,
                announce_messages: n,
            }
        }
    }

    fn driver(n: usize, seed: u64) -> IterationDriver<HalfPolicy> {
        IterationDriver::new(
            SimConfig::new(seed),
            DynamicTree::with_initial_star(n),
            HalfPolicy,
        )
        .unwrap()
    }

    #[test]
    fn construction_emits_the_first_iteration_event() {
        let mut d = driver(10, 1);
        assert_eq!(d.iterations(), 1);
        assert_eq!(d.estimate(), 11);
        let events = d.drain_events();
        assert_eq!(
            events,
            vec![AppEvent::IterationStarted {
                index: 1,
                estimate: 11
            }]
        );
    }

    #[test]
    fn tickets_survive_iteration_rotations() {
        let mut d = driver(7, 2);
        // Budget 4: submitting 10 leaf requests forces at least one
        // exhaustion + rotation, yet every ticket resolves.
        let root = d.tree().root();
        let ids: Vec<RequestId> = (0..10)
            .map(|_| d.submit(root, RequestKind::AddLeaf).unwrap())
            .collect();
        d.run_to_quiescence().unwrap();
        assert!(d.iterations() > 1, "rotation expected");
        for id in &ids {
            assert!(
                d.outcome(*id).is_some_and(|o| o.is_granted()),
                "{id} unresolved"
            );
        }
        // Ticket ids are unique and stable.
        let mut sorted: Vec<_> = ids.iter().map(|r| r.0).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
        // The event stream contains the rotation announcements and exactly
        // one answer per ticket.
        let events = d.drain_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, AppEvent::IterationStarted { .. }))
            .count();
        assert_eq!(starts as u32, d.iterations());
        assert_eq!(events.iter().filter(|e| e.is_answer()).count(), 10);
    }

    #[test]
    fn bounded_steps_interleave_submission_with_execution() {
        let mut d = IterationDriver::new(
            SimConfig::new(3),
            DynamicTree::with_initial_path(20),
            HalfPolicy,
        )
        .unwrap();
        let deep = d.tree().nodes().max_by_key(|&n| d.tree().depth(n)).unwrap();
        d.submit(deep, RequestKind::AddLeaf).unwrap();
        // A tiny slice leaves the request's agent in flight…
        let p = d.step(2).unwrap();
        assert_eq!(p.processed, 2);
        assert!(!p.quiescent);
        // …while a second request arrives mid-flight.
        d.submit(deep, RequestKind::AddLeaf).unwrap();
        let mut total = p.processed;
        loop {
            let p = d.step(64).unwrap();
            total += p.processed;
            if p.quiescent {
                break;
            }
        }
        assert!(total > 2);
        assert_eq!(d.changes(), 2);
        assert_eq!(d.records().len(), 2);
    }

    #[test]
    fn wave_charges_accumulate_across_rotations() {
        let mut d = driver(9, 4);
        let root = d.tree().root();
        for _ in 0..12 {
            d.submit(root, RequestKind::AddLeaf).unwrap();
        }
        d.run_to_quiescence().unwrap();
        let controller_only = d.finished_messages + d.inner().messages();
        assert!(d.iterations() >= 2);
        // Announce (n per iteration) + closing waves (2n per rotation) are
        // charged on top of controller messages.
        assert!(d.messages() > controller_only);
        d.charge_messages(5);
        assert_eq!(d.messages(), controller_only + d.aux_messages);
    }

    #[test]
    fn submit_validates_against_the_current_tree() {
        let mut d = driver(4, 5);
        let root = d.tree().root();
        assert!(matches!(
            d.submit(NodeId::from_index(999), RequestKind::AddLeaf),
            Err(ControllerError::UnknownNode(_))
        ));
        assert!(matches!(
            d.submit(root, RequestKind::RemoveSelf),
            Err(ControllerError::CannotRemoveRoot)
        ));
    }

    #[test]
    fn duplicate_and_dependent_requests_all_resolve() {
        let mut d = driver(6, 6);
        let leaf = d.tree().nodes().find(|&n| n != d.tree().root()).unwrap();
        // Queue a removal of the leaf twice plus an insertion below it: every
        // ticket must resolve to a final outcome — none may hang — and the
        // tree must end up consistent with the leaf gone.
        let ids = vec![
            d.submit(leaf, RequestKind::RemoveSelf).unwrap(),
            d.submit(leaf, RequestKind::RemoveSelf).unwrap(),
            d.submit(leaf, RequestKind::AddLeaf).unwrap(),
        ];
        d.run_to_quiescence().unwrap();
        for id in &ids {
            assert!(d.outcome(*id).is_some(), "{id} unresolved");
        }
        assert!(!d.tree().contains(leaf));
        assert!(d.tree().check_invariants().is_ok());
    }

    #[test]
    fn run_batch_returns_exactly_this_batch_in_answer_order() {
        let mut d = driver(8, 7);
        let root = d.tree().root();
        let first = d.run_batch(&[(root, RequestKind::AddLeaf); 3]).unwrap();
        assert_eq!(first.len(), 3);
        let second = d.run_batch(&[(root, RequestKind::AddLeaf); 2]).unwrap();
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|r| r.outcome.is_granted()));
        assert_eq!(d.records().len(), 5);
    }
}

//! The heavy-child decomposition (Theorem 5.4).

use crate::driver::{AppEvent, Application};
use crate::invariant::InvariantError;
use crate::subtree::SubtreeEstimator;
use dcn_collections::SecondaryMap;
use dcn_controller::Progress;
use dcn_controller::{ControllerError, RequestId, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// A dynamically maintained heavy-child decomposition: every internal node `v`
/// holds a pointer `µ(v)` to one of its children (its *heavy* child); all
/// other children are *light*. The decomposition guarantees that every node
/// has `O(log n)` light ancestors at all times.
///
/// Following §5.3, the pointers are driven by the subtree estimator with
/// `β = √3`: each node points at the child with the largest super-weight
/// estimate, which guarantees that every light child's super-weight is at most
/// 3/4 of its parent's.
#[derive(Debug)]
pub struct HeavyChildDecomposition {
    subtree: SubtreeEstimator,
    heavy: SecondaryMap<NodeId, NodeId>,
}

impl HeavyChildDecomposition {
    /// Creates the decomposition over `tree`.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree) -> Result<Self, ControllerError> {
        let subtree = SubtreeEstimator::new(config, tree, f64::sqrt(3.0))?;
        let mut decomposition = HeavyChildDecomposition {
            subtree,
            heavy: SecondaryMap::new(),
        };
        decomposition.refresh_pointers();
        Ok(decomposition)
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.subtree.tree()
    }

    /// The underlying subtree estimator.
    pub fn subtree_estimator(&self) -> &SubtreeEstimator {
        &self.subtree
    }

    /// The heavy child of `node`, if `node` is internal.
    pub fn heavy_child(&self, node: NodeId) -> Option<NodeId> {
        self.heavy.get(node).copied()
    }

    /// Total messages so far (estimator messages plus pointer maintenance,
    /// both charged through the shared driver).
    pub fn messages(&self) -> u64 {
        self.subtree.messages()
    }

    /// Number of *light* ancestors of `node` (ancestors `a` such that the
    /// child of `a` on the path to `node` is not `a`'s heavy child).
    pub fn light_ancestor_count(&self, node: NodeId) -> usize {
        let tree = self.tree();
        let mut count = 0;
        let mut cur = node;
        while let Some(parent) = tree.parent(cur) {
            if self.heavy.get(parent) != Some(&cur) {
                count += 1;
            }
            cur = parent;
        }
        count
    }

    /// The maximum number of light ancestors over all existing nodes — the
    /// quantity Theorem 5.4 bounds by `O(log n)`.
    pub fn max_light_ancestors(&self) -> usize {
        self.tree()
            .nodes()
            .map(|n| self.light_ancestor_count(n))
            .max()
            .unwrap_or(0)
    }

    /// Checks the decomposition quality: every node has at most
    /// `4·log2(n) + 8` light ancestors.
    ///
    /// # Errors
    ///
    /// Returns the violating node.
    pub fn check_light_depth(&self) -> Result<(), InvariantError> {
        let nodes = self.tree().node_count();
        let n = nodes.max(2) as f64;
        let bound = (4.0 * n.log2() + 8.0) as usize;
        for node in self.tree().nodes() {
            let light = self.light_ancestor_count(node);
            if light > bound {
                return Err(InvariantError::LightAncestorsExceeded {
                    node,
                    light,
                    bound,
                    nodes,
                });
            }
        }
        Ok(())
    }

    /// Recomputes every pointer from the current estimates. A pointer flip (or
    /// a fresh pointer) corresponds to a message from the child that reported
    /// a new largest estimate, so flips are charged one message each through
    /// the shared driver.
    fn refresh_pointers(&mut self) {
        let mut flips = 0u64;
        let mut new_heavy = SecondaryMap::new();
        {
            let tree = self.subtree.tree();
            for node in tree.nodes() {
                // lint: allow(unwrap) `node` was yielded by tree.nodes()
                let children = tree.children(node).expect("node exists");
                if children.is_empty() {
                    continue;
                }
                let best = children
                    .iter()
                    .copied()
                    .max_by_key(|&c| (self.subtree.estimate(c), std::cmp::Reverse(c)))
                    // lint: allow(unwrap) the is_empty() branch above returned
                    .expect("non-empty children");
                if self.heavy.get(node) != Some(&best) {
                    flips += 1;
                }
                new_heavy.insert(node, best);
            }
        }
        self.heavy = new_heavy;
        self.subtree.charge_pointer_messages(flips);
    }

    /// Submits one request under a stable ticket.
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.subtree.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events; the heavy
    /// pointers are refreshed from the updated estimates once the slice
    /// reaches quiescence (pointers, like the other §5 guarantees, are only
    /// owed at quiescent points — refreshing a full-tree scan per bounded
    /// slice would be pure overhead).
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let progress = self.subtree.step(budget)?;
        if progress.quiescent {
            self.refresh_pointers();
        }
        Ok(progress)
    }

    /// Runs until every submitted ticket has a final answer, then refreshes
    /// the pointers.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.subtree.run_to_quiescence()?;
        self.refresh_pointers();
        Ok(())
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.subtree.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.subtree.records()
    }

    /// Submits a batch of requests, runs the network, and refreshes the heavy
    /// pointers from the updated estimates.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let records = self.subtree.run_batch(ops)?;
        self.refresh_pointers();
        Ok(records)
    }
}

impl Application for HeavyChildDecomposition {
    fn name(&self) -> &'static str {
        "heavy-child"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        HeavyChildDecomposition::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        HeavyChildDecomposition::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        HeavyChildDecomposition::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        HeavyChildDecomposition::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        HeavyChildDecomposition::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        HeavyChildDecomposition::tree(self)
    }

    fn iterations(&self) -> u32 {
        Application::iterations(&self.subtree)
    }

    fn changes(&self) -> u64 {
        Application::changes(&self.subtree)
    }

    fn messages(&self) -> u64 {
        HeavyChildDecomposition::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        self.check_light_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_decomposition_of_a_path_has_no_light_ancestors() {
        let tree = DynamicTree::with_initial_path(20);
        let decomposition = HeavyChildDecomposition::new(SimConfig::new(21), tree).unwrap();
        assert_eq!(decomposition.max_light_ancestors(), 0);
    }

    #[test]
    fn light_ancestors_stay_logarithmic_under_growth() {
        let tree = DynamicTree::with_initial_star(10);
        let mut decomposition = HeavyChildDecomposition::new(SimConfig::new(22), tree).unwrap();
        for round in 0..12usize {
            let nodes: Vec<NodeId> = decomposition.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .skip(round % 2)
                .step_by(3)
                .take(6)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            decomposition.run_batch(&batch).unwrap();
            decomposition.check_light_depth().unwrap();
        }
        assert!(decomposition.tree().node_count() > 50);
    }

    #[test]
    fn heavy_pointer_follows_the_bulkier_subtree() {
        // Root with two children: one child grows a long chain, the other
        // stays a leaf; the root's heavy pointer must select the big subtree.
        let mut tree = DynamicTree::new();
        let big = tree.add_leaf(tree.root()).unwrap();
        let _small = tree.add_leaf(tree.root()).unwrap();
        let mut cur = big;
        for _ in 0..20 {
            cur = tree.add_leaf(cur).unwrap();
        }
        tree.clear_change_log();
        let decomposition = HeavyChildDecomposition::new(SimConfig::new(23), tree).unwrap();
        assert_eq!(
            decomposition.heavy_child(decomposition.tree().root()),
            Some(big)
        );
    }
}

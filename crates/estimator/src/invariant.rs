//! The shared invariant-violation type of the §5 applications.
//!
//! Every application exposes `check_invariants() -> Result<(), InvariantError>`;
//! the variants below enumerate every §5 guarantee the workspace verifies, so
//! drivers (the scenario runner, the sweep engine, the experiment binaries)
//! report violations uniformly instead of juggling per-app `bool`s and
//! free-text strings.

use dcn_tree::NodeId;
use std::fmt;

/// A violated §5 application guarantee.
///
/// Which variants an application can produce follows its theorem: the size
/// estimator checks the β-band of Theorem 5.1, the name assigner the
/// uniqueness/range guarantees of Theorem 5.2, the subtree estimator the
/// approximation of Lemma 5.3, the heavy-child decomposition the
/// light-ancestor bound of Theorem 5.4, the ancestry labeling the
/// correctness/size guarantees of Corollary 5.7, and majority commitment the
/// §1.3 safety property.
#[derive(Clone, Debug, PartialEq)]
pub enum InvariantError {
    /// Theorem 5.1: the size estimate `ñ` left the band `n/β ≤ ñ ≤ β·n`.
    EstimateOutOfBand {
        /// The estimate held by every node.
        estimate: u64,
        /// The current network size.
        nodes: usize,
        /// The approximation factor β.
        beta: f64,
    },
    /// Theorem 5.2: an existing node holds no identity.
    MissingIdentity {
        /// The unnamed node.
        node: NodeId,
    },
    /// Theorem 5.2: an identity lies outside `[1, 4n]`.
    IdentityOutOfRange {
        /// The node carrying the identity.
        node: NodeId,
        /// The out-of-range identity.
        id: u64,
        /// The current upper bound `4n`.
        bound: u64,
    },
    /// Theorem 5.2: two nodes hold the same identity.
    DuplicateIdentity {
        /// The shared identity.
        id: u64,
        /// The node that held it first.
        first: NodeId,
        /// The node that collided with it.
        second: NodeId,
    },
    /// Lemma 5.3: a super-weight estimate left its tolerance band.
    SuperWeightOutOfBand {
        /// The node whose estimate is out of range.
        node: NodeId,
        /// The estimate `ω̃(v)`.
        estimate: u64,
        /// The true super-weight.
        truth: u64,
        /// The two-sided tolerance factor (β²).
        tolerance: f64,
    },
    /// Theorem 5.4: a node has more light ancestors than the `O(log n)`
    /// bound allows.
    LightAncestorsExceeded {
        /// The too-deep node.
        node: NodeId,
        /// Its light-ancestor count.
        light: usize,
        /// The bound that was exceeded.
        bound: usize,
        /// The current network size.
        nodes: usize,
    },
    /// Corollary 5.7: an existing node has no label.
    MissingLabel {
        /// The unlabeled node.
        node: NodeId,
    },
    /// Corollary 5.7: label containment disagrees with tree ancestry.
    AncestryMismatch {
        /// The prospective ancestor.
        ancestor: NodeId,
        /// The prospective descendant.
        descendant: NodeId,
        /// What the labels claim.
        by_label: bool,
        /// What the tree says.
        by_tree: bool,
    },
    /// Corollary 5.7: a label outgrew the `O(log n)` size bound.
    LabelTooWide {
        /// The widest label's size in bits.
        bits: u32,
        /// The bound that was exceeded.
        bound: u32,
        /// The current network size.
        nodes: usize,
    },
    /// §1.3 safety: the coordinator committed without a strict majority of
    /// the current network.
    UnsafeCommit {
        /// Commit votes among existing nodes.
        commits: u64,
        /// The current network size.
        nodes: usize,
    },
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            InvariantError::EstimateOutOfBand {
                estimate,
                nodes,
                beta,
            } => write!(
                f,
                "estimate {estimate} outside [{nodes}/{beta}, {beta}·{nodes}]"
            ),
            InvariantError::MissingIdentity { node } => write!(f, "node {node} has no identity"),
            InvariantError::IdentityOutOfRange { node, id, bound } => {
                write!(f, "node {node} has identity {id} outside [1, {bound}]")
            }
            InvariantError::DuplicateIdentity { id, first, second } => {
                write!(f, "identity {id} assigned to both {first} and {second}")
            }
            InvariantError::SuperWeightOutOfBand {
                node,
                estimate,
                truth,
                tolerance,
            } => write!(
                f,
                "super-weight estimate {estimate} for {node} outside \
                 [{:.2}, {:.2}] (true super-weight {truth})",
                truth as f64 / tolerance,
                truth as f64 * tolerance
            ),
            InvariantError::LightAncestorsExceeded {
                node,
                light,
                bound,
                nodes,
            } => write!(
                f,
                "node {node} has {light} light ancestors, above the bound {bound} (n = {nodes})"
            ),
            InvariantError::MissingLabel { node } => write!(f, "node {node} has no label"),
            InvariantError::AncestryMismatch {
                ancestor,
                descendant,
                by_label,
                by_tree,
            } => write!(
                f,
                "ancestry({ancestor}, {descendant}) disagrees: labels say {by_label}, \
                 tree says {by_tree}"
            ),
            InvariantError::LabelTooWide { bits, bound, nodes } => write!(
                f,
                "labels use {bits} bits, above the O(log n) bound {bound} (n = {nodes})"
            ),
            InvariantError::UnsafeCommit { commits, nodes } => write!(
                f,
                "committed with only {commits} commit votes among {nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for InvariantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_displays_its_key_numbers() {
        let node = NodeId::from_index(3);
        let cases: Vec<(InvariantError, &str)> = vec![
            (
                InvariantError::EstimateOutOfBand {
                    estimate: 9,
                    nodes: 100,
                    beta: 2.0,
                },
                "estimate 9",
            ),
            (InvariantError::MissingIdentity { node }, "no identity"),
            (
                InvariantError::IdentityOutOfRange {
                    node,
                    id: 99,
                    bound: 40,
                },
                "identity 99",
            ),
            (
                InvariantError::DuplicateIdentity {
                    id: 7,
                    first: node,
                    second: node,
                },
                "identity 7",
            ),
            (
                InvariantError::SuperWeightOutOfBand {
                    node,
                    estimate: 50,
                    truth: 10,
                    tolerance: 3.0,
                },
                "super-weight estimate 50",
            ),
            (
                InvariantError::LightAncestorsExceeded {
                    node,
                    light: 40,
                    bound: 20,
                    nodes: 64,
                },
                "40 light ancestors",
            ),
            (InvariantError::MissingLabel { node }, "no label"),
            (
                InvariantError::AncestryMismatch {
                    ancestor: node,
                    descendant: node,
                    by_label: true,
                    by_tree: false,
                },
                "disagrees",
            ),
            (
                InvariantError::LabelTooWide {
                    bits: 70,
                    bound: 20,
                    nodes: 8,
                },
                "70 bits",
            ),
            (
                InvariantError::UnsafeCommit {
                    commits: 2,
                    nodes: 9,
                },
                "2 commit votes",
            ),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} missing {needle:?}");
        }
    }
}

//! Dynamic ancestry labeling (Corollary 5.7).

use crate::driver::{AppEvent, Application};
use crate::invariant::InvariantError;
use crate::size::SizeEstimator;
use dcn_collections::SecondaryMap;
use dcn_controller::Progress;
use dcn_controller::{ControllerError, RequestId, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// An interval label: `u` is an ancestor of `v` iff `u`'s interval contains
/// `v`'s interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AncestryLabel {
    /// DFS entry time.
    pub low: u64,
    /// DFS exit time (inclusive).
    pub high: u64,
}

impl AncestryLabel {
    /// Returns `true` if the node carrying `self` is an ancestor of the node
    /// carrying `other` (a node is its own ancestor).
    pub fn is_ancestor_of(&self, other: &AncestryLabel) -> bool {
        self.low <= other.low && other.high <= self.high
    }

    /// Number of bits needed to encode this label (two numbers).
    pub fn bits(&self) -> u32 {
        2 * (64 - self.high.max(1).leading_zeros())
    }
}

/// A dynamic ancestry labeling scheme for trees under controlled deletions of
/// both leaves and internal nodes (Corollary 5.7).
///
/// Deletions never invalidate interval containment, so the labels of surviving
/// nodes stay *correct* for free; what degrades is their *size*: after heavy
/// shrinkage, labels are long relative to `log n`. The size-estimation
/// protocol detects the shrinkage (its per-iteration estimate halves) and
/// triggers a global re-labeling, which keeps the label length at
/// `O(log n)` bits while paying only `O(n)` messages per halving.
#[derive(Debug)]
pub struct AncestryLabeling {
    size: SizeEstimator,
    labels: SecondaryMap<NodeId, AncestryLabel>,
    /// The node count at the time of the last re-labeling.
    labeled_at: u64,
    relabels: u32,
}

impl AncestryLabeling {
    /// Creates the labeling over `tree`; all current nodes are labeled.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree) -> Result<Self, ControllerError> {
        let size = SizeEstimator::new(config, tree, 2.0)?;
        let mut labeling = AncestryLabeling {
            size,
            labels: SecondaryMap::new(),
            labeled_at: 0,
            relabels: 0,
        };
        labeling.relabel();
        Ok(labeling)
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.size.tree()
    }

    /// The label of `node`, if it exists and has been labeled.
    pub fn label(&self, node: NodeId) -> Option<AncestryLabel> {
        self.labels.get(node).copied()
    }

    /// Number of global re-labelings performed so far.
    pub fn relabels(&self) -> u32 {
        self.relabels
    }

    /// Total messages so far (size-estimation messages plus re-labeling
    /// traversals, charged through the shared driver).
    pub fn messages(&self) -> u64 {
        self.size.messages()
    }

    /// Maximum label size over existing nodes, in bits.
    pub fn max_label_bits(&self) -> u32 {
        self.tree()
            .nodes()
            .filter_map(|n| self.labels.get(n))
            .map(AncestryLabel::bits)
            .max()
            .unwrap_or(0)
    }

    /// Answers an ancestry query purely from the two labels.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> Option<bool> {
        Some(self.labels.get(anc)?.is_ancestor_of(self.labels.get(desc)?))
    }

    /// Checks that every existing node is labeled, that label-based ancestry
    /// agrees with the tree, and that label sizes are `O(log n)`
    /// (at most `2·(log2(n) + 3)` bits per coordinate pair after the scheme's
    /// own re-labeling policy).
    ///
    /// # Errors
    ///
    /// Returns the first violation.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        let tree = self.tree();
        let nodes: Vec<NodeId> = tree.nodes().collect();
        for &v in &nodes {
            if !self.labels.contains_key(v) {
                return Err(InvariantError::MissingLabel { node: v });
            }
        }
        // Ancestry agreement on a sample of pairs (all pairs for small trees).
        for &u in nodes.iter().step_by(1 + nodes.len() / 32) {
            for &v in nodes.iter().step_by(1 + nodes.len() / 32) {
                // lint: allow(unwrap) u and v come from the freshly labeled
                // node list, so both lookups succeed
                let by_label = self.is_ancestor(u, v).expect("both labeled");
                let by_tree = tree.is_ancestor(u, v);
                if by_label != by_tree {
                    return Err(InvariantError::AncestryMismatch {
                        ancestor: u,
                        descendant: v,
                        by_label,
                        by_tree,
                    });
                }
            }
        }
        let count = tree.node_count();
        let n = count.max(2) as f64;
        let max_bits = self.max_label_bits();
        let bound = 2 * (n.log2().ceil() as u32 + 3);
        if max_bits > bound {
            return Err(InvariantError::LabelTooWide {
                bits: max_bits,
                bound,
                nodes: count,
            });
        }
        Ok(())
    }

    /// Re-labels every existing node with fresh DFS intervals (charged as one
    /// traversal of the tree through the shared driver).
    fn relabel(&mut self) {
        let charge;
        {
            let tree = self.size.tree();
            self.labels.clear();
            // Iterative DFS computing [entry, exit] intervals.
            let mut counter = 0u64;
            let mut stack: Vec<(NodeId, bool)> = vec![(tree.root(), false)];
            let mut entry: SecondaryMap<NodeId, u64> = SecondaryMap::new();
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    // lint: allow(unwrap) the first-visit arm below inserts
                    // the entry before pushing the expanded marker
                    let low = *entry.get(node).expect("entry recorded on first visit");
                    self.labels
                        .insert(node, AncestryLabel { low, high: counter });
                    continue;
                }
                counter += 1;
                entry.insert(node, counter);
                stack.push((node, true));
                // lint: allow(unwrap) the stack only holds live tree nodes
                for &child in tree.children(node).expect("node exists").iter().rev() {
                    stack.push((child, false));
                }
            }
            self.labeled_at = tree.node_count() as u64;
            charge = 2 * tree.node_count() as u64;
        }
        self.relabels += 1;
        self.size.driver_mut().charge_messages(charge);
    }

    /// Drops labels of deleted nodes and re-labels when the network halved
    /// since the last labeling (or when new nodes are waiting for a label).
    fn sync(&mut self) {
        // Probe the tree arena directly — membership is an O(1) slot check,
        // so no snapshot set of all nodes is materialised per sync.
        let tree = self.size.tree();
        self.labels.retain(|node, _| tree.contains(node));
        let n = tree.node_count() as u64;
        let unlabeled = tree.nodes().any(|v| !self.labels.contains_key(v));
        if n <= self.labeled_at / 2 || unlabeled {
            self.relabel();
        }
    }

    /// Submits one request under a stable ticket.
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.size.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events, keeping the
    /// labeling current.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let progress = self.size.step(budget)?;
        self.sync();
        Ok(progress)
    }

    /// Runs until every submitted ticket has a final answer, then brings the
    /// labeling up to date.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.size.run_to_quiescence()?;
        self.sync();
        Ok(())
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.size.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.size.records()
    }

    /// Submits a batch of requests (typically deletions, but insertions are
    /// handled too by labeling new nodes as they appear), and re-labels when
    /// the network has shrunk to half the size it had at the last labeling.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let records = self.size.run_batch(ops)?;
        self.sync();
        Ok(records)
    }
}

impl Application for AncestryLabeling {
    fn name(&self) -> &'static str {
        "ancestry-labeling"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        AncestryLabeling::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        AncestryLabeling::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        AncestryLabeling::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        AncestryLabeling::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        AncestryLabeling::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        AncestryLabeling::tree(self)
    }

    fn iterations(&self) -> u32 {
        self.size.iterations()
    }

    fn changes(&self) -> u64 {
        self.size.changes()
    }

    fn messages(&self) -> u64 {
        AncestryLabeling::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        AncestryLabeling::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_containment_matches_ancestry() {
        let tree = DynamicTree::with_initial_path(12);
        let labeling = AncestryLabeling::new(SimConfig::new(31), tree).unwrap();
        labeling.check_invariants().unwrap();
        let root = labeling.tree().root();
        let deep = labeling
            .tree()
            .nodes()
            .max_by_key(|&n| labeling.tree().depth(n))
            .unwrap();
        assert_eq!(labeling.is_ancestor(root, deep), Some(true));
        assert_eq!(labeling.is_ancestor(deep, root), Some(false));
    }

    #[test]
    fn deletions_keep_labels_correct_and_shrinkage_triggers_relabeling() {
        let tree = DynamicTree::with_initial_star(120);
        let mut labeling = AncestryLabeling::new(SimConfig::new(32), tree).unwrap();
        let initial_relabels = labeling.relabels();
        for _ in 0..30 {
            let victims: Vec<(NodeId, RequestKind)> = labeling
                .tree()
                .nodes()
                .filter(|&n| n != labeling.tree().root())
                .take(4)
                .map(|n| (n, RequestKind::RemoveSelf))
                .collect();
            if victims.is_empty() {
                break;
            }
            labeling.run_batch(&victims).unwrap();
            labeling.check_invariants().unwrap();
        }
        assert!(labeling.tree().node_count() < 40);
        assert!(
            labeling.relabels() > initial_relabels,
            "halving the network must trigger a re-label"
        );
    }

    #[test]
    fn insertions_receive_labels_and_queries_stay_consistent() {
        let tree = DynamicTree::with_initial_path(6);
        let mut labeling = AncestryLabeling::new(SimConfig::new(33), tree).unwrap();
        let deep = labeling
            .tree()
            .nodes()
            .max_by_key(|&n| labeling.tree().depth(n))
            .unwrap();
        labeling
            .run_batch(&[(deep, RequestKind::AddLeaf), (deep, RequestKind::AddLeaf)])
            .unwrap();
        labeling.check_invariants().unwrap();
    }
}

//! # dcn-estimator — size estimation, name assignment, heavy-child
//! decomposition and dynamic labeling (paper §5)
//!
//! The (M, W)-Controller is a building block; this crate implements the
//! applications the paper derives from it, all operating under the general
//! dynamic model (insertions and deletions of leaves and internal nodes):
//!
//! * [`SizeEstimator`] — every node holds a `β`-approximation `ñ` of the
//!   current network size, at `O(log² n)` amortized messages per topological
//!   change (Theorem 5.1);
//! * [`NameAssigner`] — every node holds a unique identity in `[1, 4n]`
//!   (Theorem 5.2), using the controller in *interval mode* so that permits are
//!   serial numbers;
//! * [`SubtreeEstimator`] — every node holds a `β`-approximation of its
//!   *super-weight* (descendants that existed at any point in the current
//!   iteration, Lemma 5.3), read off the permits that passed through it;
//! * [`HeavyChildDecomposition`] — every internal node points at a heavy
//!   child such that every node has `O(log n)` light ancestors (Theorem 5.4);
//! * [`AncestryLabeling`] — a dynamic extension of the classical interval
//!   ancestry labeling that keeps labels of size `O(log n)` under controlled
//!   deletions by re-labeling when the size estimate shrinks (Corollary 5.7);
//! * [`MajorityCommitment`] — the Bar-Yehuda–Kutten majority-commitment
//!   protocol generalized to churning networks via the size estimator (§1.3,
//!   §1.4).
//!
//! ## Modelling note
//!
//! The iteration bookkeeping that the paper performs with broadcast/upcast
//! waves (announcing the fresh estimate `N_i`, counting nodes, re-running a
//! DFS numbering) is executed here at the driver level and *charged* to the
//! message counters (`O(n)` per wave), exactly as recorded in DESIGN.md. The
//! permit movement itself — the part whose cost the theorems bound — runs on
//! the real distributed controller over the asynchronous network simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heavy;
mod labeling;
mod majority;
mod names;
mod size;
mod subtree;

pub use heavy::HeavyChildDecomposition;
pub use labeling::AncestryLabeling;
pub use majority::{Decision, MajorityCommitment};
pub use names::NameAssigner;
pub use size::SizeEstimator;
pub use subtree::SubtreeEstimator;

pub use dcn_controller::{ControllerError, Outcome, RequestKind};
pub use dcn_tree::{DynamicTree, NodeId};

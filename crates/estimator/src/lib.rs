//! # dcn-estimator — size estimation, name assignment, heavy-child
//! decomposition and dynamic labeling (paper §5)
//!
//! The (M, W)-Controller is a building block; this crate implements the
//! applications the paper derives from it, all operating under the general
//! dynamic model (insertions and deletions of leaves and internal nodes):
//!
//! * [`SizeEstimator`] — every node holds a `β`-approximation `ñ` of the
//!   current network size, at `O(log² n)` amortized messages per topological
//!   change (Theorem 5.1);
//! * [`NameAssigner`] — every node holds a unique identity in `[1, 4n]`
//!   (Theorem 5.2), using the controller in *interval mode* so that permits are
//!   serial numbers;
//! * [`SubtreeEstimator`] — every node holds a `β`-approximation of its
//!   *super-weight* (descendants that existed at any point in the current
//!   iteration, Lemma 5.3), read off the permits that passed through it;
//! * [`HeavyChildDecomposition`] — every internal node points at a heavy
//!   child such that every node has `O(log n)` light ancestors (Theorem 5.4);
//! * [`AncestryLabeling`] — a dynamic extension of the classical interval
//!   ancestry labeling that keeps labels of size `O(log n)` under controlled
//!   deletions by re-labeling when the size estimate shrinks (Corollary 5.7);
//! * [`MajorityCommitment`] — the Bar-Yehuda–Kutten majority-commitment
//!   protocol generalized to churning networks via the size estimator (§1.3,
//!   §1.4).
//!
//! ## The shared iteration runtime
//!
//! All six applications run on the same epoch engine, the
//! [`IterationDriver`]: it owns the inner distributed controller of the
//! current iteration, detects exhaustion, charges the iteration-boundary
//! waves and rebuilds the controller with a derived seed, while each
//! application reduces to an [`IterationPolicy`] (per-iteration α/β budgets,
//! interval mode, renaming) plus its own invariant bookkeeping. The driver
//! exposes the same ticket/event/step seam as the controller runtime —
//! `submit` → [`RequestId`] tickets that survive
//! iteration rebuilds, bounded `step(budget)`, `drain_events()` streaming
//! [`AppEvent`]s (including [`AppEvent::IterationStarted`] at every epoch
//! boundary) and a `records()` history — and every application implements the
//! uniform [`Application`] trait over it, so the scenario runner and sweep
//! engine in `dcn-workload` drive the §5 protocols exactly as they drive the
//! controllers. Invariant violations are reported through the shared typed
//! [`InvariantError`].
//!
//! ## Modelling note
//!
//! The iteration bookkeeping that the paper performs with broadcast/upcast
//! waves (announcing the fresh estimate `N_i`, counting nodes, re-running a
//! DFS numbering) is executed here at the driver level and *charged* to the
//! message counters (`O(n)` per wave), exactly as recorded in DESIGN.md. The
//! permit movement itself — the part whose cost the theorems bound — runs on
//! the real distributed controller over the asynchronous network simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod heavy;
mod invariant;
mod labeling;
mod majority;
mod names;
mod size;
mod subtree;

pub use driver::{AppEvent, Application, IterationDriver, IterationPlan, IterationPolicy};
pub use heavy::HeavyChildDecomposition;
pub use invariant::InvariantError;
pub use labeling::{AncestryLabel, AncestryLabeling};
pub use majority::{Decision, MajorityCommitment};
pub use names::NameAssigner;
pub use size::SizeEstimator;
pub use subtree::SubtreeEstimator;

pub use dcn_controller::{ControllerError, Outcome, Progress, RequestId, RequestKind};
pub use dcn_tree::{DynamicTree, NodeId};

//! Majority commitment over a dynamic network (§1.3, §1.4).
//!
//! Bar-Yehuda and Kutten introduced asynchronous size estimation as the tool
//! for *majority commitment* (asynchronous two-phase commit in a network where
//! some nodes may never wake up): the coordinator may only commit once it is
//! certain that a majority of **all** nodes — not just of the nodes it has
//! heard from — voted to commit. The paper notes that its size-estimation
//! protocol generalizes majority commitment to networks that also undergo
//! controlled insertions and deletions of leaves and internal nodes.
//!
//! [`MajorityCommitment`] implements that generalization: votes travel to the
//! root along the tree (costing one message per hop, charged through the
//! shared driver), topological changes go through the size-estimation
//! protocol, and the coordinator commits only when the number of commit votes
//! reaches `⌈β·ñ/2⌉ + 1`, where `ñ` is the current size estimate. Since
//! `n ≤ β·ñ` at all times, this threshold guarantees a strict majority of the
//! *current* network, whatever the churn did.

use crate::driver::{AppEvent, Application};
use crate::invariant::InvariantError;
use crate::size::SizeEstimator;
use dcn_collections::SecondaryMap;
use dcn_controller::Progress;
use dcn_controller::{ControllerError, RequestId, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// The coordinator's decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// A guaranteed strict majority of the current network voted to commit.
    Commit,
    /// Too many nodes voted to abort for a commit majority to ever form among
    /// the nodes currently known.
    Abort,
}

/// Majority commitment driven by the β-size-estimation protocol.
///
/// ```
/// use dcn_estimator::{Decision, MajorityCommitment};
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(8);
/// let mut mc = MajorityCommitment::new(SimConfig::new(1), tree, 2.0)?;
/// for node in mc.tree().nodes().collect::<Vec<_>>() {
///     mc.cast_vote(node, true)?;
/// }
/// assert_eq!(mc.decision(), Some(Decision::Commit));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MajorityCommitment {
    size: SizeEstimator,
    // Vote sets are node-keyed, so they are dense secondary maps (the unit
    // value makes them sets); membership is an O(1) slot probe.
    commit_votes: SecondaryMap<NodeId, ()>,
    abort_votes: SecondaryMap<NodeId, ()>,
    decision: Option<Decision>,
}

impl MajorityCommitment {
    /// Creates the protocol over `tree` with the given approximation factor
    /// for the underlying size estimator.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 1` (forwarded from the size estimator).
    pub fn new(config: SimConfig, tree: DynamicTree, beta: f64) -> Result<Self, ControllerError> {
        Ok(MajorityCommitment {
            size: SizeEstimator::new(config, tree, beta)?,
            commit_votes: SecondaryMap::new(),
            abort_votes: SecondaryMap::new(),
            decision: None,
        })
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.size.tree()
    }

    /// The underlying size estimator.
    pub fn size_estimator(&self) -> &SizeEstimator {
        &self.size
    }

    /// The commit threshold implied by the current size estimate: reaching it
    /// guarantees a strict majority of the current network.
    ///
    /// The size-estimation protocol guarantees (§5.1) that during an iteration
    /// with announced estimate `ñ = N_i`, the true size satisfies
    /// `n ≤ (2 − 1/β)·ñ`; any vote count strictly above half of that upper
    /// bound is therefore a strict majority of the current network.
    pub fn commit_threshold(&self) -> u64 {
        let beta = self.size.beta();
        let upper = (2.0 - 1.0 / beta) * self.size.estimate() as f64;
        (upper / 2.0).floor() as u64 + 1
    }

    /// The largest number of nodes the current network can possibly contain,
    /// given the estimate (the `(2 − 1/β)·ñ` bound of §5.1).
    fn size_upper_bound(&self) -> u64 {
        let beta = self.size.beta();
        ((2.0 - 1.0 / beta) * self.size.estimate() as f64).ceil() as u64
    }

    /// Number of commit votes received from nodes that still exist.
    pub fn commit_votes(&self) -> u64 {
        self.commit_votes
            .keys()
            .filter(|&v| self.tree().contains(v))
            .count() as u64
    }

    /// Number of abort votes received from nodes that still exist.
    pub fn abort_votes(&self) -> u64 {
        self.abort_votes
            .keys()
            .filter(|&v| self.tree().contains(v))
            .count() as u64
    }

    /// The coordinator's decision, once one has been reached.
    pub fn decision(&self) -> Option<Decision> {
        self.decision
    }

    /// Total messages: size-estimation messages plus vote deliveries (both
    /// charged through the shared driver).
    pub fn messages(&self) -> u64 {
        self.size.messages()
    }

    /// Casts `node`'s vote (`true` = commit). The vote travels to the root,
    /// costing one message per hop. Re-votes are idempotent; votes after a
    /// decision are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ControllerError::UnknownNode`] if `node` does not exist.
    pub fn cast_vote(&mut self, node: NodeId, commit: bool) -> Result<(), ControllerError> {
        if !self.tree().contains(node) {
            return Err(ControllerError::UnknownNode(node));
        }
        if self.decision.is_some() {
            return Ok(());
        }
        let hops = self.tree().depth(node) as u64;
        self.size.driver_mut().charge_messages(hops);
        if commit {
            self.abort_votes.remove(node);
            self.commit_votes.insert(node, ());
        } else {
            self.commit_votes.remove(node);
            self.abort_votes.insert(node, ());
        }
        self.try_decide();
        Ok(())
    }

    /// Drops votes of departed nodes and re-checks whether a decision can be
    /// made.
    fn sync(&mut self) {
        // Probe the tree arena directly instead of materialising the full
        // node set on every sync — membership is an O(1) slot check.
        let tree = self.size.tree();
        self.commit_votes.retain(|v, _| tree.contains(v));
        self.abort_votes.retain(|v, _| tree.contains(v));
        self.try_decide();
    }

    /// Submits one topological-change request under a stable ticket.
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.size.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events, keeping the
    /// vote tallies consistent with the surviving nodes.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let progress = self.size.step(budget)?;
        self.sync();
        Ok(progress)
    }

    /// Runs until every submitted ticket has a final answer.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.size.run_to_quiescence()?;
        self.sync();
        Ok(())
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.size.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.size.records()
    }

    /// Applies a batch of topological-change requests through the underlying
    /// size-estimation protocol (the controlled dynamic model), then re-checks
    /// whether a decision can be made.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_churn(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let records = self.size.run_batch(ops)?;
        self.sync();
        Ok(records)
    }

    /// Checks the safety property of the protocol: if the coordinator has
    /// committed, a strict majority of the *current* network did vote commit.
    ///
    /// # Errors
    ///
    /// Returns [`InvariantError::UnsafeCommit`] on violation.
    pub fn check_safety(&self) -> Result<(), InvariantError> {
        if self.decision == Some(Decision::Commit) {
            let nodes = self.tree().node_count();
            let commits = self.commit_votes();
            if 2 * commits <= nodes as u64 {
                return Err(InvariantError::UnsafeCommit { commits, nodes });
            }
        }
        Ok(())
    }

    fn try_decide(&mut self) {
        if self.decision.is_some() {
            return;
        }
        let threshold = self.commit_threshold();
        if self.commit_votes() >= threshold {
            self.decision = Some(Decision::Commit);
            return;
        }
        // Abort when so many existing nodes voted abort that even if every
        // other node (including future joiners within this iteration's budget)
        // voted commit, the guaranteed-majority threshold could not be met.
        let optimistic_commits =
            self.commit_votes() + self.size_upper_bound().saturating_sub(self.votes_cast());
        if self.abort_votes() > 0 && optimistic_commits < threshold {
            self.decision = Some(Decision::Abort);
        }
    }

    fn votes_cast(&self) -> u64 {
        self.commit_votes() + self.abort_votes()
    }
}

impl Application for MajorityCommitment {
    fn name(&self) -> &'static str {
        "majority-commitment"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        MajorityCommitment::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        MajorityCommitment::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        MajorityCommitment::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        MajorityCommitment::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        MajorityCommitment::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        MajorityCommitment::tree(self)
    }

    fn iterations(&self) -> u32 {
        self.size.iterations()
    }

    fn changes(&self) -> u64 {
        self.size.changes()
    }

    fn messages(&self) -> u64 {
        MajorityCommitment::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        self.size.check_invariants()?;
        self.check_safety()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unanimous_commit_reaches_a_commit_decision() {
        let tree = DynamicTree::with_initial_star(9);
        let mut mc = MajorityCommitment::new(SimConfig::new(41), tree, 2.0).unwrap();
        for node in mc.tree().nodes().collect::<Vec<_>>() {
            mc.cast_vote(node, true).unwrap();
        }
        assert_eq!(mc.decision(), Some(Decision::Commit));
        mc.check_safety().unwrap();
        assert!(mc.messages() > 0);
    }

    #[test]
    fn a_bare_plurality_is_not_enough_under_uncertainty() {
        // With beta = 2 the coordinator must see beta·n/2 + 1 votes, so just
        // over half of the nodes is not sufficient when the estimate is loose.
        let tree = DynamicTree::with_initial_star(9);
        let mut mc = MajorityCommitment::new(SimConfig::new(42), tree, 2.0).unwrap();
        let nodes: Vec<NodeId> = mc.tree().nodes().collect();
        for &node in nodes.iter().take(6) {
            mc.cast_vote(node, true).unwrap();
        }
        assert_eq!(mc.decision(), None);
        mc.check_safety().unwrap();
    }

    #[test]
    fn heavy_abort_vote_leads_to_abort() {
        let tree = DynamicTree::with_initial_star(7);
        let mut mc = MajorityCommitment::new(SimConfig::new(43), tree, 2.0).unwrap();
        for node in mc.tree().nodes().collect::<Vec<_>>() {
            mc.cast_vote(node, false).unwrap();
        }
        assert_eq!(mc.decision(), Some(Decision::Abort));
        mc.check_safety().unwrap();
    }

    #[test]
    fn commit_safety_survives_churn_between_votes() {
        let tree = DynamicTree::with_initial_star(11);
        let mut mc = MajorityCommitment::new(SimConfig::new(44), tree, 2.0).unwrap();
        // Half the nodes vote commit, then the network grows, then the rest
        // vote; the decision may only appear once a guaranteed majority of the
        // *current* network has committed.
        let nodes: Vec<NodeId> = mc.tree().nodes().collect();
        for &node in nodes.iter().take(6) {
            mc.cast_vote(node, true).unwrap();
        }
        let root = mc.tree().root();
        mc.run_churn(&[(root, RequestKind::AddLeaf); 6]).unwrap();
        mc.check_safety().unwrap();
        for node in mc.tree().nodes().collect::<Vec<_>>() {
            mc.cast_vote(node, true).unwrap();
            mc.check_safety().unwrap();
        }
        assert_eq!(mc.decision(), Some(Decision::Commit));
    }

    #[test]
    fn votes_from_unknown_nodes_are_rejected() {
        let tree = DynamicTree::with_initial_star(3);
        let mut mc = MajorityCommitment::new(SimConfig::new(45), tree, 2.0).unwrap();
        assert!(mc.cast_vote(NodeId::from_index(99), true).is_err());
    }
}

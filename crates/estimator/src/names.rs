//! The name-assignment protocol (Theorem 5.2).

use crate::driver::{AppEvent, Application, IterationDriver, IterationPlan, IterationPolicy};
use crate::invariant::InvariantError;
use dcn_collections::{FxHashMap, SecondaryMap};
use dcn_controller::{
    ControllerError, Outcome, PermitInterval, Progress, RequestId, RequestKind, RequestRecord,
};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// The iteration policy of Theorem 5.2: each iteration opens with a DFS
/// renaming (two traversals, charged `4n`) that gives the `N_i` current
/// nodes the identities `1..=N_i`, and hands new joiners serial numbers
/// from the interval `(N_i, 3N_i/2]` via the controller's interval mode.
#[derive(Debug, Default)]
pub(crate) struct NamePolicy {
    ids: SecondaryMap<NodeId, u64>,
    /// Serial numbers granted to insertions but not yet matched to a node
    /// appearing in the tree (the simulator applies changes with a small
    /// lag behind the grant answer).
    pending_serials: Vec<u64>,
}

impl NamePolicy {
    pub(crate) fn ids(&self) -> &SecondaryMap<NodeId, u64> {
        &self.ids
    }
}

impl IterationPolicy for NamePolicy {
    fn plan(&mut self, tree: &DynamicTree) -> IterationPlan {
        let n = tree.node_count() as u64;
        // Two DFS traversals re-assign ids 1..=N_i (the paper's two-phase
        // renaming keeps ids unique throughout; both traversals are charged).
        self.ids.clear();
        self.pending_serials.clear();
        for (i, node) in tree.dfs(tree.root()).enumerate() {
            self.ids.insert(node, i as u64 + 1);
        }
        // New nodes draw identities from (N_i, 3N_i/2].
        let budget = (n / 2).max(1);
        IterationPlan {
            budget,
            waste: (n / 4).max(1).min(budget),
            interval: Some(PermitInterval::new(n + 1, n + budget)),
            announce_messages: 4 * n,
        }
    }

    fn absorb(&mut self, tree: &DynamicTree, records: &[RequestRecord]) {
        // Granted insertions carry their permit's serial number — the new
        // node's identity — in answer order.
        for rec in records {
            if let Outcome::Granted {
                serial: Some(s), ..
            } = rec.outcome
            {
                if matches!(
                    rec.kind,
                    RequestKind::AddLeaf | RequestKind::AddInternalAbove(_)
                ) {
                    self.pending_serials.push(s);
                }
            }
        }
        // Hand the serials to the nodes that appeared since the last absorb
        // (discovery order), and retire the identities of deleted nodes.
        let mut fresh: Vec<NodeId> = tree
            .nodes()
            .filter(|&n| !self.ids.contains_key(n))
            .collect();
        let take = fresh.len().min(self.pending_serials.len());
        for (node, serial) in fresh.drain(..take).zip(self.pending_serials.drain(..take)) {
            self.ids.insert(node, serial);
        }
        self.ids.retain(|node, _| tree.contains(node));
    }
}

/// The name-assignment protocol: every node holds a short unique identity —
/// an integer in `[1, 4n]` where `n` is the *current* number of nodes — under
/// insertions and deletions of both leaves and internal nodes.
///
/// Iteration `i` (driven by the shared [`IterationDriver`]) starts with a DFS
/// re-numbering that gives the current `N_i` nodes the identities `1..N_i`
/// (two traversals in the paper, so that the temporary and final ranges never
/// collide; charged `O(n)` messages). New nodes joining during the iteration
/// receive identities from the interval `[N_i + 1, 3N_i/2]`: the controller
/// runs in interval mode, so the permit a join request consumes *is* the new
/// node's identity.
///
/// ```
/// use dcn_estimator::NameAssigner;
/// use dcn_controller::RequestKind;
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(9);
/// let mut names = NameAssigner::new(SimConfig::new(1), tree)?;
/// let root = names.tree().root();
/// names.run_batch(&[(root, RequestKind::AddLeaf); 4])?;
/// names.check_invariants().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NameAssigner {
    driver: IterationDriver<NamePolicy>,
}

impl NameAssigner {
    /// Creates the name assigner over `tree`. Initial identities are assigned
    /// by a DFS numbering (`1..=n0`).
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree) -> Result<Self, ControllerError> {
        Ok(NameAssigner {
            driver: IterationDriver::new(config, tree, NamePolicy::default())?,
        })
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.driver.tree()
    }

    /// The identity currently assigned to `node`, if it exists.
    pub fn id_of(&self, node: NodeId) -> Option<u64> {
        self.driver.policy().ids().get(node).copied()
    }

    /// All current `(node, identity)` assignments, in node-index order.
    pub fn ids(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.driver.policy().ids().iter().map(|(n, &i)| (n, i))
    }

    /// Number of iterations (full renamings) performed so far.
    pub fn iterations(&self) -> u32 {
        self.driver.iterations()
    }

    /// Total messages so far (controller messages plus renaming traversals).
    pub fn messages(&self) -> u64 {
        self.driver.messages()
    }

    /// Number of topological changes granted so far.
    pub fn changes(&self) -> u64 {
        self.driver.changes()
    }

    /// Checks the protocol invariants: every existing node has an identity,
    /// identities are pairwise distinct, and every identity is at most `4n`.
    ///
    /// # Errors
    ///
    /// Returns the violated invariant.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        let tree = self.tree();
        let n = tree.node_count() as u64;
        let ids = self.driver.policy().ids();
        let mut seen: FxHashMap<u64, NodeId> = FxHashMap::default();
        for node in tree.nodes() {
            let Some(&id) = ids.get(node) else {
                return Err(InvariantError::MissingIdentity { node });
            };
            if id == 0 || id > 4 * n {
                return Err(InvariantError::IdentityOutOfRange {
                    node,
                    id,
                    bound: 4 * n,
                });
            }
            if let Some(first) = seen.insert(id, node) {
                return Err(InvariantError::DuplicateIdentity {
                    id,
                    first,
                    second: node,
                });
            }
        }
        Ok(())
    }

    /// Submits one request under a stable ticket (see
    /// [`IterationDriver::submit`]).
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.driver.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events, renaming as
    /// iterations exhaust; identity bookkeeping happens as answers are
    /// absorbed.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        self.driver.step(budget)
    }

    /// Runs until every submitted ticket has a final answer.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.driver.run_to_quiescence()
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.driver.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.driver.records()
    }

    /// Submits a batch of requests, runs the network, and maintains the
    /// identity assignment: granted insertions give their permit's serial
    /// number to the new node, deletions retire the deleted node's identity,
    /// and budget exhaustion triggers a renaming iteration.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        self.driver.run_batch(ops)
    }
}

impl Application for NameAssigner {
    fn name(&self) -> &'static str {
        "name-assigner"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        NameAssigner::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        NameAssigner::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        NameAssigner::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        NameAssigner::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        NameAssigner::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        NameAssigner::tree(self)
    }

    fn iterations(&self) -> u32 {
        NameAssigner::iterations(self)
    }

    fn changes(&self) -> u64 {
        NameAssigner::changes(self)
    }

    fn messages(&self) -> u64 {
        NameAssigner::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        NameAssigner::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_stay_unique_and_short_under_mixed_churn() {
        let tree = DynamicTree::with_initial_star(15);
        let mut names = NameAssigner::new(SimConfig::new(5), tree).unwrap();
        for round in 0..15usize {
            let nodes: Vec<NodeId> = names.tree().nodes().collect();
            let mut batch: Vec<(NodeId, RequestKind)> = Vec::new();
            for (i, &n) in nodes.iter().enumerate().take(6) {
                if round % 3 == 2 && i % 2 == 0 && n != names.tree().root() {
                    batch.push((n, RequestKind::RemoveSelf));
                } else {
                    batch.push((n, RequestKind::AddLeaf));
                }
            }
            names.run_batch(&batch).unwrap();
            names.check_invariants().unwrap();
        }
        assert!(names.iterations() >= 2, "churn must trigger renamings");
    }

    #[test]
    fn new_nodes_receive_serials_from_the_iteration_interval() {
        let tree = DynamicTree::with_initial_star(19);
        let n0 = 20u64;
        let mut names = NameAssigner::new(SimConfig::new(6), tree).unwrap();
        let root = names.tree().root();
        let records = names
            .run_batch(&[(root, RequestKind::AddLeaf), (root, RequestKind::AddLeaf)])
            .unwrap();
        assert_eq!(records.len(), 2);
        // Both new nodes exist and carry ids from (N_1, 3N_1/2].
        let new_ids: Vec<u64> = names
            .tree()
            .nodes()
            .filter(|&n| names.tree().parent(n) == Some(root) && n.index() >= n0 as usize)
            .filter_map(|n| names.id_of(n))
            .collect();
        assert_eq!(new_ids.len(), 2);
        for id in new_ids {
            assert!(id > n0 && id <= n0 + n0 / 2, "id {id} outside the interval");
        }
        names.check_invariants().unwrap();
    }

    #[test]
    fn deleted_nodes_lose_their_identities() {
        let tree = DynamicTree::with_initial_star(10);
        let mut names = NameAssigner::new(SimConfig::new(7), tree).unwrap();
        let victim = names
            .tree()
            .nodes()
            .find(|&n| n != names.tree().root())
            .unwrap();
        names
            .run_batch(&[(victim, RequestKind::RemoveSelf)])
            .unwrap();
        assert!(!names.tree().contains(victim));
        assert!(names.id_of(victim).is_none());
        names.check_invariants().unwrap();
    }

    #[test]
    fn incremental_stepping_keeps_identities_consistent_at_quiescence() {
        let tree = DynamicTree::with_initial_star(12);
        let mut names = NameAssigner::new(SimConfig::new(8), tree).unwrap();
        let root = names.tree().root();
        for _ in 0..9 {
            names.submit(root, RequestKind::AddLeaf).unwrap();
            // Tiny slices: identities must still be complete once quiescent.
            while !names.step(3).unwrap().quiescent {}
            names.check_invariants().unwrap();
        }
        assert_eq!(names.tree().node_count(), 22);
    }
}

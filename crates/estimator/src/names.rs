//! The name-assignment protocol (Theorem 5.2).

use dcn_controller::distributed::DistributedController;
use dcn_controller::{ControllerError, Outcome, PermitInterval, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;
use std::collections::HashMap;

/// The name-assignment protocol: every node holds a short unique identity —
/// an integer in `[1, 4n]` where `n` is the *current* number of nodes — under
/// insertions and deletions of both leaves and internal nodes.
///
/// Iteration `i` starts with a DFS re-numbering that gives the current `N_i`
/// nodes the identities `1..N_i` (two traversals in the paper, so that the
/// temporary and final ranges never collide; charged `O(n)` messages). New
/// nodes joining during the iteration receive identities from the interval
/// `[N_i + 1, 3N_i/2]`: the controller runs in interval mode, so the permit a
/// join request consumes *is* the new node's identity.
///
/// ```
/// use dcn_estimator::NameAssigner;
/// use dcn_controller::RequestKind;
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(9);
/// let mut names = NameAssigner::new(SimConfig::new(1), tree)?;
/// let root = names.tree().root();
/// names.run_batch(&[(root, RequestKind::AddLeaf); 4])?;
/// names.check_invariants().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NameAssigner {
    config: SimConfig,
    inner: Option<DistributedController>,
    ids: HashMap<NodeId, u64>,
    iterations: u32,
    aux_messages: u64,
    finished_messages: u64,
    seed_counter: u64,
}

impl NameAssigner {
    /// Creates the name assigner over `tree`. Initial identities are assigned
    /// by a DFS numbering (`1..=n0`).
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree) -> Result<Self, ControllerError> {
        let mut assigner = NameAssigner {
            config,
            inner: None,
            ids: HashMap::new(),
            iterations: 0,
            aux_messages: 0,
            finished_messages: 0,
            seed_counter: config.seed,
        };
        assigner.start_iteration(tree)?;
        Ok(assigner)
    }

    fn start_iteration(&mut self, tree: DynamicTree) -> Result<(), ControllerError> {
        let n = tree.node_count() as u64;
        self.iterations += 1;
        // Two DFS traversals re-assign ids 1..=N_i (the paper's two-phase
        // renaming keeps ids unique throughout; we charge both traversals).
        self.ids.clear();
        for (i, node) in tree.dfs(tree.root()).enumerate() {
            self.ids.insert(node, i as u64 + 1);
        }
        self.aux_messages += 4 * n;
        // New nodes draw identities from (N_i, 3N_i/2].
        let budget = (n / 2).max(1);
        let waste = (n / 4).max(1).min(budget);
        let interval = PermitInterval::new(n + 1, n + budget);
        let u_bound = tree.node_count() + budget as usize + 1;
        let mut cfg = self.config;
        cfg.seed = self.seed_counter;
        self.seed_counter = self.seed_counter.wrapping_add(1);
        let inner = DistributedController::with_interval(
            cfg,
            tree,
            budget,
            waste,
            u_bound,
            Some(interval),
        )?;
        self.inner = Some(inner);
        Ok(())
    }

    fn rotate_iteration(&mut self) -> Result<(), ControllerError> {
        let inner = self.inner.take().expect("inner controller present");
        self.finished_messages += inner.messages();
        let tree = inner.into_tree();
        self.aux_messages += 2 * tree.node_count() as u64;
        self.start_iteration(tree)
    }

    fn inner(&self) -> &DistributedController {
        self.inner.as_ref().expect("inner controller present")
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.inner().tree()
    }

    /// The identity currently assigned to `node`, if it exists.
    pub fn id_of(&self, node: NodeId) -> Option<u64> {
        self.ids.get(&node).copied()
    }

    /// All current `(node, identity)` assignments.
    pub fn ids(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.ids.iter().map(|(&n, &i)| (n, i))
    }

    /// Number of iterations (full renamings) performed so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Total messages so far (controller messages plus renaming traversals).
    pub fn messages(&self) -> u64 {
        self.finished_messages + self.inner().messages() + self.aux_messages
    }

    /// Checks the protocol invariants: every existing node has an identity,
    /// identities are pairwise distinct, and every identity is at most `4n`.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let tree = self.tree();
        let n = tree.node_count() as u64;
        let mut seen = HashMap::new();
        for node in tree.nodes() {
            let Some(id) = self.ids.get(&node) else {
                return Err(format!("node {node} has no identity"));
            };
            if *id == 0 || *id > 4 * n {
                return Err(format!(
                    "node {node} has identity {id} outside [1, 4n] (n = {n})"
                ));
            }
            if let Some(other) = seen.insert(*id, node) {
                return Err(format!("identity {id} assigned to both {other} and {node}"));
            }
        }
        Ok(())
    }

    /// Submits a batch of requests, runs the network, and maintains the
    /// identity assignment: granted insertions give their permit's serial
    /// number to the new node, deletions retire the deleted node's identity,
    /// and budget exhaustion triggers a renaming iteration.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let mut pending: Vec<(NodeId, RequestKind)> = ops.to_vec();
        let mut answered = Vec::new();
        let mut rounds = 0usize;
        while !pending.is_empty() {
            rounds += 1;
            if rounds > 64 {
                break;
            }
            let known_before: Vec<NodeId> = self.ids.keys().copied().collect();
            let inner = self.inner.as_mut().expect("inner controller present");
            for &(at, kind) in &pending {
                if !inner.tree().contains(at) {
                    continue;
                }
                if matches!(kind, RequestKind::AddInternalAbove(c) if inner.tree().parent(c) != Some(at))
                {
                    continue;
                }
                if matches!(kind, RequestKind::RemoveSelf) && at == inner.tree().root() {
                    continue;
                }
                inner.submit(at, kind)?;
            }
            inner.run()?;
            let records = inner.take_records();

            // Collect the serial numbers of granted insertions, in answer
            // order; hand them to the new nodes (in discovery order).
            let mut serials: Vec<u64> = Vec::new();
            let mut need_new_iteration = false;
            let mut next_pending = Vec::new();
            for rec in &records {
                match rec.outcome {
                    Outcome::Granted { serial, .. } => {
                        if matches!(
                            rec.kind,
                            RequestKind::AddLeaf | RequestKind::AddInternalAbove(_)
                        ) {
                            if let Some(s) = serial {
                                serials.push(s);
                            }
                        }
                        answered.push(*rec);
                    }
                    Outcome::Rejected => {
                        need_new_iteration = true;
                        next_pending.push((rec.origin, rec.kind));
                    }
                    // The fixed-bound distributed family supports the full
                    // dynamic model and never refuses.
                    Outcome::Refused => unreachable!("distributed controller never refuses"),
                }
            }
            let (new_nodes, existing): (Vec<NodeId>, Vec<NodeId>) = {
                let tree = self.inner().tree();
                (
                    tree.nodes().filter(|n| !known_before.contains(n)).collect(),
                    tree.nodes().collect(),
                )
            };
            for (node, serial) in new_nodes.iter().zip(serials.iter()) {
                self.ids.insert(*node, *serial);
            }
            // Retire identities of deleted nodes.
            self.ids.retain(|node, _| existing.contains(node));

            pending = next_pending;
            if need_new_iteration {
                self.rotate_iteration()?;
            }
        }
        Ok(answered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities_stay_unique_and_short_under_mixed_churn() {
        let tree = DynamicTree::with_initial_star(15);
        let mut names = NameAssigner::new(SimConfig::new(5), tree).unwrap();
        for round in 0..15usize {
            let nodes: Vec<NodeId> = names.tree().nodes().collect();
            let mut batch: Vec<(NodeId, RequestKind)> = Vec::new();
            for (i, &n) in nodes.iter().enumerate().take(6) {
                if round % 3 == 2 && i % 2 == 0 && n != names.tree().root() {
                    batch.push((n, RequestKind::RemoveSelf));
                } else {
                    batch.push((n, RequestKind::AddLeaf));
                }
            }
            names.run_batch(&batch).unwrap();
            names.check_invariants().unwrap();
        }
        assert!(names.iterations() >= 2, "churn must trigger renamings");
    }

    #[test]
    fn new_nodes_receive_serials_from_the_iteration_interval() {
        let tree = DynamicTree::with_initial_star(19);
        let n0 = 20u64;
        let mut names = NameAssigner::new(SimConfig::new(6), tree).unwrap();
        let root = names.tree().root();
        let records = names
            .run_batch(&[(root, RequestKind::AddLeaf), (root, RequestKind::AddLeaf)])
            .unwrap();
        assert_eq!(records.len(), 2);
        // Both new nodes exist and carry ids from (N_1, 3N_1/2].
        let new_ids: Vec<u64> = names
            .tree()
            .nodes()
            .filter(|&n| names.tree().parent(n) == Some(root) && n.index() >= n0 as usize)
            .filter_map(|n| names.id_of(n))
            .collect();
        assert_eq!(new_ids.len(), 2);
        for id in new_ids {
            assert!(id > n0 && id <= n0 + n0 / 2, "id {id} outside the interval");
        }
        names.check_invariants().unwrap();
    }

    #[test]
    fn deleted_nodes_lose_their_identities() {
        let tree = DynamicTree::with_initial_star(10);
        let mut names = NameAssigner::new(SimConfig::new(7), tree).unwrap();
        let victim = names
            .tree()
            .nodes()
            .find(|&n| n != names.tree().root())
            .unwrap();
        names
            .run_batch(&[(victim, RequestKind::RemoveSelf)])
            .unwrap();
        assert!(!names.tree().contains(victim));
        assert!(names.id_of(victim).is_none());
        names.check_invariants().unwrap();
    }
}

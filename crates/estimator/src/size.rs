//! The size-estimation protocol (Theorem 5.1).

use crate::driver::{AppEvent, Application, IterationDriver, IterationPlan, IterationPolicy};
use crate::invariant::InvariantError;
use dcn_controller::{ControllerError, Progress, RequestId, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// The iteration policy of Theorem 5.1: iteration `i` announces `N_i` (one
/// broadcast) and runs an `(α·N_i, α·N_i/2)`-controller with `α = 1 − 1/β`,
/// capping the drift of `n` away from `N_i`.
#[derive(Debug)]
pub(crate) struct SizePolicy {
    beta: f64,
}

impl SizePolicy {
    pub(crate) fn new(beta: f64) -> Self {
        assert!(beta > 1.0, "the approximation factor must exceed 1");
        SizePolicy { beta }
    }

    pub(crate) fn beta(&self) -> f64 {
        self.beta
    }

    fn alpha(&self) -> f64 {
        1.0 - 1.0 / self.beta
    }
}

impl IterationPolicy for SizePolicy {
    fn plan(&mut self, tree: &DynamicTree) -> IterationPlan {
        let n = tree.node_count() as u64;
        let budget = ((self.alpha() * n as f64).floor() as u64).max(1);
        IterationPlan {
            budget,
            waste: (budget / 2).max(1),
            interval: None,
            // Announcing N_i to all nodes: one broadcast.
            announce_messages: n,
        }
    }
}

/// The β-size-estimation protocol: all nodes maintain an estimate `ñ` with
/// `n/β ≤ ñ ≤ β·n` at all times, where `n` is the current number of nodes.
///
/// The protocol runs in iterations driven by the shared
/// [`IterationDriver`]: iteration `i` starts by announcing `N_i`, the exact
/// number of nodes at that moment, to every node (a broadcast, charged
/// `O(n)` messages); during the iteration every topological change must
/// obtain a permit from a terminating `(α·N_i, α·N_i/2)`-controller with
/// `α = 1 − 1/β`, which caps the drift of `n` away from `N_i`; when that
/// controller is exhausted a new iteration starts (visible as an
/// [`AppEvent::IterationStarted`] in the event stream).
///
/// ```
/// use dcn_estimator::SizeEstimator;
/// use dcn_controller::RequestKind;
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(15);
/// let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0)?;
/// let root = est.tree().root();
/// est.run_batch(&[(root, RequestKind::AddLeaf); 8])?;
/// est.check_invariants().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SizeEstimator {
    driver: IterationDriver<SizePolicy>,
}

impl SizeEstimator {
    /// Creates the estimator over `tree` with approximation factor `beta > 1`.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors (the first iteration's
    /// controller is built immediately).
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 1`.
    pub fn new(config: SimConfig, tree: DynamicTree, beta: f64) -> Result<Self, ControllerError> {
        Ok(SizeEstimator {
            driver: IterationDriver::new(config, tree, SizePolicy::new(beta))?,
        })
    }

    /// Mutable access to the shared iteration driver (exposed for the layers
    /// stacked on top: subtree estimation, heavy-child, labeling, majority
    /// commitment, which charge their own protocol waves through it).
    pub(crate) fn driver_mut(&mut self) -> &mut IterationDriver<SizePolicy> {
        &mut self.driver
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.driver.tree()
    }

    /// The estimate `ñ = N_i` currently held by every node.
    pub fn estimate(&self) -> u64 {
        self.driver.estimate()
    }

    /// The approximation factor β.
    pub fn beta(&self) -> f64 {
        self.driver.policy().beta()
    }

    /// Number of iterations started so far.
    pub fn iterations(&self) -> u32 {
        self.driver.iterations()
    }

    /// Total messages sent so far (controller messages plus the charged
    /// iteration-boundary waves).
    pub fn messages(&self) -> u64 {
        self.driver.messages()
    }

    /// Number of topological changes granted so far.
    pub fn changes(&self) -> u64 {
        self.driver.changes()
    }

    /// Amortized messages per topological change (the quantity Theorem 5.1
    /// bounds by `O(log² n)` when the number of changes is not too small).
    pub fn amortized_messages_per_change(&self) -> f64 {
        self.driver.amortized_messages_per_change()
    }

    /// Checks the β-approximation invariant `n/β ≤ ñ ≤ β·n` against the
    /// current network size.
    ///
    /// # Errors
    ///
    /// Returns [`InvariantError::EstimateOutOfBand`] when the estimate left
    /// the band.
    pub fn check_invariants(&self) -> Result<(), InvariantError> {
        let nodes = self.tree().node_count();
        let n = nodes as f64;
        let e = self.estimate() as f64;
        let beta = self.beta();
        if e < n / beta - 1e-9 || e > n * beta + 1e-9 {
            return Err(InvariantError::EstimateOutOfBand {
                estimate: self.estimate(),
                nodes,
                beta,
            });
        }
        Ok(())
    }

    /// `true` when the β-approximation invariant currently holds
    /// (convenience wrapper over [`SizeEstimator::check_invariants`]).
    pub fn estimate_is_valid(&self) -> bool {
        self.check_invariants().is_ok()
    }

    /// The number of permits that have passed down through `node` in the
    /// current iteration (used by the subtree estimator).
    pub fn permits_passed_down(&self, node: NodeId) -> u64 {
        self.driver.permits_passed_down(node)
    }

    /// Submits one topological-change request under a stable ticket (see
    /// [`IterationDriver::submit`]).
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.driver.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events, rotating
    /// iterations as budgets exhaust.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        self.driver.step(budget)
    }

    /// Runs until every submitted ticket has a final answer.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.driver.run_to_quiescence()
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.driver.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.driver.records()
    }

    /// Submits a batch of topological-change requests, runs the network to
    /// quiescence and returns this batch's answers — the convenience shim
    /// over the ticketed lifecycle. Requests rejected because an iteration's
    /// budget ran out are retried in the next iteration under the same
    /// ticket.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        self.driver.run_batch(ops)
    }
}

impl Application for SizeEstimator {
    fn name(&self) -> &'static str {
        "size-estimator"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        SizeEstimator::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        SizeEstimator::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        SizeEstimator::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        SizeEstimator::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        SizeEstimator::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        SizeEstimator::tree(self)
    }

    fn iterations(&self) -> u32 {
        SizeEstimator::iterations(self)
    }

    fn changes(&self) -> u64 {
        SizeEstimator::changes(self)
    }

    fn messages(&self) -> u64 {
        SizeEstimator::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        SizeEstimator::check_invariants(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_stays_within_beta_during_heavy_growth() {
        let tree = DynamicTree::with_initial_star(7);
        let mut est = SizeEstimator::new(SimConfig::new(1), tree, 2.0).unwrap();
        for _ in 0..20 {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .take(6)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
            est.check_invariants().unwrap_or_else(|e| {
                panic!("{e} (n = {})", est.tree().node_count());
            });
        }
        assert!(est.iterations() > 1, "growth must trigger new iterations");
        assert!(est.tree().node_count() > 50);
    }

    #[test]
    fn estimate_stays_within_beta_during_shrinkage() {
        let tree = DynamicTree::with_initial_star(120);
        let mut est = SizeEstimator::new(SimConfig::new(2), tree, 2.0).unwrap();
        for _ in 0..25 {
            let victims: Vec<(NodeId, RequestKind)> = est
                .tree()
                .nodes()
                .filter(|&n| n != est.tree().root())
                .take(5)
                .map(|n| (n, RequestKind::RemoveSelf))
                .collect();
            if victims.is_empty() {
                break;
            }
            est.run_batch(&victims).unwrap();
            est.check_invariants().unwrap_or_else(|e| {
                panic!("{e} (n = {})", est.tree().node_count());
            });
        }
        assert!(est.tree().node_count() < 60);
    }

    #[test]
    fn amortized_cost_is_moderate() {
        let tree = DynamicTree::with_initial_star(31);
        let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0).unwrap();
        for _ in 0..30 {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .step_by(3)
                .take(8)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
        }
        let n = est.tree().node_count() as f64;
        let log2n = n.log2();
        // Theorem 5.1: O(log² n) amortized; allow a generous constant.
        assert!(
            est.amortized_messages_per_change() < 60.0 * log2n * log2n,
            "amortized cost {} too high (n = {})",
            est.amortized_messages_per_change(),
            n
        );
    }

    #[test]
    fn iteration_events_stream_through_the_ticketed_seam() {
        let tree = DynamicTree::with_initial_star(7);
        let mut est = SizeEstimator::new(SimConfig::new(4), tree, 2.0).unwrap();
        let root = est.tree().root();
        let mut ids = Vec::new();
        for _ in 0..12 {
            ids.push(est.submit(root, RequestKind::AddLeaf).unwrap());
        }
        est.run_to_quiescence().unwrap();
        let events = est.drain_events();
        let starts = events
            .iter()
            .filter(|e| matches!(e, AppEvent::IterationStarted { .. }))
            .count();
        assert_eq!(starts as u32, est.iterations());
        assert_eq!(events.iter().filter(|e| e.is_answer()).count(), ids.len());
        assert_eq!(est.records().len(), ids.len());
        est.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "approximation factor")]
    fn beta_must_exceed_one() {
        let _ = SizeEstimator::new(SimConfig::new(0), DynamicTree::new(), 1.0);
    }
}

//! The size-estimation protocol (Theorem 5.1).

use dcn_controller::distributed::DistributedController;
use dcn_controller::{ControllerError, Outcome, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::DynamicTree;

/// The β-size-estimation protocol: all nodes maintain an estimate `ñ` with
/// `n/β ≤ ñ ≤ β·n` at all times, where `n` is the current number of nodes.
///
/// The protocol runs in iterations. Iteration `i` starts by announcing
/// `N_i`, the exact number of nodes at that moment, to every node (a
/// broadcast, charged `O(n)` messages); during the iteration every topological
/// change must obtain a permit from a terminating
/// `(α·N_i, α·N_i/2)`-controller with `α = 1 − 1/β`, which caps the drift of
/// `n` away from `N_i`; when that controller is exhausted a new iteration
/// starts.
///
/// ```
/// use dcn_estimator::SizeEstimator;
/// use dcn_controller::RequestKind;
/// use dcn_simnet::SimConfig;
/// use dcn_tree::DynamicTree;
///
/// # fn main() -> Result<(), dcn_controller::ControllerError> {
/// let tree = DynamicTree::with_initial_star(15);
/// let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0)?;
/// let root = est.tree().root();
/// est.run_batch(&[(root, RequestKind::AddLeaf); 8])?;
/// assert!(est.estimate_is_valid());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SizeEstimator {
    config: SimConfig,
    beta: f64,
    inner: Option<DistributedController>,
    /// The estimate `ñ = N_i` currently held by every node.
    estimate: u64,
    iterations: u32,
    aux_messages: u64,
    finished_messages: u64,
    changes_total: u64,
    seed_counter: u64,
}

impl SizeEstimator {
    /// Creates the estimator over `tree` with approximation factor `beta > 1`.
    ///
    /// # Errors
    ///
    /// Returns controller construction errors (the first iteration's
    /// controller is built immediately).
    ///
    /// # Panics
    ///
    /// Panics if `beta <= 1`.
    pub fn new(config: SimConfig, tree: DynamicTree, beta: f64) -> Result<Self, ControllerError> {
        assert!(beta > 1.0, "the approximation factor must exceed 1");
        let estimate = tree.node_count() as u64;
        let mut est = SizeEstimator {
            config,
            beta,
            inner: None,
            estimate,
            iterations: 0,
            aux_messages: 0,
            finished_messages: 0,
            changes_total: 0,
            seed_counter: config.seed,
        };
        est.start_iteration(tree)?;
        Ok(est)
    }

    fn alpha(&self) -> f64 {
        1.0 - 1.0 / self.beta
    }

    fn start_iteration(&mut self, tree: DynamicTree) -> Result<(), ControllerError> {
        let n = tree.node_count() as u64;
        self.estimate = n;
        self.iterations += 1;
        // Announcing N_i to all nodes: one broadcast.
        self.aux_messages += n;
        let budget = ((self.alpha() * n as f64).floor() as u64).max(1);
        let waste = (budget / 2).max(1).min(budget);
        let u_bound = tree.node_count() + budget as usize + 1;
        let mut cfg = self.config;
        cfg.seed = self.seed_counter;
        self.seed_counter = self.seed_counter.wrapping_add(1);
        let inner = DistributedController::new(cfg, tree, budget, waste, u_bound)?;
        self.inner = Some(inner);
        Ok(())
    }

    fn rotate_iteration(&mut self) -> Result<(), ControllerError> {
        let inner = self.inner.take().expect("inner controller present");
        self.finished_messages += inner.messages();
        let tree = inner.into_tree();
        // Counting the exact size at the iteration boundary: broadcast+upcast.
        self.aux_messages += 2 * tree.node_count() as u64;
        self.start_iteration(tree)
    }

    /// The inner controller of the current iteration (exposed for the
    /// subtree-estimation and heavy-child layers built on top).
    pub(crate) fn inner(&self) -> &DistributedController {
        self.inner.as_ref().expect("inner controller present")
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.inner().tree()
    }

    /// The estimate `ñ` currently held by every node.
    pub fn estimate(&self) -> u64 {
        self.estimate
    }

    /// The approximation factor β.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of iterations started so far.
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Total messages sent so far (controller messages plus the charged
    /// iteration-boundary waves).
    pub fn messages(&self) -> u64 {
        self.finished_messages + self.inner().messages() + self.aux_messages
    }

    /// Number of topological changes granted so far.
    pub fn changes(&self) -> u64 {
        self.changes_total
    }

    /// Amortized messages per topological change (the quantity Theorem 5.1
    /// bounds by `O(log² n)` when the number of changes is not too small).
    pub fn amortized_messages_per_change(&self) -> f64 {
        self.messages() as f64 / self.changes_total.max(1) as f64
    }

    /// Checks the β-approximation invariant `n/β ≤ ñ ≤ β·n` against the
    /// current network size.
    pub fn estimate_is_valid(&self) -> bool {
        let n = self.tree().node_count() as f64;
        let e = self.estimate as f64;
        e >= n / self.beta - 1e-9 && e <= n * self.beta + 1e-9
    }

    /// The number of permits that have passed down through `node` in the
    /// current iteration (used by the subtree estimator).
    pub fn permits_passed_down(&self, node: NodeId) -> u64 {
        self.inner()
            .whiteboard(node)
            .map_or(0, |wb| wb.permits_passed_down)
    }

    /// Submits a batch of topological-change requests (each arriving at the
    /// node dictated by the paper's conventions), runs the network to
    /// quiescence and returns the answers. Requests rejected because the
    /// current iteration's budget ran out are retried in the next iteration.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let mut pending: Vec<(NodeId, RequestKind)> = ops.to_vec();
        let mut answered = Vec::new();
        let mut rounds = 0usize;
        while !pending.is_empty() {
            rounds += 1;
            if rounds > 64 {
                // Safety valve; in practice a fresh iteration always has
                // budget for at least one request.
                break;
            }
            let inner = self.inner.as_mut().expect("inner controller present");
            let mut next_pending = Vec::new();
            for &(at, kind) in &pending {
                if !inner.tree().contains(at) {
                    continue; // the target vanished; the request is moot
                }
                if matches!(kind, RequestKind::AddInternalAbove(c) if inner.tree().parent(c) != Some(at))
                {
                    continue;
                }
                if matches!(kind, RequestKind::RemoveSelf) && at == inner.tree().root() {
                    continue;
                }
                inner.submit(at, kind)?;
            }
            inner.run()?;
            let mut need_new_iteration = false;
            for rec in inner.take_records() {
                match rec.outcome {
                    Outcome::Granted { .. } => {
                        if rec.kind.is_topological() {
                            self.changes_total += 1;
                        }
                        answered.push(rec);
                    }
                    Outcome::Rejected => {
                        need_new_iteration = true;
                        next_pending.push((rec.origin, rec.kind));
                    }
                    // The fixed-bound distributed family supports the full
                    // dynamic model and never refuses.
                    Outcome::Refused => unreachable!("distributed controller never refuses"),
                }
            }
            pending = next_pending;
            if need_new_iteration {
                self.rotate_iteration()?;
            }
        }
        Ok(answered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_stays_within_beta_during_heavy_growth() {
        let tree = DynamicTree::with_initial_star(7);
        let mut est = SizeEstimator::new(SimConfig::new(1), tree, 2.0).unwrap();
        for _ in 0..20 {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .take(6)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
            assert!(
                est.estimate_is_valid(),
                "estimate {} vs n {}",
                est.estimate(),
                est.tree().node_count()
            );
        }
        assert!(est.iterations() > 1, "growth must trigger new iterations");
        assert!(est.tree().node_count() > 50);
    }

    #[test]
    fn estimate_stays_within_beta_during_shrinkage() {
        let tree = DynamicTree::with_initial_star(120);
        let mut est = SizeEstimator::new(SimConfig::new(2), tree, 2.0).unwrap();
        for _ in 0..25 {
            let victims: Vec<(NodeId, RequestKind)> = est
                .tree()
                .nodes()
                .filter(|&n| n != est.tree().root())
                .take(5)
                .map(|n| (n, RequestKind::RemoveSelf))
                .collect();
            if victims.is_empty() {
                break;
            }
            est.run_batch(&victims).unwrap();
            assert!(
                est.estimate_is_valid(),
                "estimate {} vs n {}",
                est.estimate(),
                est.tree().node_count()
            );
        }
        assert!(est.tree().node_count() < 60);
    }

    #[test]
    fn amortized_cost_is_moderate() {
        let tree = DynamicTree::with_initial_star(31);
        let mut est = SizeEstimator::new(SimConfig::new(3), tree, 2.0).unwrap();
        for _ in 0..30 {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .step_by(3)
                .take(8)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
        }
        let n = est.tree().node_count() as f64;
        let log2n = n.log2();
        // Theorem 5.1: O(log² n) amortized; allow a generous constant.
        assert!(
            est.amortized_messages_per_change() < 60.0 * log2n * log2n,
            "amortized cost {} too high (n = {})",
            est.amortized_messages_per_change(),
            n
        );
    }

    #[test]
    #[should_panic(expected = "approximation factor")]
    fn beta_must_exceed_one() {
        let _ = SizeEstimator::new(SimConfig::new(0), DynamicTree::new(), 1.0);
    }
}

//! The subtree (super-weight) estimator of Lemma 5.3.

use crate::size::SizeEstimator;
use dcn_controller::{ControllerError, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::{DynamicTree, TopologyEvent};
use std::collections::HashMap;

/// The subtree estimator: every node `v` maintains an estimate `ω̃(v)` that is
/// a β-approximation of its *super-weight* — the number of descendants of `v`
/// (including `v`) that existed at any point since the beginning of the
/// current size-estimation iteration.
///
/// The estimate is exactly the quantity a node can observe locally:
/// `ω̃(v) = ω₀(v) + S(v)`, where `ω₀(v)` is `v`'s subtree size at the start of
/// the iteration (computed by the iteration's broadcast/upcast and charged as
/// such) and `S(v)` is the number of permits of the size-estimation controller
/// that travelled down the tree through `v` during the iteration — read off
/// the controller's whiteboards.
#[derive(Debug)]
pub struct SubtreeEstimator {
    size: SizeEstimator,
    /// ω₀: subtree sizes at the start of the current iteration.
    omega0: HashMap<NodeId, u64>,
    /// True super-weights (reference tracker used for validation and
    /// experiments; the protocol itself never needs them).
    super_weight: HashMap<NodeId, u64>,
    /// The iteration for which `omega0` was computed.
    iteration_tag: u32,
    /// Index into the tree change log up to which super-weights are current.
    log_cursor: usize,
    aux_messages: u64,
}

impl SubtreeEstimator {
    /// Creates the estimator over `tree` with approximation factor `beta`
    /// (use `β = √3` when feeding the heavy-child decomposition).
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree, beta: f64) -> Result<Self, ControllerError> {
        let size = SizeEstimator::new(config, tree, beta)?;
        let mut est = SubtreeEstimator {
            size,
            omega0: HashMap::new(),
            super_weight: HashMap::new(),
            iteration_tag: 0,
            log_cursor: 0,
            aux_messages: 0,
        };
        est.log_cursor = est.size.tree().change_log().len();
        est.refresh_omega0();
        Ok(est)
    }

    /// The underlying size estimator (and through it the current tree).
    pub fn size_estimator(&self) -> &SizeEstimator {
        &self.size
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.size.tree()
    }

    /// Total messages so far, including the per-iteration subtree-size
    /// upcasts.
    pub fn messages(&self) -> u64 {
        self.size.messages() + self.aux_messages
    }

    /// The estimate `ω̃(v) = ω₀(v) + S(v)` held by node `v`.
    pub fn estimate(&self, node: NodeId) -> u64 {
        let base = self.omega0.get(&node).copied().unwrap_or(1);
        base + self.size.permits_passed_down(node)
    }

    /// The true super-weight of `v` (reference value, for validation).
    pub fn true_super_weight(&self, node: NodeId) -> u64 {
        self.super_weight.get(&node).copied().unwrap_or(1)
    }

    /// Checks the β²-approximation of the estimates against the true
    /// super-weights for every existing node. (The single-sided guarantees of
    /// Lemma 5.3 combine into a factor-β² two-sided bound; the heavy-child
    /// construction only needs the comparison between siblings.)
    ///
    /// # Errors
    ///
    /// Returns a description of the first node whose estimate is out of range.
    pub fn check_estimates(&self) -> Result<(), String> {
        let beta = self.size.beta();
        let tol = beta * beta;
        for node in self.tree().nodes() {
            let est = self.estimate(node) as f64;
            let truth = self.true_super_weight(node) as f64;
            if est < truth / tol - 1e-9 || est > truth * tol + 1e-9 {
                return Err(format!(
                    "estimate {est} for {node} outside [{:.2}, {:.2}] (true super-weight {truth})",
                    truth / tol,
                    truth * tol
                ));
            }
        }
        Ok(())
    }

    /// Recomputes ω₀ (subtree sizes) for the current iteration and resets the
    /// super-weight reference; charged as one upcast wave.
    fn refresh_omega0(&mut self) {
        let tree = self.size.tree();
        self.omega0.clear();
        self.super_weight.clear();
        for node in tree.nodes() {
            let sz = tree.subtree_size(node).expect("node exists") as u64;
            self.omega0.insert(node, sz);
            self.super_weight.insert(node, sz);
        }
        self.aux_messages += 2 * tree.node_count() as u64;
        self.iteration_tag = self.size.iterations();
        self.log_cursor = tree.change_log().len();
    }

    /// Replays the tree change log to keep the reference super-weights
    /// current: every inserted node contributes 1 to all its ancestors (and
    /// deletions do not subtract).
    fn update_super_weights(&mut self) {
        let tree = self.size.tree();
        let log: Vec<_> = tree
            .change_log()
            .iter()
            .skip(self.log_cursor)
            .cloned()
            .collect();
        self.log_cursor = tree.change_log().len();
        for record in log {
            match record.event {
                TopologyEvent::AddLeaf { child, .. } => {
                    self.super_weight.insert(child, 1);
                    for anc in tree.ancestors(child).skip(1) {
                        *self.super_weight.entry(anc).or_insert(1) += 1;
                    }
                }
                TopologyEvent::AddInternal { node, below, .. } => {
                    // The new internal node inherits the weight below it plus
                    // itself.
                    let below_weight = self.super_weight.get(&below).copied().unwrap_or(1);
                    self.super_weight.insert(node, below_weight + 1);
                    for anc in tree.ancestors(node).skip(1) {
                        *self.super_weight.entry(anc).or_insert(1) += 1;
                    }
                }
                _ => {}
            }
        }
    }

    /// Submits a batch of requests through the size-estimation machinery and
    /// keeps ω₀ / the reference super-weights current.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let before_iteration = self.size.iterations();
        let records = self.size.run_batch(ops)?;
        if self.size.iterations() != before_iteration {
            // A new iteration started: ω₀ and the counters were reset.
            self.refresh_omega0();
        } else {
            self.update_super_weights();
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_super_weights_under_growth() {
        let tree = DynamicTree::with_initial_path(12);
        let mut est = SubtreeEstimator::new(SimConfig::new(11), tree, f64::sqrt(3.0)).unwrap();
        for round in 0..10usize {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .skip(round % 3)
                .step_by(4)
                .take(4)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
            est.check_estimates().unwrap();
        }
    }

    #[test]
    fn root_estimate_is_at_least_the_node_count_contribution() {
        let tree = DynamicTree::with_initial_star(20);
        let est = SubtreeEstimator::new(SimConfig::new(12), tree, 2.0).unwrap();
        let root = est.tree().root();
        assert_eq!(est.estimate(root), 21);
        assert_eq!(est.true_super_weight(root), 21);
    }
}

//! The subtree (super-weight) estimator of Lemma 5.3.

use crate::driver::{AppEvent, Application};
use crate::invariant::InvariantError;
use crate::size::SizeEstimator;
use dcn_collections::SecondaryMap;
use dcn_controller::Progress;
use dcn_controller::{ControllerError, RequestId, RequestKind, RequestRecord};
use dcn_simnet::{NodeId, SimConfig};
use dcn_tree::{DynamicTree, TopologyEvent};

/// The subtree estimator: every node `v` maintains an estimate `ω̃(v)` that is
/// a β-approximation of its *super-weight* — the number of descendants of `v`
/// (including `v`) that existed at any point since the beginning of the
/// current size-estimation iteration.
///
/// The estimate is exactly the quantity a node can observe locally:
/// `ω̃(v) = ω₀(v) + S(v)`, where `ω₀(v)` is `v`'s subtree size at the start of
/// the iteration (computed by the iteration's broadcast/upcast and charged as
/// such through the shared [`IterationDriver`](crate::IterationDriver)) and
/// `S(v)` is the number of permits of the size-estimation controller that
/// travelled down the tree through `v` during the iteration — read off the
/// controller's whiteboards.
#[derive(Debug)]
pub struct SubtreeEstimator {
    size: SizeEstimator,
    /// ω₀: subtree sizes at the start of the current iteration.
    omega0: SecondaryMap<NodeId, u64>,
    /// True super-weights (reference tracker used for validation and
    /// experiments; the protocol itself never needs them).
    super_weight: SecondaryMap<NodeId, u64>,
    /// Shadow parent pointers replayed alongside the change log, so ancestor
    /// chains are resolved *as of each event* — a node inserted and removed
    /// within one sync window still credits the ancestors it had.
    shadow_parent: SecondaryMap<NodeId, NodeId>,
    /// The iteration for which `omega0` was computed.
    iteration_tag: u32,
    /// Index into the tree change log up to which super-weights are current.
    log_cursor: usize,
}

impl SubtreeEstimator {
    /// Creates the estimator over `tree` with approximation factor `beta`
    /// (use `β = √3` when feeding the heavy-child decomposition).
    ///
    /// # Errors
    ///
    /// Returns controller construction errors.
    pub fn new(config: SimConfig, tree: DynamicTree, beta: f64) -> Result<Self, ControllerError> {
        let size = SizeEstimator::new(config, tree, beta)?;
        let mut est = SubtreeEstimator {
            size,
            omega0: SecondaryMap::new(),
            super_weight: SecondaryMap::new(),
            shadow_parent: SecondaryMap::new(),
            iteration_tag: 0,
            log_cursor: 0,
        };
        est.log_cursor = est.size.tree().change_log().len();
        est.refresh_omega0();
        Ok(est)
    }

    /// The underlying size estimator (and through it the current tree).
    pub fn size_estimator(&self) -> &SizeEstimator {
        &self.size
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        self.size.tree()
    }

    /// Total messages so far, including the per-iteration subtree-size
    /// upcasts (charged through the shared driver).
    pub fn messages(&self) -> u64 {
        self.size.messages()
    }

    /// Charges `messages` pointer-maintenance messages to the shared driver
    /// counter (used by the heavy-child layer above).
    pub(crate) fn charge_pointer_messages(&mut self, messages: u64) {
        self.size.driver_mut().charge_messages(messages);
    }

    /// The estimate `ω̃(v) = ω₀(v) + S(v)` held by node `v`.
    pub fn estimate(&self, node: NodeId) -> u64 {
        let base = self.omega0.get(node).copied().unwrap_or(1);
        base + self.size.permits_passed_down(node)
    }

    /// The true super-weight of `v` (reference value, for validation).
    pub fn true_super_weight(&self, node: NodeId) -> u64 {
        self.super_weight.get(node).copied().unwrap_or(1)
    }

    /// Checks the β²-approximation of the estimates against the true
    /// super-weights for every existing node. (The single-sided guarantees of
    /// Lemma 5.3 combine into a factor-β² two-sided bound; the heavy-child
    /// construction only needs the comparison between siblings.)
    ///
    /// # Errors
    ///
    /// Returns the first node whose estimate is out of range.
    pub fn check_estimates(&self) -> Result<(), InvariantError> {
        let beta = self.size.beta();
        let tol = beta * beta;
        for node in self.tree().nodes() {
            let est = self.estimate(node);
            let truth = self.true_super_weight(node);
            let estf = est as f64;
            let truthf = truth as f64;
            if estf < truthf / tol - 1e-9 || estf > truthf * tol + 1e-9 {
                return Err(InvariantError::SuperWeightOutOfBand {
                    node,
                    estimate: est,
                    truth,
                    tolerance: tol,
                });
            }
        }
        Ok(())
    }

    /// Recomputes ω₀ (subtree sizes) for the current iteration and resets the
    /// super-weight reference and the shadow parent map; charged as one
    /// upcast wave through the driver.
    fn refresh_omega0(&mut self) {
        let charge;
        {
            let tree = self.size.tree();
            self.omega0.clear();
            self.super_weight.clear();
            self.shadow_parent.clear();
            for node in tree.nodes() {
                // lint: allow(unwrap) `node` was yielded by tree.nodes()
                let sz = tree.subtree_size(node).expect("node exists") as u64;
                self.omega0.insert(node, sz);
                self.super_weight.insert(node, sz);
                if let Some(parent) = tree.parent(node) {
                    self.shadow_parent.insert(node, parent);
                }
            }
            charge = 2 * tree.node_count() as u64;
            self.log_cursor = tree.change_log().len();
        }
        self.size.driver_mut().charge_messages(charge);
        self.iteration_tag = self.size.iterations();
    }

    /// Credits one new descendant to `from` and every shadow ancestor above
    /// it (walking the parent pointers as they were at event time).
    fn credit_chain(&mut self, from: NodeId) {
        let mut cur = Some(from);
        while let Some(node) = cur {
            *self.super_weight.get_or_insert_with(node, || 1) += 1;
            cur = self.shadow_parent.get(node).copied();
        }
    }

    /// Replays the tree change log to keep the reference super-weights
    /// current: every inserted node contributes 1 to all the ancestors it
    /// had *at insertion time* (and deletions do not subtract — the
    /// super-weight counts everything that existed at any point in the
    /// iteration). The shadow parent map is replayed alongside, so a node
    /// inserted and deleted within one sync window still credits the right
    /// chain even though the live tree no longer contains it.
    fn update_super_weights(&mut self) {
        let log: Vec<_> = {
            let tree = self.size.tree();
            let log = tree
                .change_log()
                .iter()
                .skip(self.log_cursor)
                .cloned()
                .collect();
            self.log_cursor = tree.change_log().len();
            log
        };
        for record in log {
            match record.event {
                TopologyEvent::AddLeaf { parent, child } => {
                    self.super_weight.insert(child, 1);
                    self.shadow_parent.insert(child, parent);
                    self.credit_chain(parent);
                }
                TopologyEvent::AddInternal {
                    parent,
                    node,
                    below,
                } => {
                    // The new internal node inherits the weight below it plus
                    // itself.
                    let below_weight = self.super_weight.get(below).copied().unwrap_or(1);
                    self.super_weight.insert(node, below_weight + 1);
                    self.shadow_parent.insert(node, parent);
                    self.shadow_parent.insert(below, node);
                    // Protocol side: at attach time the new node copies its
                    // child's current estimate (one message, part of the
                    // insertion handshake) — without this, a node spliced
                    // above a large subtree would observe only the permits
                    // that pass it *after* its insertion and undershoot its
                    // real super-weight arbitrarily.
                    let below_estimate = self.omega0.get(below).copied().unwrap_or(1)
                        + self.size.permits_passed_down(below);
                    self.omega0.insert(node, below_estimate + 1);
                    self.credit_chain(parent);
                }
                TopologyEvent::RemoveLeaf { node, .. } => {
                    self.shadow_parent.remove(node);
                }
                TopologyEvent::RemoveInternal { parent, node } => {
                    // The removed node's children were adopted by `parent`.
                    for (_, p) in self.shadow_parent.iter_mut().filter(|(_, p)| **p == node) {
                        *p = parent;
                    }
                    self.shadow_parent.remove(node);
                }
                _ => {}
            }
        }
    }

    /// Brings ω₀ and the reference super-weights up to date after an
    /// execution slice: a fresh iteration resets them, otherwise the change
    /// log since the last sync is replayed.
    fn sync(&mut self) {
        if self.size.iterations() != self.iteration_tag {
            self.refresh_omega0();
        } else {
            self.update_super_weights();
        }
    }

    /// Submits one request under a stable ticket.
    ///
    /// # Errors
    ///
    /// Returns validation errors against the current tree.
    pub fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        self.size.submit(at, kind)
    }

    /// Advances execution by at most `budget` simulator events, keeping the
    /// super-weight bookkeeping current.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        let progress = self.size.step(budget)?;
        self.sync();
        Ok(progress)
    }

    /// Runs until every submitted ticket has a final answer.
    ///
    /// # Errors
    ///
    /// Propagates simulator and rotation errors.
    pub fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        self.size.run_to_quiescence()?;
        self.sync();
        Ok(())
    }

    /// Removes and returns the events produced since the last drain.
    pub fn drain_events(&mut self) -> Vec<AppEvent> {
        self.size.drain_events()
    }

    /// All resolved requests so far, in answer order.
    pub fn records(&self) -> &[RequestRecord] {
        self.size.records()
    }

    /// Submits a batch of requests through the size-estimation machinery and
    /// keeps ω₀ / the reference super-weights current.
    ///
    /// # Errors
    ///
    /// Propagates validation and simulator errors.
    pub fn run_batch(
        &mut self,
        ops: &[(NodeId, RequestKind)],
    ) -> Result<Vec<RequestRecord>, ControllerError> {
        let records = self.size.run_batch(ops)?;
        self.sync();
        Ok(records)
    }
}

impl Application for SubtreeEstimator {
    fn name(&self) -> &'static str {
        "subtree-estimator"
    }

    fn submit(&mut self, at: NodeId, kind: RequestKind) -> Result<RequestId, ControllerError> {
        SubtreeEstimator::submit(self, at, kind)
    }

    fn step(&mut self, budget: u64) -> Result<Progress, ControllerError> {
        SubtreeEstimator::step(self, budget)
    }

    fn run_to_quiescence(&mut self) -> Result<(), ControllerError> {
        SubtreeEstimator::run_to_quiescence(self)
    }

    fn drain_events(&mut self) -> Vec<AppEvent> {
        SubtreeEstimator::drain_events(self)
    }

    fn records(&self) -> &[RequestRecord] {
        SubtreeEstimator::records(self)
    }

    fn tree(&self) -> &DynamicTree {
        SubtreeEstimator::tree(self)
    }

    fn iterations(&self) -> u32 {
        self.size.iterations()
    }

    fn changes(&self) -> u64 {
        self.size.changes()
    }

    fn messages(&self) -> u64 {
        SubtreeEstimator::messages(self)
    }

    fn check_invariants(&self) -> Result<(), InvariantError> {
        self.size.check_invariants()?;
        self.check_estimates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_super_weights_under_growth() {
        let tree = DynamicTree::with_initial_path(12);
        let mut est = SubtreeEstimator::new(SimConfig::new(11), tree, f64::sqrt(3.0)).unwrap();
        for round in 0..10usize {
            let nodes: Vec<NodeId> = est.tree().nodes().collect();
            let batch: Vec<(NodeId, RequestKind)> = nodes
                .iter()
                .skip(round % 3)
                .step_by(4)
                .take(4)
                .map(|&n| (n, RequestKind::AddLeaf))
                .collect();
            est.run_batch(&batch).unwrap();
            est.check_estimates().unwrap();
        }
    }

    #[test]
    fn root_estimate_is_at_least_the_node_count_contribution() {
        let tree = DynamicTree::with_initial_star(20);
        let est = SubtreeEstimator::new(SimConfig::new(12), tree, 2.0).unwrap();
        let root = est.tree().root();
        assert_eq!(est.estimate(root), 21);
        assert_eq!(est.true_super_weight(root), 21);
    }
}

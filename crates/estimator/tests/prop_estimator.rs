//! Property-style tests for the §5 applications: their invariants must hold
//! after every batch, for random churn mixes, random seeds and random batch
//! sizes.
//!
//! The build environment has no proptest, so each property runs a fixed
//! number of seeded random cases through `dcn-rng`: every failure is
//! reproducible from its printed case seed.

use dcn_controller::RequestKind;
use dcn_estimator::{AncestryLabeling, HeavyChildDecomposition, NameAssigner, SizeEstimator};
use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_simnet::SimConfig;
use dcn_tree::{DynamicTree, NodeId};

const CASES: u64 = 16;

#[derive(Clone, Copy, Debug)]
enum Op {
    AddLeaf(usize),
    AddInternal(usize),
    Remove(usize),
}

/// Draws one operation with the weights 3 : 1 : 2 (mirroring the old
/// proptest strategy).
fn random_op(rng: &mut DetRng) -> Op {
    let k = rng.gen_range(0usize..128);
    match rng.gen_range(0u32..6) {
        0..=2 => Op::AddLeaf(k),
        3 => Op::AddInternal(k),
        _ => Op::Remove(k),
    }
}

fn random_ops(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<Op> {
    let len = rng.gen_range(lo..=hi);
    (0..len).map(|_| random_op(rng)).collect()
}

fn concretize(tree: &DynamicTree, op: Op) -> Option<(NodeId, RequestKind)> {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    match op {
        Op::AddLeaf(k) => Some((nodes[k % nodes.len()], RequestKind::AddLeaf)),
        Op::AddInternal(k) => {
            let child = nodes[k % nodes.len()];
            let parent = tree.parent(child)?;
            Some((parent, RequestKind::AddInternalAbove(child)))
        }
        Op::Remove(k) => {
            let node = nodes[k % nodes.len()];
            if node == tree.root() {
                None
            } else {
                Some((node, RequestKind::RemoveSelf))
            }
        }
    }
}

/// The size estimate never leaves the β-band, for random churn and seeds.
#[test]
fn size_estimation_invariant_holds() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(case);
        let ops = random_ops(&mut rng, 1, 60);
        let seed = rng.gen_range(0u64..1_000);
        let n0 = rng.gen_range(4usize..24);
        let beta = rng.gen_range(125u32..300) as f64 / 100.0;
        let tree = DynamicTree::with_initial_star(n0);
        let mut est = SizeEstimator::new(SimConfig::new(seed), tree, beta).unwrap();
        for chunk in ops.chunks(6) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(est.tree(), op))
                .collect();
            est.run_batch(&batch).unwrap();
            assert!(
                est.estimate_is_valid(),
                "case {case}: estimate {} out of band for n = {} (beta = {beta})",
                est.estimate(),
                est.tree().node_count()
            );
            assert!(est.tree().check_invariants().is_ok(), "case {case}");
        }
    }
}

/// Name assignment: identities stay unique and within [1, 4n] after every
/// batch of random churn.
#[test]
fn name_assignment_invariants_hold() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(1_000 + case);
        let ops = random_ops(&mut rng, 1, 50);
        let seed = rng.gen_range(0u64..1_000);
        let n0 = rng.gen_range(4usize..20);
        let tree = DynamicTree::with_initial_star(n0);
        let mut names = NameAssigner::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(names.tree(), op))
                .collect();
            names.run_batch(&batch).unwrap();
            names
                .check_invariants()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

/// Heavy-child decomposition: the light-ancestor bound holds after every
/// batch.
#[test]
fn heavy_child_light_depth_holds() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(2_000 + case);
        let ops = random_ops(&mut rng, 1, 40);
        let seed = rng.gen_range(0u64..500);
        let n0 = rng.gen_range(4usize..16);
        let tree = DynamicTree::with_initial_star(n0);
        let mut heavy = HeavyChildDecomposition::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(heavy.tree(), op))
                .collect();
            heavy.run_batch(&batch).unwrap();
            heavy
                .check_light_depth()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

/// Ancestry labeling: labels stay present, correct and short after every
/// batch (churn skewed towards deletions, the case the corollary covers).
#[test]
fn ancestry_labeling_invariants_hold() {
    for case in 0..CASES {
        let mut rng = DetRng::seed_from_u64(3_000 + case);
        let ops = random_ops(&mut rng, 1, 40);
        let seed = rng.gen_range(0u64..500);
        let n0 = rng.gen_range(8usize..32);
        let tree = DynamicTree::with_initial_star(n0);
        let mut labels = AncestryLabeling::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(labels.tree(), op))
                .collect();
            labels.run_batch(&batch).unwrap();
            labels
                .check_invariants()
                .unwrap_or_else(|e| panic!("case {case}: {e}"));
        }
    }
}

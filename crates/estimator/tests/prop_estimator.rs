//! Property-based tests for the §5 applications: their invariants must hold
//! after every batch, for random churn mixes, random seeds and random batch
//! sizes.

use dcn_estimator::{AncestryLabeling, HeavyChildDecomposition, NameAssigner, SizeEstimator};
use dcn_controller::RequestKind;
use dcn_simnet::SimConfig;
use dcn_tree::{DynamicTree, NodeId};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    AddLeaf(usize),
    AddInternal(usize),
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..128).prop_map(Op::AddLeaf),
        1 => (0usize..128).prop_map(Op::AddInternal),
        2 => (0usize..128).prop_map(Op::Remove),
    ]
}

fn concretize(tree: &DynamicTree, op: Op) -> Option<(NodeId, RequestKind)> {
    let nodes: Vec<NodeId> = tree.nodes().collect();
    match op {
        Op::AddLeaf(k) => Some((nodes[k % nodes.len()], RequestKind::AddLeaf)),
        Op::AddInternal(k) => {
            let child = nodes[k % nodes.len()];
            let parent = tree.parent(child)?;
            Some((parent, RequestKind::AddInternalAbove(child)))
        }
        Op::Remove(k) => {
            let node = nodes[k % nodes.len()];
            if node == tree.root() {
                None
            } else {
                Some((node, RequestKind::RemoveSelf))
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The size estimate never leaves the β-band, for random churn and seeds.
    #[test]
    fn size_estimation_invariant_holds(
        ops in prop::collection::vec(op_strategy(), 1..60),
        seed in 0u64..1_000,
        n0 in 4usize..24,
        beta_pct in 125u32..300,
    ) {
        let beta = beta_pct as f64 / 100.0;
        let tree = DynamicTree::with_initial_star(n0);
        let mut est = SizeEstimator::new(SimConfig::new(seed), tree, beta).unwrap();
        for chunk in ops.chunks(6) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(est.tree(), op))
                .collect();
            est.run_batch(&batch).unwrap();
            prop_assert!(
                est.estimate_is_valid(),
                "estimate {} out of band for n = {} (beta = {beta})",
                est.estimate(),
                est.tree().node_count()
            );
            prop_assert!(est.tree().check_invariants().is_ok());
        }
    }

    /// Name assignment: identities stay unique and within [1, 4n] after every
    /// batch of random churn.
    #[test]
    fn name_assignment_invariants_hold(
        ops in prop::collection::vec(op_strategy(), 1..50),
        seed in 0u64..1_000,
        n0 in 4usize..20,
    ) {
        let tree = DynamicTree::with_initial_star(n0);
        let mut names = NameAssigner::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(names.tree(), op))
                .collect();
            names.run_batch(&batch).unwrap();
            names
                .check_invariants()
                .map_err(|e| TestCaseError::fail(e))?;
        }
    }

    /// Heavy-child decomposition: the light-ancestor bound holds after every
    /// batch.
    #[test]
    fn heavy_child_light_depth_holds(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..500,
        n0 in 4usize..16,
    ) {
        let tree = DynamicTree::with_initial_star(n0);
        let mut heavy = HeavyChildDecomposition::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(heavy.tree(), op))
                .collect();
            heavy.run_batch(&batch).unwrap();
            heavy
                .check_light_depth()
                .map_err(|e| TestCaseError::fail(e))?;
        }
    }

    /// Ancestry labeling: labels stay present, correct and short after every
    /// batch (churn skewed towards deletions, the case the corollary covers).
    #[test]
    fn ancestry_labeling_invariants_hold(
        ops in prop::collection::vec(op_strategy(), 1..40),
        seed in 0u64..500,
        n0 in 8usize..32,
    ) {
        let tree = DynamicTree::with_initial_star(n0);
        let mut labels = AncestryLabeling::new(SimConfig::new(seed), tree).unwrap();
        for chunk in ops.chunks(5) {
            let batch: Vec<(NodeId, RequestKind)> = chunk
                .iter()
                .filter_map(|&op| concretize(labels.tree(), op))
                .collect();
            labels.run_batch(&batch).unwrap();
            labels
                .check_invariants()
                .map_err(|e| TestCaseError::fail(e))?;
        }
    }
}

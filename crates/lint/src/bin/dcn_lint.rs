//! `dcn-lint` — run the workspace's static-analysis rules from the shell.
//!
//! ```text
//! dcn-lint [--root DIR] [--rule ID]… [--json] [--ci] [--list-rules]
//! ```
//!
//! * `--root DIR`    lint the tree rooted at DIR (default: `.`); rule
//!   scopes are matched against paths relative to this root, so point it
//!   at the workspace root (or at a fixture tree that mirrors one).
//! * `--rule ID`     run only the named rule(s); repeatable.
//! * `--json`        emit the findings as a JSON array instead of
//!   `file:line:col: [rule] message` lines.
//! * `--ci`          exit non-zero when there is any finding (the default
//!   mode always exits 0 so the report can be paged through in a pipe).
//! * `--list-rules`  print the rule table (id, scope, summary) and exit.
//!
//! CI runs `dcn-lint --ci` from the workspace root in place of the old
//! grep steps, and `dcn-lint --ci --root crates/lint/tests/fixtures/firing`
//! as the linter-not-silently-broken smoke (that tree must keep failing).

use std::path::PathBuf;
use std::process::ExitCode;

use dcn_lint::diag::to_json;
use dcn_lint::engine::lint_with_rules;
use dcn_lint::rules::{all_rules, rule_by_id};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut ci = false;
    let mut rule_ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage_error("--root needs a directory argument"),
            },
            "--rule" => match args.next() {
                Some(id) => rule_ids.push(id),
                None => return usage_error("--rule needs a rule id argument"),
            },
            "--json" => json = true,
            "--ci" => ci = true,
            "--list-rules" => {
                for rule in all_rules() {
                    println!(
                        "{:<22} {:<40} {}",
                        rule.id,
                        rule.scope.join(","),
                        rule.summary
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "dcn-lint: token-level static analysis for the dcn workspace\n\n\
                     usage: dcn-lint [--root DIR] [--rule ID]... [--json] [--ci] [--list-rules]\n\n\
                     Enforces the DESIGN.md section 7/8 determinism and hot-path invariants.\n\
                     Suppress a finding with `// lint: allow(<rule>) <reason>` on its line or\n\
                     the comment block directly above (rule-specific forms: `// perf: cold`,\n\
                     `// perf: ...`, `// SAFETY: ...`, `// determinism: ...`)."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let selected: Vec<_> = if rule_ids.is_empty() {
        all_rules().iter().collect()
    } else {
        let mut picked = Vec::new();
        for id in &rule_ids {
            match rule_by_id(id) {
                Some(rule) => picked.push(rule),
                None => return usage_error(&format!("unknown rule `{id}` (see --list-rules)")),
            }
        }
        picked
    };
    let diags = match run(&root, &selected) {
        Ok(d) => d,
        Err(err) => {
            eprintln!("dcn-lint: error walking {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", to_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        if diags.is_empty() {
            eprintln!("dcn-lint: clean ({} rules)", selected.len());
        } else {
            eprintln!("dcn-lint: {} finding(s)", diags.len());
        }
    }

    if ci && !diags.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run(
    root: &std::path::Path,
    selected: &[&'static dcn_lint::rules::Rule],
) -> std::io::Result<Vec<dcn_lint::Diagnostic>> {
    // The engine API takes `&[Rule]`; when the full set is selected, pass
    // the static table straight through, otherwise lint per rule and let
    // the engine's final sort interleave the findings deterministically.
    if selected.len() == all_rules().len() {
        lint_with_rules(root, all_rules())
    } else {
        let mut out = Vec::new();
        for rule in selected {
            out.extend(lint_with_rules(root, std::slice::from_ref(*rule))?);
        }
        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        Ok(out)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("dcn-lint: {msg}\nusage: dcn-lint [--root DIR] [--rule ID]... [--json] [--ci] [--list-rules]");
    ExitCode::from(2)
}

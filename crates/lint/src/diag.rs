//! Diagnostics and their two renderings: the human `file:line:col` form
//! and a hand-rolled JSON array (the workspace is dependency-free, so the
//! escaping lives here rather than in serde).

use std::fmt;

/// One finding: a rule firing at a position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Id of the rule that fired (e.g. `unwrap`, `hot-std-hash`).
    pub rule: &'static str,
    /// Path relative to the lint root, `/`-separated.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based byte column of the offending token.
    pub col: u32,
    /// What is wrong and how to fix or suppress it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Render `diags` as a JSON array of objects with `rule`, `path`, `line`,
/// `col` and `message` fields, one object per line for greppability.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            d.col,
            json_string(&d.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Escape `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic {
            rule: "unwrap",
            path: "a/b.rs".to_string(),
            line: 3,
            col: 9,
            message: "call `.unwrap()` on \"x\"\nhere".to_string(),
        };
        let json = to_json(std::slice::from_ref(&d));
        assert!(json.contains(r#""rule": "unwrap""#));
        assert!(json.contains(r#"\"x\"\nhere"#));
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert_eq!(to_json(&[]), "[\n]\n");
    }

    #[test]
    fn display_is_file_line_col() {
        let d = Diagnostic {
            rule: "determinism",
            path: "crates/x/src/y.rs".to_string(),
            line: 12,
            col: 5,
            message: "m".to_string(),
        };
        assert_eq!(d.to_string(), "crates/x/src/y.rs:12:5: [determinism] m");
    }
}

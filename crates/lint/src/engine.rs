//! The driver: walk a tree of `.rs` files, run every in-scope rule over
//! each, and return the findings in a deterministic order (path, then
//! line/column) — the linter's own output feeds byte-compared CI logs, so
//! it follows the same determinism discipline it enforces.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::rules::{all_rules, Rule};
use crate::source::SourceFile;

/// Directories never walked: build output, VCS internals, and the lint
/// fixture corpus (whose files *intentionally* violate every rule; the
/// fixture tests lint them with an explicit root instead).
const SKIP_DIRS: [&str; 2] = ["target", ".git"];
const SKIP_PREFIXES: [&str; 1] = ["crates/lint/tests/fixtures"];

/// Lint every `.rs` file under `root` with the full rule set.
pub fn lint_root(root: &Path) -> io::Result<Vec<Diagnostic>> {
    lint_with_rules(root, all_rules())
}

/// Lint every `.rs` file under `root` with a chosen rule subset.
pub fn lint_with_rules(root: &Path, rules: &[Rule]) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    // Walk order is OS-dependent; the report is not.
    files.sort();

    let mut diags = Vec::new();
    for rel in &files {
        let applicable: Vec<&Rule> = rules.iter().filter(|r| r.applies_to(rel)).collect();
        if applicable.is_empty() {
            continue;
        }
        let text = fs::read_to_string(root.join(rel))?;
        let file = SourceFile::parse(rel.clone(), &text);
        for rule in applicable {
            rule.check(&file, &mut diags);
        }
    }
    // Findings for one file arrive rule-by-rule; present them in source
    // order instead.
    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(diags)
}

/// Recursively gather `.rs` paths under `dir`, as `/`-separated strings
/// relative to `root`.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let Some(rel) = relative_slash_path(root, &path) else {
            continue;
        };
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if SKIP_PREFIXES.iter().any(|p| rel == *p) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated; `None` if not under `root`
/// or not valid UTF-8.
fn relative_slash_path(root: &Path, path: &Path) -> Option<String> {
    let rel: PathBuf = path.strip_prefix(root).ok()?.to_path_buf();
    let s = rel.to_str()?;
    Some(s.replace(std::path::MAIN_SEPARATOR, "/"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_is_sorted_and_skips_fixtures() {
        // Run over this crate's own workspace root; the fixture corpus
        // (which violates every rule on purpose) must not contribute.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("crates/lint has a workspace root two levels up");
        let mut files = Vec::new();
        collect_rs_files(root, root, &mut files).expect("walk");
        files.sort();
        assert!(files.iter().any(|f| f == "crates/lint/src/engine.rs"));
        assert!(
            !files
                .iter()
                .any(|f| f.starts_with("crates/lint/tests/fixtures/")),
            "fixture corpus must be excluded from workspace walks"
        );
        assert!(!files.iter().any(|f| f.starts_with("target/")));
    }
}

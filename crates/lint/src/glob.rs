//! A small `/`-separated glob matcher for rule scopes: `*` matches within
//! a path segment, `**` matches zero or more whole segments. No character
//! classes, no brace expansion — rule scopes list alternatives explicitly.

/// Match `path` (relative, `/`-separated) against `pattern`.
pub fn glob_match(pattern: &str, path: &str) -> bool {
    let pats: Vec<&str> = pattern.split('/').collect();
    let segs: Vec<&str> = path.split('/').collect();
    match_parts(&pats, &segs)
}

fn match_parts(pats: &[&str], segs: &[&str]) -> bool {
    match pats.first() {
        None => segs.is_empty(),
        Some(&"**") => {
            // Zero segments …
            if match_parts(&pats[1..], segs) {
                return true;
            }
            // … or swallow one and retry.
            !segs.is_empty() && match_parts(pats, &segs[1..])
        }
        Some(p) => match segs.first() {
            None => false,
            Some(s) => seg_match(p, s) && match_parts(&pats[1..], &segs[1..]),
        },
    }
}

/// Match one segment against a pattern where `*` matches any (possibly
/// empty) run of characters.
fn seg_match(pat: &str, seg: &str) -> bool {
    let p: Vec<char> = pat.chars().collect();
    let s: Vec<char> = seg.chars().collect();
    // Classic two-pointer wildcard matching with backtracking to the last
    // `*`.
    let (mut pi, mut si) = (0usize, 0usize);
    let (mut star, mut mark) = (usize::MAX, 0usize);
    while si < s.len() {
        if pi < p.len() && (p[pi] == s[si]) {
            pi += 1;
            si += 1;
        } else if pi < p.len() && p[pi] == '*' {
            star = pi;
            mark = si;
            pi += 1;
        } else if star != usize::MAX {
            pi = star + 1;
            mark += 1;
            si = mark;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::glob_match;

    #[test]
    fn double_star_spans_zero_or_more_segments() {
        assert!(glob_match(
            "crates/simnet/src/**",
            "crates/simnet/src/sim.rs"
        ));
        assert!(glob_match(
            "crates/simnet/src/**",
            "crates/simnet/src/sub/deep.rs"
        ));
        assert!(!glob_match(
            "crates/simnet/src/**",
            "crates/core/src/api.rs"
        ));
        // Zero segments: `**/tests/**` matches a top-level `tests/` dir.
        assert!(glob_match("**/tests/**", "tests/end_to_end.rs"));
        assert!(glob_match("**/tests/**", "crates/core/tests/x.rs"));
        assert!(!glob_match("**/tests/**", "crates/core/src/tests.rs"));
    }

    #[test]
    fn single_star_stays_within_a_segment() {
        assert!(glob_match("crates/*/src/**", "crates/core/src/api.rs"));
        assert!(!glob_match("crates/*/src/**", "crates/core/benches/b.rs"));
        assert!(glob_match(
            "crates/simnet/src/*.rs",
            "crates/simnet/src/sim.rs"
        ));
        assert!(!glob_match(
            "crates/simnet/src/*.rs",
            "crates/simnet/src/sub/deep.rs"
        ));
    }

    #[test]
    fn exact_and_everything() {
        assert!(glob_match("src/lib.rs", "src/lib.rs"));
        assert!(!glob_match("src/lib.rs", "src/lib2.rs"));
        assert!(glob_match("**", "anything/at/all.rs"));
        assert!(glob_match("**", "top.rs"));
    }

    #[test]
    fn star_backtracking() {
        assert!(glob_match("*_test.rs", "lexer_test.rs"));
        assert!(glob_match("a*b*c", "aXbYbZc"));
        assert!(!glob_match("a*b*c", "aXbYb"));
    }
}

//! A hand-rolled, lossless Rust lexer good enough for policy linting.
//!
//! The whole point of `dcn-lint` over the `grep` steps it replaces is
//! knowing *what kind of text* a match sits in: `HashMap` inside a string
//! literal, `unsafe` inside a doc comment, or a `BinaryHeap` mention in a
//! module header must never fire a rule, while the same bytes in code must.
//! That requires a lexer — but not a full one. This module tokenizes the
//! subset of Rust that matters for that distinction:
//!
//! * line comments (`//`, `///`, `//!`) and block comments (`/* */`,
//!   including Rust's **nested** block comments),
//! * string literals with escapes, raw strings `r#"…"#` with arbitrary
//!   hash fences, byte/C-string variants (`b"…"`, `br#"…"#`, `c"…"`),
//! * char literals vs lifetimes (`'a'` is a char, `'a` is a lifetime,
//!   `'\''` is a char; the classic ambiguity),
//! * identifiers/keywords (one token kind — rules match on text),
//! * numbers (only far enough to not swallow `.unwrap` in `x.0.unwrap()`),
//! * everything else as single-character punctuation.
//!
//! Tokens are *lossless*: every one carries its line/column (1-based) and
//! byte span, and comments are real tokens rather than discarded, because
//! the suppression grammar (`// lint: allow(rule) reason`, `// SAFETY:`,
//! `// perf: cold`, …) lives in comments and rules must find them.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `std`, `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// Any literal: string, raw string, byte string, char or number.
    /// Rules never look inside literals — that is the point.
    Literal,
    /// A single punctuation character (`:`, `.`, `(`, `{`, `#`, …).
    Punct,
    /// A `//` comment, text running to end of line (newline excluded).
    LineComment,
    /// A `/* … */` comment, possibly spanning lines, nesting respected.
    BlockComment,
}

/// One lexeme with its position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Which kind of lexeme this is.
    pub kind: TokenKind,
    /// The raw source text of the token (including quotes/comment markers).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    /// True for the code kinds (not comments): rules that ban constructs
    /// scan only these.
    pub fn is_code(&self) -> bool {
        !matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenize `src`. The lexer never fails: unterminated strings or block
/// comments simply extend to end of input (the compiler will reject the
/// file anyway; the linter's job is to not panic and not misclassify what
/// comes before).
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advance one byte, maintaining the line/column counters. Multi-byte
    /// UTF-8 continuation bytes advance the column too (columns are byte
    /// columns, matching what editors and `grep -n` report closely enough
    /// for diagnostics).
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.push(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.push(TokenKind::Literal, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.push(kind, start, line, col);
                }
                b'r' | b'b' | b'c' if self.raw_or_byte_literal() => {
                    self.push(TokenKind::Literal, start, line, col);
                }
                _ if c == b'_' || c.is_ascii_alphabetic() || c >= 0x80 => {
                    self.bump();
                    while self.is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line, col);
                }
                _ if c.is_ascii_digit() => {
                    self.number();
                    self.push(TokenKind::Literal, start, line, col);
                }
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    fn is_ident_continue(&self, c: u8) -> bool {
        c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
    }

    /// Consume a `/* … */` block comment honoring Rust's nesting.
    fn block_comment(&mut self) {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consume a `"…"` string literal with backslash escapes.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// At a `'`: decide char literal vs lifetime and consume it.
    ///
    /// The rule mirrors rustc's: `'` followed by an identifier char that is
    /// *not* closed by another `'` is a lifetime (`'a`, `'static`, `'_`);
    /// anything else (`'x'`, `'\n'`, `'\u{1F980}'`) is a char literal.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // '
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume escape then to closing quote.
            self.bump_n(2);
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            if self.pos < self.src.len() {
                self.bump(); // closing '
            }
            return TokenKind::Literal;
        }
        if self.is_ident_continue(self.peek(0)) && !self.peek(0).is_ascii_digit() {
            // Could be `'a'` (char) or `'a` / `'abc` (lifetime): look past
            // the identifier tail for a closing quote.
            let mut ahead = 1;
            while self.is_ident_continue(self.peek(ahead)) {
                ahead += 1;
            }
            if self.peek(ahead) == b'\'' {
                self.bump_n(ahead + 1);
                return TokenKind::Literal;
            }
            self.bump_n(ahead);
            return TokenKind::Lifetime;
        }
        // `'1'`, `' '`, `'('` … one char then the closing quote.
        if self.pos < self.src.len() {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
        TokenKind::Literal
    }

    /// If positioned at the start of a raw/byte/C string literal
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`, `c"…"`), consume it
    /// and return true. Otherwise consume nothing and return false (the
    /// caller lexes the `r`/`b`/`c` as a plain identifier).
    fn raw_or_byte_literal(&mut self) -> bool {
        let c0 = self.peek(0);
        // Byte char literal: b'x'
        if c0 == b'b' && self.peek(1) == b'\'' {
            self.bump(); // b
            self.char_or_lifetime();
            return true;
        }
        // Plain byte/C string: b"…" or c"…"
        if (c0 == b'b' || c0 == b'c') && self.peek(1) == b'"' {
            self.bump();
            self.string_literal();
            return true;
        }
        // Raw forms: r"…", r#"…"#, br#"…"#, cr#"…"# — find the `r`, count
        // hashes, then match the fence. `r#ident` (raw identifier) has no
        // quote after the hashes and is NOT a literal.
        let r_at = if c0 == b'r' {
            0
        } else if (c0 == b'b' || c0 == b'c') && self.peek(1) == b'r' {
            1
        } else {
            return false;
        };
        let mut hashes = 0usize;
        while self.peek(r_at + 1 + hashes) == b'#' {
            hashes += 1;
        }
        if self.peek(r_at + 1 + hashes) != b'"' {
            return false;
        }
        self.bump_n(r_at + 1 + hashes + 1); // prefix, hashes, opening quote
                                            // Scan for `"` followed by `hashes` `#`s. No escapes in raw strings.
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.bump_n(1 + hashes);
                    return true;
                }
            }
            self.bump();
        }
        true
    }

    /// Consume a numeric literal. Precision only matters in one place: a
    /// trailing `.` must be left alone when it starts a method call or
    /// tuple field (`0.unwrap()`, `x.0.1`), so `.` is consumed only when a
    /// digit follows.
    fn number(&mut self) {
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.bump_n(2);
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
            return;
        }
        while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
            self.bump();
        }
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Exponent and/or type suffix (e3, e-3, f64, u32, usize …).
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            self.bump_n(2);
        }
        while self.is_ident_continue(self.peek(0)) {
            self.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn hashmap_in_string_is_a_literal() {
        let src = r#"let s = "std::collections::HashMap is banned";"#;
        assert!(!code_idents(src).contains(&"HashMap".to_string()));
        assert!(code_idents(src).contains(&"let".to_string()));
    }

    #[test]
    fn unsafe_in_comments_is_not_code() {
        let src = "// unsafe here\n/* unsafe there */\nfn safe() {}";
        let idents = code_idents(src);
        assert!(!idents.contains(&"unsafe".to_string()));
        assert!(idents.contains(&"safe".to_string()));
        // And a real one is.
        assert!(code_idents("unsafe fn f() {}").contains(&"unsafe".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner BinaryHeap */ still comment */ fn f() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.contains("inner BinaryHeap"));
        assert_eq!(toks[1], (TokenKind::Ident, "fn".to_string()));
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r##"let s = r#"quote " and HashMap inside"#; let t = 1;"##;
        assert!(!code_idents(src).contains(&"HashMap".to_string()));
        // The lexer resumes correctly after the fence.
        assert!(code_idents(src).contains(&"t".to_string()));
    }

    #[test]
    fn byte_and_c_strings() {
        for src in [
            "let s = b\"HashMap\";",
            "let s = br#\"HashMap\"#;",
            "let s = c\"HashMap\";",
            "let c = b'H';",
        ] {
            assert!(!code_idents(src).contains(&"HashMap".to_string()), "{src}");
        }
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
        // Escaped quote char, then a lifetime right after.
        let toks = kinds(r"let c = '\''; struct S<'s>(&'s str);");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == r"'\''"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'s"));
    }

    #[test]
    fn static_lifetime_and_underscore() {
        let toks = kinds("&'static str; &'_ str");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'static"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'_"));
    }

    #[test]
    fn tuple_field_unwrap_stays_separate() {
        // `0.unwrap` must lex as Literal(0) Punct(.) Ident(unwrap), not as a
        // float literal swallowing the method name.
        let toks = kinds("x.0.unwrap()");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "0"));
        // But real floats are one token.
        let toks = kinds("let f = 1.5e-3f64;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "1.5e-3f64"));
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let toks = kinds("let r#type = 1;");
        // `r` then `#` then `type`: the r#… raw-identifier form must not be
        // mistaken for an unterminated raw string.
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "type"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "1"));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_forms_do_not_panic() {
        for src in ["\"abc", "/* abc", "r#\"abc", "'"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn hex_literals() {
        let toks = kinds("let x = 0xDEAD_beef_u64;");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "0xDEAD_beef_u64"));
    }
}

//! # dcn-lint — token-level static analysis for the workspace's invariants
//!
//! The reproduction's complexity claims rest on two fragile, repo-wide
//! invariants that the compiler cannot check:
//!
//! 1. **Determinism** — sweep reports are byte-identical for any worker
//!    count, and golden-hash tests pin the output bytes. One stray wall
//!    clock, randomly seeded hasher or environment read in the wrong crate
//!    silently unpins them.
//! 2. **Hot-path storage policy** (DESIGN.md §7) — the PR 5/6 speedups
//!    exist because the simulator's event loop uses dense `SecondaryMap`s,
//!    the `CalendarQueue` and fused SoA state, never std SipHash maps or a
//!    `BinaryHeap`.
//!
//! CI used to police these with `grep`, which cannot tell a `HashMap` in
//! code from one in a doc comment or string, and only scanned two files.
//! This crate replaces the greps with a real (if small) static-analysis
//! pass: a hand-rolled lossless Rust lexer ([`lexer`]) feeds a rule engine
//! ([`rules`], [`engine`]) that walks the workspace and reports
//! `file:line:col` diagnostics ([`diag`]), human-readable or `--json`, via
//! the `dcn-lint` binary (non-zero exit in `--ci` mode).
//!
//! Every rule carries per-rule scope globs ([`glob`]) and honors one
//! suppression grammar — `// lint: allow(<rule>) <reason>` on the finding's
//! line or the comment block directly above, plus the legacy justification
//! forms the policies always used (`// perf: cold`, `// SAFETY:`,
//! `// determinism:`). DESIGN.md §8 documents each rule; the fixture
//! corpus under `tests/fixtures/` keeps each rule demonstrably alive, and
//! a self-lint integration test runs the engine over this very workspace
//! inside `cargo test`, so Tier-1 itself gates the invariants.
//!
//! ```
//! use dcn_lint::rules::rule_by_id;
//! use dcn_lint::source::SourceFile;
//!
//! let rule = rule_by_id("hot-std-hash").unwrap();
//! let file = SourceFile::parse(
//!     "crates/simnet/src/sim.rs".to_string(),
//!     "use std::collections::HashMap;\n",
//! );
//! assert!(rule.applies_to(&file.rel_path));
//! let mut findings = Vec::new();
//! rule.check(&file, &mut findings);
//! assert_eq!(findings.len(), 1);
//! // … while the same bytes inside a comment are invisible:
//! let doc = SourceFile::parse(
//!     "crates/simnet/src/sim.rs".to_string(),
//!     "// use std::collections::HashMap;\n",
//! );
//! findings.clear();
//! rule.check(&doc, &mut findings);
//! assert!(findings.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod engine;
pub mod glob;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::Diagnostic;
pub use engine::lint_root;

//! The rule set: each rule is policy already written down in DESIGN.md §7
//! or ROADMAP's standing constraints, promoted from a CI `grep` (or from
//! review folklore) into a token-level check with an explicit scope and a
//! uniform suppression grammar.
//!
//! ## Suppression grammar
//!
//! Every rule accepts the uniform form on the finding's line or in the
//! contiguous comment block immediately above it:
//!
//! ```text
//! // lint: allow(<rule-id>) <reason>
//! ```
//!
//! Individual rules additionally accept the legacy justification comment
//! the policy always required (`// perf: cold`, `// perf: …`,
//! `// SAFETY: …`, `// determinism: …`); those are listed per rule below.
//! A reason is part of the grammar, not decoration: a suppression without
//! one tells the next reader nothing, and review should reject it.

use crate::diag::Diagnostic;
use crate::glob::glob_match;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// A single lint rule: metadata plus the token-level check.
pub struct Rule {
    /// Stable id, used in diagnostics and in `lint: allow(<id>)`.
    pub id: &'static str,
    /// One-line description for `--list-rules` and the docs.
    pub summary: &'static str,
    /// Path globs (relative to the lint root) the rule applies to.
    pub scope: &'static [&'static str],
    /// Path globs carved back out of `scope`.
    pub exclude: &'static [&'static str],
    /// When true, tokens inside `#[cfg(test)]` / `#[test]` items are
    /// exempt (test code is neither hot nor part of the shipped library
    /// surface).
    pub skip_test_code: bool,
    /// Rule-specific justification comments accepted in addition to the
    /// uniform `lint: allow(<id>)` form.
    pub extra_needles: &'static [&'static str],
    check: fn(&Rule, &SourceFile, &mut Vec<Diagnostic>),
}

impl Rule {
    /// Does this rule apply to the file at `rel_path`?
    pub fn applies_to(&self, rel_path: &str) -> bool {
        self.scope.iter().any(|g| glob_match(g, rel_path))
            && !self.exclude.iter().any(|g| glob_match(g, rel_path))
    }

    /// Run the rule over one (in-scope) file, appending findings.
    pub fn check(&self, file: &SourceFile, out: &mut Vec<Diagnostic>) {
        (self.check)(self, file, out);
    }

    /// All comment needles that suppress this rule at a site.
    fn needles(&self) -> Vec<String> {
        let mut v = vec![format!("lint: allow({})", self.id)];
        v.extend(self.extra_needles.iter().map(|s| s.to_string()));
        v
    }

    /// Report the code token at stream index `ti` unless a suppression
    /// comment covers its line or the token sits in exempt test code.
    fn report(&self, file: &SourceFile, ti: usize, message: String, out: &mut Vec<Diagnostic>) {
        if self.skip_test_code && file.in_test_code(ti) {
            return;
        }
        let tok = &file.tokens[ti];
        let needles = self.needles();
        let needle_refs: Vec<&str> = needles.iter().map(String::as_str).collect();
        if file.suppressed(tok.line, &needle_refs) {
            return;
        }
        out.push(Diagnostic {
            rule: self.id,
            path: file.rel_path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        });
    }
}

/// The rule set, in the order findings are reported.
pub fn all_rules() -> &'static [Rule] {
    &RULES
}

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

static RULES: [Rule; 6] = [
    Rule {
        id: "hot-std-hash",
        summary: "no std SipHash HashMap/HashSet in simnet or the sharded hot path \
                  (DESIGN.md §7 storage policy)",
        scope: &[
            "crates/simnet/src/**",
            "crates/core/src/sharded/**",
            "crates/tree/src/region.rs",
        ],
        exclude: &[],
        skip_test_code: false,
        extra_needles: &["perf: cold"],
        check: check_hot_std_hash,
    },
    Rule {
        id: "hot-binary-heap",
        summary: "no BinaryHeap in simnet — the calendar queue replaced it (PR 6)",
        scope: &["crates/simnet/src/**"],
        exclude: &[],
        skip_test_code: false,
        extra_needles: &[],
        check: check_hot_binary_heap,
    },
    Rule {
        id: "secondary-map-justify",
        summary: "SecondaryMap in the SoA-migrated simulator core needs a `// perf:` justification",
        scope: &[
            "crates/simnet/src/sim.rs",
            "crates/simnet/src/hot.rs",
            "crates/simnet/src/engine.rs",
        ],
        exclude: &[],
        skip_test_code: false,
        extra_needles: &["perf:"],
        check: check_secondary_map,
    },
    Rule {
        id: "safety-comment",
        summary: "every `unsafe` block/fn/impl needs a `// SAFETY:` comment",
        scope: &["**"],
        exclude: &[],
        skip_test_code: false,
        extra_needles: &["SAFETY:"],
        check: check_safety_comment,
    },
    Rule {
        id: "determinism",
        summary: "no wall-clock/random-seed/env reads outside crates/bench (golden-hash bytes)",
        scope: &["**"],
        exclude: &["crates/bench/**", "**/tests/**"],
        skip_test_code: true,
        extra_needles: &["determinism:"],
        check: check_determinism,
    },
    Rule {
        id: "unwrap",
        summary: "`.unwrap()`/`.expect(` in library code needs a `// lint: allow(unwrap) <reason>`",
        scope: &["crates/*/src/**", "src/**"],
        exclude: &["**/bin/**", "**/tests/**"],
        skip_test_code: true,
        extra_needles: &[],
        check: check_unwrap,
    },
];

/// Helper: iterate code tokens as `(stream_index, kind, text)`.
fn code_tokens(file: &SourceFile) -> impl Iterator<Item = (usize, TokenKind, &str)> {
    file.code.iter().map(|&i| {
        let t = &file.tokens[i];
        (i, t.kind, t.text.as_str())
    })
}

/// Helper: does the code token at code-position `ci` match `text`?
fn code_is(file: &SourceFile, ci: usize, text: &str) -> bool {
    file.code
        .get(ci)
        .is_some_and(|&i| file.tokens[i].text == text)
}

/// Rule `hot-std-hash`: any `HashMap`/`HashSet` identifier in simnet code.
///
/// Matching the bare identifier (rather than the full `std::collections::`
/// path the old grep required) is deliberate: the import line *and* every
/// use site fire, and an aliased `use std::collections::HashMap as Map`
/// still fires at the import. `FxHashMap`/`FxHashSet` are distinct
/// identifier tokens and never match.
fn check_hot_std_hash(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (ti, kind, text) in code_tokens(file) {
        if kind == TokenKind::Ident && (text == "HashMap" || text == "HashSet") {
            rule.report(
                file,
                ti,
                format!(
                    "std SipHash `{text}` in a simnet hot-path module; use `SecondaryMap` \
                     (dense entity key) or `Fx{text}` (sparse/composite key), or justify \
                     with `// perf: cold`"
                ),
                out,
            );
        }
    }
}

/// Rule `hot-binary-heap`: any `BinaryHeap` identifier in simnet code.
fn check_hot_binary_heap(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (ti, kind, text) in code_tokens(file) {
        if kind == TokenKind::Ident && text == "BinaryHeap" {
            rule.report(
                file,
                ti,
                "`BinaryHeap` in simnet: the O(log n) event heap was replaced by \
                 `dcn_collections::CalendarQueue` (PR 6); schedule through the calendar queue"
                    .to_string(),
                out,
            );
        }
    }
}

/// Rule `secondary-map-justify`: `SecondaryMap` in the three files PR 6
/// migrated to fused SoA storage needs a `// perf:` note saying why a slot
/// map (one indirection per access) beats a `HotNodeState`/`AgentTable`
/// column there.
fn check_secondary_map(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (ti, kind, text) in code_tokens(file) {
        if kind == TokenKind::Ident && text == "SecondaryMap" {
            rule.report(
                file,
                ti,
                "`SecondaryMap` in the SoA-migrated simulator core: fold the state into \
                 `HotNodeState`/`AgentTable`, or justify the slot map with `// perf: …`"
                    .to_string(),
                out,
            );
        }
    }
}

/// Rule `safety-comment`: each `unsafe` keyword (block, fn, impl, trait)
/// must carry a `// SAFETY:` comment on its line or in the comment block
/// immediately above. `#![forbid(unsafe_code)]` attributes do not match —
/// `unsafe_code` is a different identifier token.
fn check_safety_comment(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (ti, kind, text) in code_tokens(file) {
        if kind == TokenKind::Ident && text == "unsafe" {
            rule.report(
                file,
                ti,
                "`unsafe` without a `// SAFETY:` comment; state the invariant that makes \
                 this sound on the preceding lines"
                    .to_string(),
                out,
            );
        }
    }
}

/// Rule `determinism`: identifiers and call paths that smuggle ambient
/// nondeterminism into results — wall clocks (`SystemTime`, `Instant`),
/// randomly seeded hashers (`RandomState`), environment reads
/// (`env::var`). The sweep's golden-hash bytes only stay byte-identical
/// because none of these feed the simulation; timing belongs in
/// `crates/bench`, configuration in explicit CLI flags.
///
/// `crates/server` is **not** carved out of scope, deliberately. The serve
/// engine is a pure state machine on the controller's virtual clock — any
/// wall-clock read there would be a real determinism bug, and the rule must
/// keep catching it. Only the measurement edges of the transport (the
/// `dcn-load` latency stamps, socket timeouts in clients) legitimately
/// touch `Instant`/`Duration`, and each such site carries a
/// `// determinism: …` annotation explaining why the value cannot reach a
/// protocol outcome. A new unannotated wall-clock read in the server crate
/// fails `--ci` like anywhere else.
fn check_determinism(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let banned = ["SystemTime", "Instant", "RandomState"];
    for (ci, &ti) in file.code.iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if banned.contains(&t.text.as_str()) {
            rule.report(
                file,
                ti,
                format!(
                    "nondeterminism source `{}` outside crates/bench; the sweep reports \
                     are pinned byte-identical — justify with `// determinism: …` if this \
                     provably cannot reach an output",
                    t.text
                ),
                out,
            );
        } else if t.text == "env"
            && code_is(file, ci + 1, ":")
            && code_is(file, ci + 2, ":")
            && code_is(file, ci + 3, "var")
        {
            rule.report(
                file,
                ti,
                "environment read (`env::var`) outside crates/bench; thread configuration \
                 through explicit parameters, or justify with `// determinism: …`"
                    .to_string(),
                out,
            );
        }
    }
}

/// Rule `unwrap`: `.unwrap()` / `.expect(` in library (non-test, non-bin)
/// code. Either the call is provably infallible — then say why with
/// `// lint: allow(unwrap) <reason>` — or it can fire on malformed input
/// and belongs in a `Result`.
fn check_unwrap(rule: &Rule, file: &SourceFile, out: &mut Vec<Diagnostic>) {
    for (ci, &ti) in file.code.iter().enumerate() {
        let t = &file.tokens[ti];
        if t.kind != TokenKind::Ident || (t.text != "unwrap" && t.text != "expect") {
            continue;
        }
        // Require the `.name(` shape so `fn unwrap(…)` definitions and
        // paths like `Option::unwrap` (none in-tree) do not double-fire.
        if ci == 0 || !code_is(file, ci - 1, ".") || !code_is(file, ci + 1, "(") {
            continue;
        }
        rule.report(
            file,
            ti,
            format!(
                "`.{}(…)` in library code: return a `Result` if reachable on bad input, \
                 or annotate the invariant with `// lint: allow(unwrap) <reason>`",
                t.text
            ),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run_rule(id: &str, rel_path: &str, src: &str) -> Vec<Diagnostic> {
        let rule = rule_by_id(id).expect("known rule id");
        assert!(
            rule.applies_to(rel_path),
            "{rel_path} should be in scope for {id}"
        );
        let file = SourceFile::parse(rel_path.to_string(), src);
        let mut out = Vec::new();
        rule.check(&file, &mut out);
        out
    }

    #[test]
    fn scopes_match_policy() {
        let hash = rule_by_id("hot-std-hash").unwrap();
        assert!(hash.applies_to("crates/simnet/src/taxi.rs"));
        assert!(hash.applies_to("crates/simnet/src/hot.rs"));
        assert!(!hash.applies_to("crates/core/src/api.rs"));

        let sec = rule_by_id("secondary-map-justify").unwrap();
        assert!(sec.applies_to("crates/simnet/src/engine.rs"));
        assert!(!sec.applies_to("crates/simnet/src/ports.rs"));

        let det = rule_by_id("determinism").unwrap();
        assert!(det.applies_to("crates/simnet/src/sim.rs"));
        assert!(!det.applies_to("crates/bench/src/lib.rs"));
        assert!(!det.applies_to("tests/end_to_end.rs"));

        let unwrap = rule_by_id("unwrap").unwrap();
        assert!(unwrap.applies_to("crates/core/src/api.rs"));
        assert!(unwrap.applies_to("src/lib.rs"));
        assert!(!unwrap.applies_to("crates/bench/src/bin/dcn_perf.rs"));
        assert!(!unwrap.applies_to("crates/core/tests/integration.rs"));
        assert!(!unwrap.applies_to("examples/quickstart.rs"));
    }

    #[test]
    fn hot_std_hash_fires_on_code_not_strings() {
        let d = run_rule(
            "hot-std-hash",
            "crates/simnet/src/sim.rs",
            "use std::collections::HashMap;\nlet s = \"HashMap\"; // HashMap in comment\n",
        );
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn hot_std_hash_respects_perf_cold() {
        let d = run_rule(
            "hot-std-hash",
            "crates/simnet/src/metrics.rs",
            "use std::collections::HashMap; // perf: cold — report assembly only\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn unwrap_fires_only_on_method_shape() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); }\nfn unwrap() {}\n";
        let d = run_rule("unwrap", "crates/core/src/api.rs", src);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn unwrap_skips_test_code_and_suppressions() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\n\
                   fn f() { b.unwrap(); } // lint: allow(unwrap) slot exists: inserted above\n";
        let d = run_rule("unwrap", "crates/core/src/api.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn determinism_catches_env_var_and_instant() {
        let src = "use std::time::Instant;\nlet v = std::env::var(\"X\");\n";
        let d = run_rule("determinism", "crates/workload/src/spec.rs", src);
        assert_eq!(d.len(), 2);
        let suppressed = "// determinism: feeds a log line, never a report\n\
                          let v = std::env::var(\"X\");\n";
        assert!(run_rule("determinism", "crates/workload/src/spec.rs", suppressed).is_empty());
    }

    #[test]
    fn safety_comment_rule() {
        let bad = "unsafe { ptr.read() }\n";
        assert_eq!(
            run_rule("safety-comment", "crates/core/src/x.rs", bad).len(),
            1
        );
        let good = "// SAFETY: ptr is non-null, aligned and owned by this arena slot\n\
                    unsafe { ptr.read() }\n";
        assert!(run_rule("safety-comment", "crates/core/src/x.rs", good).is_empty());
        // The forbid attribute's `unsafe_code` ident must not fire.
        let forbid = "#![forbid(unsafe_code)]\n";
        assert!(run_rule("safety-comment", "crates/core/src/lib.rs", forbid).is_empty());
    }

    #[test]
    fn uniform_allow_works_for_every_rule() {
        for (id, path, bad_line) in [
            (
                "hot-std-hash",
                "crates/simnet/src/sim.rs",
                "use std::collections::HashSet;",
            ),
            (
                "hot-binary-heap",
                "crates/simnet/src/sim.rs",
                "use std::collections::BinaryHeap;",
            ),
            (
                "secondary-map-justify",
                "crates/simnet/src/hot.rs",
                "let m: SecondaryMap<A, B>;",
            ),
            ("safety-comment", "crates/core/src/x.rs", "unsafe { f() }"),
            (
                "determinism",
                "crates/core/src/x.rs",
                "let t = Instant::now();",
            ),
            ("unwrap", "crates/core/src/x.rs", "let v = x.unwrap();"),
        ] {
            assert_eq!(
                run_rule(id, path, bad_line).len(),
                1,
                "{id} should fire bare"
            );
            let suppressed = format!("// lint: allow({id}) reviewed\n{bad_line}\n");
            assert!(
                run_rule(id, path, &suppressed).is_empty(),
                "{id} should honor the uniform allow"
            );
        }
    }
}

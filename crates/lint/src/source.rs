//! Per-file analysis context: the token stream plus the line-level facts
//! rules need — which lines are comments, what those comments say, and
//! which token ranges are `#[cfg(test)]` / `#[test]` code.

use crate::lexer::{lex, Token, TokenKind};

/// A lexed source file with the derived per-line and per-region facts the
/// rule engine queries.
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated (used for scope globs
    /// and reported in diagnostics).
    pub rel_path: String,
    /// The full lossless token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of the code tokens (comments filtered out),
    /// in order. Sequence-matching rules walk this.
    pub code: Vec<usize>,
    /// `comment_by_line[l - 1]` is the concatenated comment text on line
    /// `l` (block comments contribute the slice of their text that falls
    /// on each line they span). Empty string when the line has no comment.
    comment_by_line: Vec<String>,
    /// `line_has_code[l - 1]` is true when any code token starts on or
    /// spans line `l`.
    line_has_code: Vec<bool>,
    /// Inclusive token-index ranges lexically inside `#[cfg(test)]` or
    /// `#[test]` items.
    test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex `text` and derive the line/region facts.
    pub fn parse(rel_path: String, text: &str) -> SourceFile {
        let tokens = lex(text);
        let n_lines = text.lines().count().max(1);
        let mut comment_by_line = vec![String::new(); n_lines];
        let mut line_has_code = vec![false; n_lines];
        let mut code = Vec::new();

        for (i, tok) in tokens.iter().enumerate() {
            let first = (tok.line as usize - 1).min(n_lines - 1);
            if tok.is_code() {
                code.push(i);
                let last = (first + tok.text.matches('\n').count()).min(n_lines - 1);
                for flag in &mut line_has_code[first..=last] {
                    *flag = true;
                }
            } else {
                for (off, piece) in tok.text.split('\n').enumerate() {
                    let at = (first + off).min(n_lines - 1);
                    if !comment_by_line[at].is_empty() {
                        comment_by_line[at].push(' ');
                    }
                    comment_by_line[at].push_str(piece);
                }
            }
        }

        let test_spans = find_test_spans(&tokens, &code);
        SourceFile {
            rel_path,
            tokens,
            code,
            comment_by_line,
            line_has_code,
            test_spans,
        }
    }

    /// Comment text on 1-based line `line` (empty if none).
    pub fn comment_on_line(&self, line: u32) -> &str {
        self.comment_by_line
            .get(line as usize - 1)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// True when 1-based `line` carries any code token.
    pub fn line_has_code(&self, line: u32) -> bool {
        *self.line_has_code.get(line as usize - 1).unwrap_or(&false)
    }

    /// The suppression-comment grammar: a finding on `line` is suppressed
    /// when any of `needles` occurs in a comment **on the same line** or in
    /// the **contiguous run of comment-only lines immediately above** it.
    ///
    /// "Comment-only" is judged from tokens, not text, so a needle inside a
    /// string literal or a line that mixes code and comment above the
    /// finding never extends the run.
    pub fn suppressed(&self, line: u32, needles: &[&str]) -> bool {
        let hit = |l: u32| {
            let text = self.comment_on_line(l);
            !text.is_empty() && needles.iter().any(|n| text.contains(n))
        };
        if hit(line) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.line_has_code(l) || self.comment_on_line(l).is_empty() {
                return false;
            }
            if hit(l) {
                return true;
            }
        }
        false
    }

    /// True when `tokens[idx]` lies inside a `#[cfg(test)]` or `#[test]`
    /// item (attribute through closing brace/semicolon).
    pub fn in_test_code(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= idx && idx <= b)
    }
}

/// Scan the code tokens for `#[cfg(test)]` / `#[test]` attributes and
/// return the token-index span of each attributed item.
///
/// The span starts at the `#` and runs through the item's closing `}` (for
/// brace items: `mod`, `fn`, `impl`, …) or `;` (for brace-less items such
/// as `#[cfg(test)] use …;`). Attribute arguments are matched structurally:
/// `#[test]` exactly, or `#[cfg(…)]` whose argument tokens include the
/// ident `test` (covering `cfg(test)`, `cfg(any(test, …))`,
/// `cfg(all(test, …))`; a `"test"` *string* does not count — it is a
/// literal token, not an ident).
fn find_test_spans(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let is_punct = |ci: usize, p: &str| tok(ci).kind == TokenKind::Punct && tok(ci).text == p;
    let is_ident = |ci: usize, id: &str| tok(ci).kind == TokenKind::Ident && tok(ci).text == id;

    let mut spans = Vec::new();
    let mut ci = 0usize;
    while ci < code.len() {
        // An outer attribute: `#` `[` … `]` (inner `#![…]` is skipped — it
        // configures the enclosing module, and `#![cfg(test)]` does not
        // occur in this workspace's style).
        if !(is_punct(ci, "#") && ci + 1 < code.len() && is_punct(ci + 1, "[")) {
            ci += 1;
            continue;
        }
        let attr_start = ci;
        // Find the matching `]`, tracking bracket depth.
        let mut j = ci + 2;
        let mut depth = 1i32;
        let body_start = j;
        while j < code.len() && depth > 0 {
            if is_punct(j, "[") {
                depth += 1;
            } else if is_punct(j, "]") {
                depth -= 1;
            }
            j += 1;
        }
        let body_end = j.saturating_sub(1); // index of `]`
        let body = body_start..body_end;

        let is_test_attr = {
            let len = body.len();
            (len == 1 && is_ident(body_start, "test"))
                || (len > 1
                    && is_ident(body_start, "cfg")
                    && body.clone().any(|k| is_ident(k, "test")))
        };
        if !is_test_attr {
            ci = j;
            continue;
        }

        // Skip any further attributes stacked on the same item.
        let mut k = j;
        while k + 1 < code.len() && is_punct(k, "#") && is_punct(k + 1, "[") {
            let mut d = 1i32;
            let mut m = k + 2;
            while m < code.len() && d > 0 {
                if is_punct(m, "[") {
                    d += 1;
                } else if is_punct(m, "]") {
                    d -= 1;
                }
                m += 1;
            }
            k = m;
        }

        // The item body: up to the matching `}` of the first `{`, or a `;`
        // at brace depth zero for brace-less items.
        let mut brace = 0i32;
        let mut end = k;
        while end < code.len() {
            if is_punct(end, "{") {
                brace += 1;
            } else if is_punct(end, "}") {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if is_punct(end, ";") && brace == 0 {
                break;
            }
            end += 1;
        }
        let end = end.min(code.len() - 1);
        spans.push((code[attr_start], code[end]));
        ci = end + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf(src: &str) -> SourceFile {
        SourceFile::parse("test.rs".to_string(), src)
    }

    #[test]
    fn cfg_test_module_is_a_test_span() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n    fn t() { y.unwrap(); }\n}\n\
                   fn live2() {}\n";
        let f = sf(src);
        let unwraps: Vec<(usize, bool)> = f
            .code
            .iter()
            .copied()
            .filter(|&i| f.tokens[i].text == "unwrap")
            .map(|i| (i, f.in_test_code(i)))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].1, "unwrap in live code must not be test-scoped");
        assert!(
            unwraps[1].1,
            "unwrap under #[cfg(test)] must be test-scoped"
        );
        // Code after the module is live again.
        let live2 = f
            .code
            .iter()
            .copied()
            .find(|&i| f.tokens[i].text == "live2")
            .expect("live2 token");
        assert!(!f.in_test_code(live2));
    }

    #[test]
    fn test_fn_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let f = sf(src);
        let unwraps: Vec<bool> = f
            .code
            .iter()
            .copied()
            .filter(|&i| f.tokens[i].text == "unwrap")
            .map(|i| f.in_test_code(i))
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_any_test_counts_but_feature_string_does_not() {
        let f = sf("#[cfg(any(test, debug_assertions))]\nfn t() { a.unwrap(); }\n");
        let i = f
            .code
            .iter()
            .copied()
            .find(|&i| f.tokens[i].text == "unwrap")
            .unwrap();
        assert!(f.in_test_code(i));

        let f = sf("#[cfg(feature = \"test\")]\nfn t() { a.unwrap(); }\n");
        let i = f
            .code
            .iter()
            .copied()
            .find(|&i| f.tokens[i].text == "unwrap")
            .unwrap();
        assert!(
            !f.in_test_code(i),
            "a \"test\" string literal is not the test cfg"
        );
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let f = sf("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { a.unwrap(); }\n");
        let i = f
            .code
            .iter()
            .copied()
            .find(|&i| f.tokens[i].text == "unwrap")
            .unwrap();
        assert!(!f.in_test_code(i));
        let h = f
            .code
            .iter()
            .copied()
            .find(|&i| f.tokens[i].text == "HashMap")
            .unwrap();
        assert!(f.in_test_code(h));
    }

    #[test]
    fn suppression_same_line_and_block_above() {
        let src = "// lint: allow(unwrap) infallible\nx.unwrap();\n\
                   y.unwrap(); // lint: allow(unwrap) also fine\n\
                   z.unwrap();\n";
        let f = sf(src);
        assert!(f.suppressed(2, &["lint: allow(unwrap)"]));
        assert!(f.suppressed(3, &["lint: allow(unwrap)"]));
        assert!(!f.suppressed(4, &["lint: allow(unwrap)"]));
    }

    #[test]
    fn suppression_does_not_cross_code_lines() {
        let src = "// SAFETY: fine\nlet a = 1;\nunsafe { x() };\n";
        let f = sf(src);
        assert!(
            !f.suppressed(3, &["SAFETY:"]),
            "a code line breaks the comment run"
        );
    }

    #[test]
    fn needle_in_string_is_not_a_comment() {
        let f = sf("let s = \"SAFETY: not a comment\";\nunsafe { x() };\n");
        assert!(!f.suppressed(2, &["SAFETY:"]));
    }

    #[test]
    fn multi_line_block_comment_lines_count_as_comment_only() {
        let src = "/* start\n   SAFETY: justified here\n   end */\nunsafe { x() };\n";
        let f = sf(src);
        assert!(f.suppressed(4, &["SAFETY:"]));
    }
}

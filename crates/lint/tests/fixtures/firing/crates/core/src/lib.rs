// Fixture: nondeterminism, missing-safety-note and unwrap violations in a
// library crate. Every construct here must FIRE. (Lint corpus, never
// compiled.)

use std::time::{Instant, SystemTime}; // two wall clocks

pub fn configured() -> Option<String> {
    std::env::var("DCN_MODE").ok() // environment read
}

pub fn hashed() -> std::collections::hash_map::RandomState {
    RandomState::new() // randomly seeded hasher
}

pub fn read(ptr: *const u64) -> u64 {
    unsafe { ptr.read() } // no safety note anywhere near
}

pub fn first(xs: &[u64]) -> u64 {
    let head = xs.first().unwrap(); // no annotation
    xs.iter().copied().max().expect("non-empty") // expect form, no annotation
        + head
}

// Fixture: the sharded permit-exchange hot path is in hot-std-hash scope
// since PR 9 — a std SipHash map here must fire. (Lint corpus, never
// compiled.)

use std::collections::HashMap;

pub struct ExchangeLedger {
    granted_by_shard: HashMap<u32, u64>,
}

//! Fixture: wall-clock reads inside the serve transport without the
//! required `// determinism:` justification. The engine runs on the
//! controller's virtual clock, so each of these is a real bug the rule
//! must keep catching — crates/server is deliberately NOT carved out of
//! the determinism rule's scope.

/// A latency stamp taken straight from the monotonic clock.
pub fn elapsed_us() -> u64 {
    let start = std::time::Instant::now();
    start.elapsed().as_micros() as u64
}

/// A wall-clock read that could leak into a reply frame.
pub fn wall_clock_moved() -> bool {
    let now = std::time::SystemTime::now();
    now.elapsed().is_ok()
}

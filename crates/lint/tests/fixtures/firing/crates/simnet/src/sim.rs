// Fixture: hot-path violations in a simnet hot file. Every construct in
// this file must FIRE — the fixture test and the CI smoke assert it.
// (This file is lint corpus, never compiled.)

use std::collections::HashMap; // fires hot-std-hash at the import
use std::collections::{BinaryHeap, HashSet}; // fires hot-std-hash and hot-binary-heap

pub struct Hot {
    state: SecondaryMap<NodeId, u64>,
    by_name: HashMap<String, u64>, // fires hot-std-hash at the use site
    queue: BinaryHeap<Event>,      // fires hot-binary-heap at the use site
    seen: HashSet<u64>,
}

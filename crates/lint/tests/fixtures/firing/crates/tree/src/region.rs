// Fixture: the region-addressing seam is in hot-std-hash scope since PR 9
// — locate() runs per submission, so a SipHash set must fire. (Lint
// corpus, never compiled.)

use std::collections::HashSet;

pub fn cut_candidates() -> HashSet<u32> {
    HashSet::new()
}

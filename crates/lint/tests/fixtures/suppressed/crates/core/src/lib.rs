// Fixture: the same library-crate constructs as the firing corpus, each
// suppressed the documented way, plus the cfg(test) exemptions. This whole
// tree must produce ZERO findings. (Lint corpus, never compiled.)

// determinism: feeds an operator log line, never a sweep report
use std::time::{Instant, SystemTime};

pub fn configured() -> Option<String> {
    // lint: allow(determinism) read once at startup, not during a sweep
    std::env::var("DCN_MODE").ok()
}

pub fn read(ptr: *const u64) -> u64 {
    // SAFETY: the caller hands us a pointer into its own live arena slot,
    // non-null and aligned for u64.
    unsafe { ptr.read() }
}

pub fn first(xs: &[u64]) -> u64 {
    // lint: allow(unwrap) callers uphold non-emptiness; checked at the API rim
    let head = xs.first().unwrap();
    xs.iter().copied().max().expect("non-empty") // lint: allow(unwrap) same invariant
        + head
}

pub fn lifetimes<'a>(x: &'a str) -> (&'a str, char) {
    // A lifetime is not a char literal; 'a above must not confuse the lexer.
    (x, 'u')
}

#[cfg(test)]
mod tests {
    // Test code is exempt from the unwrap and determinism rules.
    use std::time::Instant;

    #[test]
    fn exempt() {
        let t = Instant::now();
        let v = [1u64].first().unwrap();
        assert_eq!(*v + (t.elapsed().as_nanos() as u64 * 0), 1);
    }
}

// Fixture: the same sharded-hot-path constructs with valid justifications
// — must produce zero findings. (Lint corpus, never compiled.)

use std::collections::HashMap; // perf: cold — wave bookkeeping, runs O(k) per wave
// lint: allow(hot-std-hash) cold construction-time map, uniform form
use std::collections::HashSet;

/// Docs may mention `HashMap` freely; the lexer knows it is not code.
pub fn describe() -> &'static str {
    "HashMap in a string is data, not code"
}

//! Fixture: the transport's measurement edges carrying the justifications
//! the determinism rule requires — and the string trap a naive grep would
//! flag.

/// The load generator's latency stamp: measurement of the system, never an
/// input to it.
pub fn elapsed_us() -> u64 {
    // determinism: client-side latency stamp; the value is only reported,
    // determinism: it never reaches a protocol outcome or a golden hash
    let start = std::time::Instant::now();
    start.elapsed().as_micros() as u64
}

/// Socket-level timeout plumbing (bounds waiting, not behaviour).
pub fn read_timeout_ms() -> u64 {
    // determinism: wall-clock timeout only bounds how long a client waits
    let now = std::time::SystemTime::now();
    if now.elapsed().is_ok() {
        2_000
    } else {
        0
    }
}

/// A grep for banned identifiers must not fire on string payloads: frames
/// may legitimately *mention* clock types.
pub fn error_detail() -> &'static str {
    "server rejected frame: Instant and SystemTime are banned in engine code"
}

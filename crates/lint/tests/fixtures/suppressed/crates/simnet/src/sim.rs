// Fixture: the same hot-path constructs as the firing corpus, each carrying
// a valid justification — plus the lexer traps (strings, comments) that a
// grep would misfire on. This whole tree must produce ZERO findings.
// (Lint corpus, never compiled.)

use std::collections::HashMap; // perf: cold — config parsing, never per-event
// lint: allow(hot-std-hash) cold startup path, uniform form also accepted
use std::collections::HashSet;
// lint: allow(hot-binary-heap) scratch model used only by a debug assertion
use std::collections::BinaryHeap;

pub struct Hot {
    // perf: degree-sized side table rebuilt per drain; a SoA column would
    // stay 99% empty
    state: SecondaryMap<NodeId, u64>,
}

/// Doc comments may discuss `HashMap`, `BinaryHeap`, `SecondaryMap` or even
/// `unsafe` freely — the old grep could not tell, the lexer can.
pub fn describe() -> &'static str {
    "std::collections::HashMap and BinaryHeap in a string are data, not code"
}

/* A block comment mentioning HashMap<NodeId, u64>, SecondaryMap and
   /* a nested one mentioning BinaryHeap */ stays invisible too. */
pub fn raw() -> &'static str {
    r#"raw string with "quotes" and a HashSet mention"#
}

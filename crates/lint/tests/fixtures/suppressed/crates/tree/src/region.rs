// Fixture: region seam with a justified map — zero findings. (Lint
// corpus, never compiled.)

// perf: cold — carve-time scratch, never touched per event
use std::collections::HashMap;

/* Block comments mentioning HashSet<u32> stay invisible. */
pub fn raw() -> &'static str {
    r#"a HashSet mention inside a raw string"#
}

//! The fixture corpus keeps every rule demonstrably alive: the `firing`
//! tree must raise at least one finding per rule, and the `suppressed`
//! tree — the same constructs carrying valid justifications, plus the
//! string/comment traps a grep would misfire on — must be spotless.
//!
//! CI runs the same corpus through the binary
//! (`dcn-lint --ci --root crates/lint/tests/fixtures/firing` must exit
//! non-zero), so a silently broken linter fails the build twice.

use std::collections::BTreeMap;
use std::path::PathBuf;

use dcn_lint::engine::lint_root;
use dcn_lint::rules::all_rules;

fn fixture_root(which: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(which)
}

#[test]
fn every_rule_fires_on_the_firing_tree() {
    let diags = lint_root(&fixture_root("firing")).expect("fixture tree readable");
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for d in &diags {
        *by_rule.entry(d.rule).or_insert(0) += 1;
    }
    for rule in all_rules() {
        assert!(
            by_rule.get(rule.id).copied().unwrap_or(0) >= 1,
            "rule `{}` raised no finding on the firing corpus; findings: {:#?}",
            rule.id,
            diags
        );
    }
}

#[test]
fn firing_counts_are_pinned() {
    // Pinning the exact counts catches both directions of drift: a rule
    // that stops seeing a construct (count drops) and a rule that starts
    // double-reporting (count rises). Update deliberately when the corpus
    // changes.
    let diags = lint_root(&fixture_root("firing")).expect("fixture tree readable");
    let count = |id: &str| diags.iter().filter(|d| d.rule == id).count();
    // 4 in the simnet fixture + 2 in the sharded exchange fixture + 3 in
    // the region-seam fixture (the PR-9 scope extension).
    assert_eq!(count("hot-std-hash"), 9, "{diags:#?}");
    assert_eq!(count("hot-binary-heap"), 2, "{diags:#?}");
    assert_eq!(count("secondary-map-justify"), 1, "{diags:#?}");
    assert_eq!(count("safety-comment"), 1, "{diags:#?}");
    assert_eq!(count("determinism"), 7, "{diags:#?}");
    assert_eq!(count("unwrap"), 2, "{diags:#?}");
}

#[test]
fn findings_carry_positions_and_sort_deterministically() {
    let diags = lint_root(&fixture_root("firing")).expect("fixture tree readable");
    assert!(!diags.is_empty());
    for d in &diags {
        assert!(d.line >= 1 && d.col >= 1, "1-based positions: {d}");
        assert!(d.path.starts_with("crates/"), "root-relative path: {d}");
    }
    let mut sorted = diags.clone();
    sorted.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    assert_eq!(diags, sorted, "engine output must already be sorted");
}

#[test]
fn suppressed_tree_is_spotless() {
    let diags = lint_root(&fixture_root("suppressed")).expect("fixture tree readable");
    assert!(
        diags.is_empty(),
        "suppressed corpus must lint clean, got: {diags:#?}"
    );
}

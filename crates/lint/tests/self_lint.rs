//! The workspace self-lint: run the full rule set over the real tree as
//! part of `cargo test`, so Tier-1 itself gates the determinism and
//! hot-path invariants — CI's `dcn-lint --ci` step is then a cheap
//! re-statement, not the only line of defense.
//!
//! If this test fails, either fix the finding or suppress it the
//! documented way (`// lint: allow(<rule>) <reason>`, `// perf: cold`,
//! `// SAFETY: …`, `// determinism: …`) — see DESIGN.md §8.

use std::path::Path;

use dcn_lint::engine::lint_root;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    // Sanity: we really are looking at the workspace, not some stray dir.
    assert!(
        root.join("Cargo.toml").exists() && root.join("crates/simnet").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let diags = lint_root(root).expect("workspace tree readable");
    if !diags.is_empty() {
        let listing: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
        panic!(
            "dcn-lint found {} violation(s) in the workspace:\n{}\n\
             fix the code or add the documented justification comment \
             (DESIGN.md §8)",
            diags.len(),
            listing.join("\n")
        );
    }
}

//! # dcn-rng — deterministic, dependency-free random number generation
//!
//! The build environment of this workspace has no access to crates.io, so the
//! usual `rand` / `rand_chacha` pair is replaced by this small crate. It
//! provides exactly what the simulator and the workload generators need:
//!
//! * [`DetRng`] — a seeded **xoshiro256\*\*** generator (seed expansion via
//!   SplitMix64), deterministic across platforms and runs;
//! * the [`Rng`] trait with `gen`, `gen_range` and `gen_bool`, mirroring the
//!   `rand::Rng` surface used by the rest of the workspace;
//! * [`SeedableRng`] with `seed_from_u64`;
//! * [`SliceRandom`] with `choose` and `shuffle`.
//!
//! Determinism is a hard requirement here — every experiment is reproducible
//! from its seed — while cryptographic quality is not; xoshiro256\*\* passes
//! the statistical tests that matter for simulation workloads.
//!
//! ```
//! use dcn_rng::{DetRng, Rng, SeedableRng};
//!
//! let mut a = DetRng::seed_from_u64(7);
//! let mut b = DetRng::seed_from_u64(7);
//! let xs: Vec<u64> = (0..5).map(|_| a.gen_range(0u64..=99)).collect();
//! let ys: Vec<u64> = (0..5).map(|_| b.gen_range(0u64..=99)).collect();
//! assert_eq!(xs, ys);
//! assert!(xs.iter().all(|&x| x <= 99));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// One step of the SplitMix64 sequence: mixes `z` into a well-distributed
/// 64-bit value.
///
/// This is the same finaliser [`DetRng::seed_from_u64`] uses for state
/// expansion. It is exposed so that callers can derive *independent* child
/// seeds from a (seed, index) pair — e.g. one seed per cell of a sweep grid —
/// without the streams depending on evaluation order:
///
/// ```
/// use dcn_rng::split_mix64;
///
/// let base = 42u64;
/// let cell_seed = |i: u64| split_mix64(base ^ split_mix64(i));
/// assert_ne!(cell_seed(0), cell_seed(1));
/// assert_eq!(cell_seed(3), cell_seed(3));
/// ```
pub fn split_mix64(z: u64) -> u64 {
    let mut z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic xoshiro256\*\* generator.
///
/// The 256-bit state is expanded from the seed with SplitMix64, which
/// guarantees a well-mixed non-zero state for every seed (including 0).
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl SeedableRng for DetRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            // split_mix64 re-adds the increment, so feed it the pre-advance
            // state to keep the historical stream (seeds must stay stable —
            // every recorded experiment replays from them).
            split_mix64(sm.wrapping_sub(0x9E37_79B9_7F4A_7C15))
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl DetRng {
    /// Produces the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The sampling surface used throughout the workspace (a small subset of
/// `rand::Rng`).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value of a primitive integer type.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniformly random value from `range` (half-open or inclusive integer
    /// ranges).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, the standard float-in-[0,1) construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl Rng for DetRng {
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
}

/// Types that can be drawn uniformly from a generator.
pub trait FromRng {
    /// Draws one uniformly random value.
    fn from_rng<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng!(u8, u16, u32, u64, usize);

/// Integer ranges a [`Rng`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one uniformly random element.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Unbiased sampling of `[0, span]` (inclusive) via rejection on 64 bits.
fn bounded_inclusive<R: Rng>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let buckets = span + 1;
    // Largest multiple of `buckets` that fits in 64 bits; rejection above it
    // removes the modulo bias.
    let zone = u64::MAX - (u64::MAX % buckets + 1) % buckets;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % buckets;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start - 1) as u64;
                self.start + bounded_inclusive(rng, span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64;
                lo + bounded_inclusive(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Random selection and shuffling over slices (the used subset of
/// `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    /// An unbiased Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_mix64_is_a_deterministic_bijective_mixer() {
        assert_eq!(split_mix64(7), split_mix64(7));
        // Nearby inputs map to far-apart outputs (avalanche sanity check).
        let outs: Vec<u64> = (0..64u64).map(split_mix64).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            outs.len(),
            "collision among 64 consecutive inputs"
        );
        assert!(outs.windows(2).all(|w| w[0].abs_diff(w[1]) > 1 << 32));
    }

    #[test]
    fn seed_expansion_still_matches_the_recorded_streams() {
        // The first draws for a few seeds, pinned so that refactors of the
        // seed expansion cannot silently re-seed every recorded experiment.
        let first = |seed: u64| DetRng::seed_from_u64(seed).next_u64();
        assert_eq!(first(0), 11091344671253066420);
        assert_eq!(first(1), 12966619160104079557);
        assert_eq!(first(42), 1546998764402558742);
    }

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..100).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = DetRng::seed_from_u64(43);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut rng = DetRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..10).map(|_| rng.next_u64()).collect();
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        assert!(xs.iter().any(|&x| x != 0));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = DetRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..=9);
            assert!((3..=9).contains(&v));
            let v = rng.gen_range(0u8..100);
            assert!(v < 100);
            let v = rng.gen_range(5usize..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn full_u64_range_is_accepted() {
        let mut rng = DetRng::seed_from_u64(2);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = DetRng::seed_from_u64(3);
        let _ = rng.gen_range(5u64..5);
    }

    #[test]
    fn range_sampling_covers_all_buckets() {
        let mut rng = DetRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = DetRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_and_shuffle_behave() {
        let mut rng = DetRng::seed_from_u64(6);
        let empty: &[u8] = &[];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1u8, 2, 3];
        assert!(items.contains(items.choose(&mut rng).unwrap()));

        let mut xs: Vec<u32> = (0..50).collect();
        let original = xs.clone();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must be a permutation");
        assert_ne!(
            xs, original,
            "a 50-element shuffle is a fixed point with negligible probability"
        );
    }

    #[test]
    fn gen_produces_each_width() {
        let mut rng = DetRng::seed_from_u64(7);
        let _: u8 = rng.gen();
        let _: u32 = rng.gen();
        let _: u64 = rng.gen();
        let _: usize = rng.gen();
    }
}

//! `dcn-load` — open-loop load generator for `dcn-serve`.
//!
//! ```text
//! dcn-load --addr HOST:PORT [--clients N] [--requests TOTAL] [--rate R]
//!          [--kind event|add-leaf|mixed] [--seed N] [--report PATH]
//!          [--shutdown]
//! ```
//!
//! Spawns `--clients` connection threads. Each one performs the protocol
//! handshake (`hello`, `subscribe`), then submits its share of `--requests`
//! permit requests **open-loop**: inter-arrival gaps are exponential with
//! per-client rate `--rate` (requests/sec; `0` = no pacing), drawn from a
//! seeded [`DetRng`], and the sender never waits for an answer — exactly the
//! arrival model of an M/M/c-style queueing experiment, so a server that
//! falls behind accumulates queue instead of silently slowing the clients.
//!
//! A per-connection reader thread matches streamed outcome events back to
//! send timestamps via the client-chosen `tag`, recording one grant-latency
//! sample per answered request. The merged result — sustained requests/sec
//! plus p50/p90/p95/p99/max latency — is emitted as a single-line JSON
//! report (`--report PATH`, default stdout) that `dcn_perf --serve-report`
//! ingests as the sustained-throughput benchmark entry.
//!
//! `--shutdown` sends `{"op": "shutdown"}` after the run, letting scripts
//! tear the server down cleanly.
//!
//! This binary is intentionally wall-clock driven (it measures a real
//! server); every `Instant` site carries a `// determinism:` justification
//! because nothing here feeds the deterministic sweep reports.

use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_workload::json;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::mpsc;
use std::thread;
// determinism: dcn-load measures a live TCP server's wall-clock latency; its
// determinism: report is a measurement artifact (like crates/bench timings),
// determinism: never an input to the pinned sweep outputs.
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    clients: usize,
    requests: u64,
    rate: f64,
    kind: String,
    seed: u64,
    report: Option<String>,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: String::new(),
        clients: 4,
        requests: 10_000,
        rate: 0.0,
        kind: "event".to_string(),
        seed: 1,
        report: None,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?;
            }
            "--rate" => {
                args.rate = value("--rate")?
                    .parse()
                    .map_err(|e| format!("--rate: {e}"))?
            }
            "--kind" => args.kind = value("--kind")?,
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--report" => args.report = Some(value("--report")?),
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".to_string());
    }
    if !matches!(args.kind.as_str(), "event" | "add-leaf" | "mixed") {
        return Err(format!(
            "--kind must be event, add-leaf or mixed, got {:?}",
            args.kind
        ));
    }
    Ok(args)
}

/// One connection's tally.
#[derive(Default)]
struct Tally {
    sent: u64,
    granted: u64,
    rejected: u64,
    refused: u64,
    errors: u64,
    lost: u64,
    latencies_us: Vec<u64>,
}

impl Tally {
    fn answered(&self) -> u64 {
        self.granted + self.rejected + self.refused
    }

    fn merge(&mut self, other: Tally) {
        self.sent += other.sent;
        self.granted += other.granted;
        self.rejected += other.rejected;
        self.refused += other.refused;
        self.errors += other.errors;
        self.lost += other.lost;
        self.latencies_us.extend(other.latencies_us);
    }
}

fn handshake(w: &mut BufWriter<TcpStream>, r: &mut BufReader<TcpStream>) -> Result<u64, String> {
    let mut line = String::new();
    w.write_all(b"{\"op\": \"hello\", \"proto\": 1}\n")
        .and_then(|_| w.flush())
        .map_err(|e| format!("hello write: {e}"))?;
    r.read_line(&mut line)
        .map_err(|e| format!("hello read: {e}"))?;
    let welcome = json::parse(line.trim_end()).map_err(|e| format!("welcome frame: {e}"))?;
    let nodes = welcome
        .get("nodes")
        .and_then(|n| n.as_u64())
        .map_err(|e| format!("welcome frame: {e}"))?;
    line.clear();
    w.write_all(b"{\"op\": \"subscribe\"}\n")
        .and_then(|_| w.flush())
        .map_err(|e| format!("subscribe write: {e}"))?;
    r.read_line(&mut line)
        .map_err(|e| format!("subscribe read: {e}"))?;
    json::parse(line.trim_end())
        .map_err(|e| format!("subscribe reply: {e}"))?
        .get("ok")
        .map_err(|e| format!("subscribe reply: {e}"))?;
    Ok(nodes)
}

/// Reads streamed frames until every sent request has a final answer (an
/// outcome event, a tagged error, or an untagged overload rejection), the
/// socket idles out, or the server goes away.
fn reader_loop(
    stream: &TcpStream,
    mut r: BufReader<TcpStream>,
    // determinism: send-timestamp handoff for latency measurement only.
    stamps: &mpsc::Receiver<(u64, Instant)>,
    expected: u64,
) -> Tally {
    let mut tally = Tally::default();
    // determinism: tag → send time; latency samples are wall-clock by design.
    let mut pending: HashMap<u64, Instant> = HashMap::new();
    // Idle guard: when the stream stays silent this long, the remaining
    // requests are declared lost (e.g. frames dropped on a full outbox).
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut line = String::new();
    while tally.answered() + tally.errors + tally.lost < expected {
        line.clear();
        match r.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => {
                // Timeout (or hard error) with requests outstanding.
                tally.lost = expected - tally.answered() - tally.errors;
                break;
            }
        }
        while let Ok((tag, at)) = stamps.try_recv() {
            pending.insert(tag, at);
        }
        let v = match json::parse(line.trim_end()) {
            Ok(v) => v,
            Err(_) => {
                tally.errors += 1;
                continue;
            }
        };
        let tag = v
            .get_opt("tag")
            .ok()
            .flatten()
            .and_then(|t| t.as_u64().ok());
        if let Ok(event) = v.get("event").and_then(|e| e.as_str()) {
            match event {
                "granted" => tally.granted += 1,
                "rejected" => tally.rejected += 1,
                "refused" => tally.refused += 1,
                // Topology events are informational, not answers.
                _ => continue,
            }
            if let Some(at) = tag.and_then(|t| pending.remove(&t)) {
                tally
                    .latencies_us
                    .push(u64::try_from(at.elapsed().as_micros()).unwrap_or(u64::MAX));
            }
        } else if v.get("error").is_ok() {
            // Tagged: a specific request was refused at submission. Untagged:
            // an overload/framing rejection that still consumed one line.
            tally.errors += 1;
            if let Some(t) = tag {
                pending.remove(&t);
            }
        }
        // Ticket acks and stats replies are not final answers.
    }
    tally
}

#[allow(clippy::too_many_arguments)]
fn run_client(
    addr: &str,
    requests: u64,
    rate: f64,
    kind: &str,
    seed: u64,
) -> Result<Tally, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_nodelay(true);
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let nodes = handshake(&mut w, &mut r)?;

    let (stamp_tx, stamp_rx) = mpsc::channel();
    let reader = thread::Builder::new()
        .name("dcn-load-read".to_string())
        .spawn({
            let stream = stream.try_clone().map_err(|e| e.to_string())?;
            move || reader_loop(&stream, r, &stamp_rx, requests)
        })
        .map_err(|e| e.to_string())?;

    let mut rng = DetRng::seed_from_u64(seed);
    let mut sent = 0u64;
    for tag in 0..requests {
        let node = rng.gen_range(0..nodes.max(1));
        let kind_str = match kind {
            "event" => "event",
            "add-leaf" => "add-leaf",
            // A 9:1 permit/growth mix keeps the tree changing under load.
            _ => {
                if rng.gen_bool(0.9) {
                    "event"
                } else {
                    "add-leaf"
                }
            }
        };
        let line = format!(
            "{{\"op\": \"submit\", \"kind\": \"{kind_str}\", \"node\": {node}, \"tag\": {tag}}}\n"
        );
        // determinism: the send stamp starts this request's latency clock.
        let _ = stamp_tx.send((tag, Instant::now()));
        if w.write_all(line.as_bytes())
            .and_then(|_| w.flush())
            .is_err()
        {
            break;
        }
        sent += 1;
        if rate > 0.0 {
            // Open-loop pacing: exponential inter-arrival gaps of mean
            // 1/rate, independent of how fast the server answers.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let gap = -(1.0 - unit).ln() / rate;
            thread::sleep(Duration::from_secs_f64(gap.min(1.0)));
        }
    }
    drop(stamp_tx);
    let mut tally = reader
        .join()
        .map_err(|_| "reader thread panicked".to_string())?;
    tally.sent = sent;
    // Requests that never got a line back (e.g. the sender broke off early).
    let accounted = tally.answered() + tally.errors + tally.lost;
    tally.lost += sent.saturating_sub(accounted);
    Ok(tally)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn send_shutdown(addr: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut w = BufWriter::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut r = BufReader::new(stream);
    w.write_all(b"{\"op\": \"hello\", \"proto\": 1}\n{\"op\": \"shutdown\"}\n")
        .and_then(|_| w.flush())
        .map_err(|e| e.to_string())?;
    let mut line = String::new();
    let _ = r.read_line(&mut line); // welcome
    line.clear();
    let _ = r.read_line(&mut line); // shutting-down
    if line.contains("shutting-down") {
        Ok(())
    } else {
        Err(format!("unexpected shutdown reply: {}", line.trim_end()))
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("dcn-load: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let per_client = args.requests / args.clients as u64;
    let remainder = args.requests % args.clients as u64;
    // determinism: wall time over a live server is the measured quantity.
    let start = Instant::now();
    let mut workers = Vec::new();
    for idx in 0..args.clients {
        let addr = args.addr.clone();
        let kind = args.kind.clone();
        let quota = per_client + u64::from((idx as u64) < remainder);
        let seed = args
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(idx as u64 + 1);
        let rate = args.rate;
        workers.push(
            thread::Builder::new()
                .name(format!("dcn-load-{idx}"))
                .spawn(move || run_client(&addr, quota, rate, &kind, seed)),
        );
    }
    let mut total = Tally::default();
    let mut failures = Vec::new();
    for worker in workers {
        match worker.map(|w| w.join()) {
            Ok(Ok(Ok(tally))) => total.merge(tally),
            Ok(Ok(Err(msg))) => failures.push(msg),
            Ok(Err(_)) => failures.push("client thread panicked".to_string()),
            Err(e) => failures.push(e.to_string()),
        }
    }
    let elapsed = start.elapsed();

    if args.shutdown {
        if let Err(msg) = send_shutdown(&args.addr) {
            eprintln!("dcn-load: shutdown: {msg}");
            failures.push(msg);
        }
    }
    for msg in &failures {
        eprintln!("dcn-load: client error: {msg}");
    }
    if total.sent == 0 {
        eprintln!("dcn-load: no requests were sent");
        return ExitCode::FAILURE;
    }

    total.latencies_us.sort_unstable();
    let lat = &total.latencies_us;
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    let answered = total.answered();
    let rps = answered as f64 / elapsed.as_secs_f64().max(1e-9);
    let report = format!(
        "{{\"tool\": \"dcn-load\", \"addr\": {}, \"clients\": {}, \"requests\": {}, \
         \"rate_per_client\": {}, \"seed\": {}, \"kind\": {}, \"sent\": {}, \"answered\": {}, \
         \"granted\": {}, \"rejected\": {}, \"refused\": {}, \"errors\": {}, \"lost\": {}, \
         \"elapsed_ms\": {:.3}, \"requests_per_sec\": {:.1}, \"latency_us\": \
         {{\"p50\": {}, \"p90\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}}}}}",
        dcn_workload::json_quote(&args.addr),
        args.clients,
        args.requests,
        args.rate,
        args.seed,
        dcn_workload::json_quote(&args.kind),
        total.sent,
        answered,
        total.granted,
        total.rejected,
        total.refused,
        total.errors,
        total.lost,
        elapsed_ms,
        rps,
        percentile(lat, 0.50),
        percentile(lat, 0.90),
        percentile(lat, 0.95),
        percentile(lat, 0.99),
        lat.last().copied().unwrap_or(0),
    );
    match &args.report {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{report}\n")) {
                eprintln!("dcn-load: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!(
                "dcn-load: {answered}/{} answered in {elapsed_ms:.0} ms ({rps:.0} req/s), report at {path}",
                total.sent
            );
        }
        None => println!("{report}"),
    }
    if !failures.is_empty() || total.lost > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

//! `dcn-serve` — run one (M,W)-controller as a TCP admission-control
//! service.
//!
//! ```text
//! dcn-serve [--addr HOST:PORT] [--family NAME] [--m N] [--w N]
//!           [--shape star|path] [--nodes N] [--seed N]
//!           [--step-budget N] [--shards K] [--port-file PATH]
//! ```
//!
//! Binds the address (port 0 picks an ephemeral port; `--port-file` writes
//! the bound port for scripts to discover), builds the controller, and
//! serves the DESIGN.md §9 line-JSON protocol until a client sends
//! `{"op": "shutdown"}`. Try it interactively:
//!
//! ```text
//! $ dcn-serve --addr 127.0.0.1:7007 --family centralized --m 1024 --w 64 &
//! $ printf '%s\n' '{"op":"hello","proto":1}' \
//!     '{"op":"submit","kind":"event","node":0}' \
//!     '{"op":"poll","ticket":0}' '{"op":"shutdown"}' | nc 127.0.0.1 7007
//! ```

use dcn_server::{serve, NetOptions, ServeConfig};
use dcn_workload::{Family, TreeShape};
use std::process::ExitCode;

struct Args {
    addr: String,
    family: Family,
    m: u64,
    w: u64,
    shape_kind: String,
    nodes: usize,
    seed: u64,
    step_budget: u64,
    shards: usize,
    port_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        family: Family::Centralized,
        m: 1 << 20,
        w: 1024,
        shape_kind: "star".to_string(),
        nodes: 64,
        seed: 0,
        step_budget: 4096,
        shards: 1,
        port_file: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--family" => {
                let name = value("--family")?;
                args.family =
                    Family::from_name(&name).ok_or_else(|| format!("unknown family {name:?}"))?;
            }
            "--m" => args.m = value("--m")?.parse().map_err(|e| format!("--m: {e}"))?,
            "--w" => args.w = value("--w")?.parse().map_err(|e| format!("--w: {e}"))?,
            "--shape" => args.shape_kind = value("--shape")?,
            "--nodes" => {
                args.nodes = value("--nodes")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--step-budget" => {
                args.step_budget = value("--step-budget")?
                    .parse()
                    .map_err(|e| format!("--step-budget: {e}"))?;
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if args.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--port-file" => args.port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("dcn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let shape = match args.shape_kind.as_str() {
        "star" => TreeShape::Star { nodes: args.nodes },
        "path" => TreeShape::Path { nodes: args.nodes },
        other => {
            eprintln!("dcn-serve: unknown shape {other:?} (use star or path)");
            return ExitCode::FAILURE;
        }
    };
    let config = ServeConfig::new(args.family, args.m, args.w)
        .with_shape(shape)
        .with_seed(args.seed)
        .with_step_budget(args.step_budget)
        .with_shards(args.shards);
    let handle = match serve(config, &args.addr, NetOptions::default()) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("dcn-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = handle.local_addr();
    if let Some(path) = &args.port_file {
        if let Err(e) = std::fs::write(path, format!("{}\n", local.port())) {
            eprintln!("dcn-serve: cannot write {path}: {e}");
            handle.shutdown();
            handle.join();
            return ExitCode::FAILURE;
        }
    }
    println!(
        "dcn-serve listening on {local} family={} m={} w={} nodes={} seed={} shards={}",
        args.family.name(),
        args.m,
        args.w,
        args.nodes,
        args.seed,
        args.shards
    );
    handle.join();
    println!("dcn-serve: drained and stopped");
    ExitCode::SUCCESS
}

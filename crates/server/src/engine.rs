//! The deterministic protocol engine: one controller, many clients.
//!
//! [`EngineCore`] is the single-writer heart of the server. It owns one
//! [`ControllerSpec`]-constructed controller and turns decoded
//! [`ClientFrame`]s into reply frames, pumping the controller with bounded
//! [`Controller::step`] slices and routing drained
//! [`ControllerEvent`]s back to the client that submitted each ticket.
//!
//! Crucially, the core is **pure state machine**: no sockets, no threads, no
//! wall clock — time is the controller's own virtual clock. Both transports
//! drive it the same way (`handle_line` per request line, `pump` while
//! non-quiescent):
//!
//! * the TCP layer ([`serve`](crate::serve)) runs it on a dedicated engine
//!   thread behind mpsc channels (a `Box<dyn Controller>` is not `Send`, so
//!   the engine is *built* on that thread from the `Send`-able
//!   [`ServeConfig`]);
//! * the [`Loopback`](crate::Loopback) transport calls it directly, which is
//!   what makes protocol semantics testable byte-for-byte.

use crate::protocol::{self, ClientFrame, StatsSnapshot, Submission, WireKind, WireOutcome};
use dcn_collections::FxHashMap;
use dcn_controller::{Controller, ControllerError, ControllerEvent, RequestKind};
use dcn_simnet::SimConfig;
use dcn_tree::NodeId;
use dcn_workload::{build_tree, ControllerSpec, Family, TreeShape};

/// Identifies one client connection for the engine's routing tables. The
/// transport allocates these (monotonically, starting at 1).
pub type ClientId = u64;

/// Everything needed to build the served controller — `Send + Copy`, so a
/// transport thread can carry it to the engine thread and construct the
/// (non-`Send`) controller there.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// The controller family to serve.
    pub family: Family,
    /// The permit budget `M`.
    pub m: u64,
    /// The waste bound `W`.
    pub w: u64,
    /// The initial tree the controller is constructed over.
    pub shape: TreeShape,
    /// Seed for the distributed families' simulator.
    pub seed: u64,
    /// Simulator events per [`Controller::step`] slice; bounds how long the
    /// engine computes between looking at its inbox.
    pub step_budget: u64,
    /// Explicit node bound `U`, overriding the [`ServeConfig::u_bound`]
    /// default (used by the parity tests, which must match
    /// [`ScenarioRunner`](dcn_workload::ScenarioRunner)'s bound exactly —
    /// families like the iterated controller partition their budget by a
    /// `U`-dependent schedule, so a different bound is a different
    /// controller).
    pub u_bound_override: Option<usize>,
    /// Number of shards to carve the served tree into. `1` (the default)
    /// serves the plain configured family; `k ≥ 2` wraps the distributed
    /// family in a [`ShardedController`](dcn_controller::ShardedController)
    /// federation and requires `family` to be [`Family::Distributed`].
    pub shards: usize,
}

impl ServeConfig {
    /// A config with an 8-node star, seed 0, and a 4096-event step budget.
    pub fn new(family: Family, m: u64, w: u64) -> Self {
        ServeConfig {
            family,
            m,
            w,
            shape: TreeShape::Star { nodes: 8 },
            seed: 0,
            step_budget: 4096,
            u_bound_override: None,
            shards: 1,
        }
    }

    /// Replaces the initial tree shape.
    pub fn with_shape(mut self, shape: TreeShape) -> Self {
        self.shape = shape;
        self
    }

    /// Replaces the simulator seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the per-slice step budget (clamped to ≥ 1).
    pub fn with_step_budget(mut self, step_budget: u64) -> Self {
        self.step_budget = step_budget.max(1);
        self
    }

    /// Pins the node bound `U` (see [`ServeConfig::u_bound_override`]).
    pub fn with_u_bound(mut self, u_bound: usize) -> Self {
        self.u_bound_override = Some(u_bound);
        self
    }

    /// Serves a sharded federation of `shards` regions (clamped to ≥ 1; see
    /// [`ServeConfig::shards`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The node bound `U` the controller is built with: the override if
    /// set, else a bound that covers every tree this config can grow — the
    /// initial nodes plus one per permit (each grant can add at most one
    /// node), plus the root slack the constructors expect.
    pub fn u_bound(&self) -> usize {
        self.u_bound_override
            .unwrap_or_else(|| self.shape.node_budget() + 1 + self.m as usize + 1)
    }
}

#[derive(Default)]
struct ClientState {
    greeted: bool,
    subscribed: bool,
}

/// A reply or event line addressed to one client. Transports deliver these
/// in order; the engine never writes to sockets itself.
pub type Outgoing = (ClientId, String);

/// The deterministic protocol state machine (see the module docs).
pub struct EngineCore {
    ctrl: Box<dyn Controller>,
    config: ServeConfig,
    clients: FxHashMap<ClientId, ClientState>,
    /// ticket → (submitting client, its correlation tag). Entries live for
    /// the server's lifetime, like the controller's own record history.
    route: FxHashMap<u64, (ClientId, Option<u64>)>,
    /// ticket → resolved outcome, for O(1) `poll` replies (the trait's
    /// `outcome()` is a linear scan over the record history).
    resolved: FxHashMap<u64, WireOutcome>,
    submitted: u64,
    refused: u64,
    protocol_errors: u64,
    dropped_frames: u64,
    quiescent: bool,
    shutting_down: bool,
    last_engine_error: Option<String>,
}

impl EngineCore {
    /// Builds the engine: constructs the configured controller over the
    /// configured initial tree.
    ///
    /// # Errors
    ///
    /// Propagates the family's parameter validation (e.g. `W = 0` for
    /// families that require `W ≥ 1`).
    pub fn new(config: ServeConfig) -> Result<Self, ControllerError> {
        let ctrl: Box<dyn Controller> = if config.shards > 1 {
            // A sharded federation wraps the distributed protocol; other
            // families have no region-local agents to shard.
            if config.family != Family::Distributed {
                return Err(ControllerError::Sim(format!(
                    "--shards requires the distributed family, not {}",
                    config.family.name()
                )));
            }
            Box::new(dcn_controller::ShardedController::new(
                SimConfig::new(config.seed),
                build_tree(config.shape),
                config.m,
                config.w,
                config.u_bound(),
                config.shards,
            )?)
        } else {
            let spec = ControllerSpec {
                family: config.family,
                m: config.m,
                w: config.w,
                sim: SimConfig::new(config.seed),
            };
            spec.build(build_tree(config.shape), config.u_bound())?
        };
        Ok(EngineCore {
            ctrl,
            config,
            clients: FxHashMap::default(),
            route: FxHashMap::default(),
            resolved: FxHashMap::default(),
            submitted: 0,
            refused: 0,
            protocol_errors: 0,
            dropped_frames: 0,
            quiescent: true,
            shutting_down: false,
            last_engine_error: None,
        })
    }

    /// The config the engine was built from.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The served controller (read-only; for stats, tests and parity
    /// checks against [`ScenarioRunner`](dcn_workload::ScenarioRunner)).
    pub fn controller(&self) -> &dyn Controller {
        self.ctrl.as_ref()
    }

    /// Whether the controller has no in-flight work (nothing to [`pump`]).
    ///
    /// [`pump`]: EngineCore::pump
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Whether a `shutdown` frame (or [`EngineCore::begin_shutdown`]) has
    /// been seen; the transport drains and exits once quiescent.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down
    }

    /// Starts a shutdown without a protocol frame (transport-level stop).
    pub fn begin_shutdown(&mut self) {
        self.shutting_down = true;
    }

    /// Records frames the transport had to drop on full outboxes (reported
    /// in `stats`).
    pub fn note_dropped_frames(&mut self, n: u64) {
        self.dropped_frames += n;
    }

    /// The last controller-step error, if any (see [`EngineCore::pump`]).
    pub fn last_engine_error(&self) -> Option<&str> {
        self.last_engine_error.as_deref()
    }

    /// Registers a connection.
    pub fn client_connected(&mut self, client: ClientId) {
        self.clients.insert(client, ClientState::default());
    }

    /// Unregisters a connection. Its tickets stay resolved (the routing
    /// entry outlives the connection), but nothing further is streamed.
    pub fn client_disconnected(&mut self, client: ClientId) {
        self.clients.remove(&client);
    }

    /// Decodes and applies one request line. Direct replies are appended to
    /// `out` immediately (a `submit`'s `ticket` frame therefore always
    /// precedes that ticket's events); outcome events flow when the
    /// transport next calls [`EngineCore::pump`] — an accepted submission
    /// marks the engine non-quiescent so transports know to. Polling
    /// between a submit and the next pump honestly reports `pending`.
    pub fn handle_line(&mut self, client: ClientId, line: &str, out: &mut Vec<Outgoing>) {
        match protocol::parse_frame(line) {
            Ok(frame) => self.apply(client, frame, out),
            Err(e) => {
                self.protocol_errors += 1;
                out.push((client, protocol::error_frame(e.code, &e.detail, None)));
            }
        }
    }

    /// Applies one decoded frame (no pump; [`EngineCore::handle_line`] is
    /// the usual entry point).
    pub fn apply(&mut self, client: ClientId, frame: ClientFrame, out: &mut Vec<Outgoing>) {
        // A connection must introduce itself before anything else; every
        // other pre-hello frame is refused but the connection stays open.
        let greeted = self
            .clients
            .get(&client)
            .map(|c| c.greeted)
            .unwrap_or(false);
        if !greeted && !matches!(frame, ClientFrame::Hello { .. }) {
            self.protocol_errors += 1;
            out.push((
                client,
                protocol::error_frame("hello-required", "send a hello frame first", None),
            ));
            return;
        }
        match frame {
            ClientFrame::Hello {
                proto,
                family,
                m,
                w,
            } => self.apply_hello(client, proto, family, m, w, out),
            ClientFrame::Submit(s) | ClientFrame::Topology(s) => self.apply_submit(client, s, out),
            // The parser validated the whole batch, so every element is
            // enqueued; replies come back one ticket frame per element, in
            // array order.
            ClientFrame::Batch(subs) => {
                for s in subs {
                    self.apply_submit(client, s, out);
                }
            }
            ClientFrame::Poll { ticket } => {
                let reply = match (self.resolved.get(&ticket), self.route.get(&ticket)) {
                    (Some(outcome), _) => protocol::outcome_frame(ticket, outcome),
                    (None, Some(_)) => protocol::outcome_frame(ticket, &WireOutcome::Pending),
                    (None, None) => {
                        self.protocol_errors += 1;
                        protocol::error_frame(
                            "unknown-ticket",
                            &format!("ticket {ticket} was never issued"),
                            None,
                        )
                    }
                };
                out.push((client, reply));
            }
            ClientFrame::Subscribe => {
                if let Some(state) = self.clients.get_mut(&client) {
                    state.subscribed = true;
                }
                out.push((client, protocol::subscribed_frame()));
            }
            ClientFrame::Stats => {
                let frame = protocol::stats_frame(&self.stats());
                out.push((client, frame));
            }
            ClientFrame::Shutdown => {
                self.shutting_down = true;
                out.push((client, protocol::shutting_down_frame()));
            }
        }
    }

    fn apply_hello(
        &mut self,
        client: ClientId,
        proto: Option<u64>,
        family: Option<String>,
        m: Option<u64>,
        w: Option<u64>,
        out: &mut Vec<Outgoing>,
    ) {
        if let Some(p) = proto {
            if p != protocol::PROTO_VERSION {
                self.protocol_errors += 1;
                out.push((
                    client,
                    protocol::error_frame(
                        "unsupported-proto",
                        &format!("this server speaks proto {}", protocol::PROTO_VERSION),
                        None,
                    ),
                ));
                return;
            }
        }
        let actual = (
            self.config.family.name(),
            self.ctrl.budget(),
            self.ctrl.waste_bound(),
        );
        let mismatch = family.as_deref().is_some_and(|f| f != actual.0)
            || m.is_some_and(|m| m != actual.1)
            || w.is_some_and(|w| w != actual.2);
        if mismatch {
            self.protocol_errors += 1;
            out.push((
                client,
                protocol::error_frame(
                    "config-mismatch",
                    &format!(
                        "server runs family={} m={} w={}",
                        actual.0, actual.1, actual.2
                    ),
                    None,
                ),
            ));
            return;
        }
        if let Some(state) = self.clients.get_mut(&client) {
            state.greeted = true;
        }
        out.push((
            client,
            protocol::welcome_frame(actual.0, actual.1, actual.2, self.ctrl.tree().node_count()),
        ));
    }

    fn apply_submit(&mut self, client: ClientId, s: Submission, out: &mut Vec<Outgoing>) {
        let node = match self.wire_node(s.node) {
            Ok(n) => n,
            Err(detail) => {
                self.protocol_errors += 1;
                out.push((client, protocol::error_frame("bad-node", &detail, s.tag)));
                return;
            }
        };
        let kind = match s.kind {
            WireKind::AddLeaf => RequestKind::AddLeaf,
            WireKind::AddInternalAbove { child } => match self.wire_node(child) {
                Ok(c) => RequestKind::AddInternalAbove(c),
                Err(detail) => {
                    self.protocol_errors += 1;
                    out.push((client, protocol::error_frame("bad-node", &detail, s.tag)));
                    return;
                }
            },
            WireKind::RemoveSelf => RequestKind::RemoveSelf,
            WireKind::Event => RequestKind::NonTopological,
        };
        match self.ctrl.submit(node, kind) {
            Ok(id) => {
                self.submitted += 1;
                // The new ticket's answer (and, for synchronous families,
                // its already-queued events) is work for the next pump.
                self.quiescent = false;
                self.route.insert(id.0, (client, s.tag));
                out.push((client, protocol::ticket_frame(id.0, s.tag)));
            }
            // Submission validation failed (stale node, bad edge): no
            // ticket exists, so the refusal is an error frame, tagged so
            // pipelined clients can correlate it.
            Err(e) => {
                self.protocol_errors += 1;
                out.push((
                    client,
                    protocol::error_frame("submit-rejected", &e.to_string(), s.tag),
                ));
            }
        }
    }

    /// Validates a wire node index against the current tree.
    fn wire_node(&self, raw: u64) -> Result<NodeId, String> {
        let index = usize::try_from(raw).map_err(|_| format!("node {raw} out of range"))?;
        if index > u32::MAX as usize {
            return Err(format!("node {raw} out of range"));
        }
        let id = NodeId::from_index(index);
        if self.ctrl.tree().contains(id) {
            Ok(id)
        } else {
            Err(format!("node {raw} is not in the tree"))
        }
    }

    /// Advances the controller by one bounded step slice and routes every
    /// drained event to its submitting client (streamed only to subscribed
    /// connections; `poll` sees the same outcome either way). Returns
    /// `true` while there is more in-flight work.
    pub fn pump(&mut self, out: &mut Vec<Outgoing>) -> bool {
        match self.ctrl.step(self.config.step_budget) {
            Ok(progress) => self.quiescent = progress.quiescent,
            Err(e) => {
                // A step error means the simulator refused to advance; the
                // engine stays up and reports it via stats, but stops
                // claiming in-flight work it cannot finish.
                self.last_engine_error = Some(e.to_string());
                self.quiescent = true;
            }
        }
        for ev in self.ctrl.drain_events() {
            match ev {
                ControllerEvent::Granted { id, at, kind } => {
                    let outcome = WireOutcome::Granted {
                        at,
                        kind,
                        new_node: None,
                    };
                    self.resolved.insert(id.0, outcome);
                    self.notify(id.0, |t, tag| protocol::event_frame(t, &outcome, tag), out);
                }
                ControllerEvent::Rejected { id } => {
                    self.resolved.insert(id.0, WireOutcome::Rejected);
                    self.notify(
                        id.0,
                        |t, tag| protocol::event_frame(t, &WireOutcome::Rejected, tag),
                        out,
                    );
                }
                ControllerEvent::Refused { id } => {
                    self.refused += 1;
                    self.resolved.insert(id.0, WireOutcome::Refused);
                    self.notify(
                        id.0,
                        |t, tag| protocol::event_frame(t, &WireOutcome::Refused, tag),
                        out,
                    );
                }
                ControllerEvent::TopologyApplied { id, kind, node } => {
                    let new_node = node.map(|n| n.index() as u64);
                    if let Some(WireOutcome::Granted {
                        new_node: slot @ None,
                        ..
                    }) = self.resolved.get_mut(&id.0)
                    {
                        *slot = new_node;
                    }
                    self.notify(
                        id.0,
                        |t, tag| protocol::topology_event_frame(t, kind, new_node, tag),
                        out,
                    );
                }
            }
        }
        !self.quiescent
    }

    /// Streams one frame to the ticket's submitter, if still connected and
    /// subscribed.
    fn notify(
        &mut self,
        ticket: u64,
        frame: impl FnOnce(u64, Option<u64>) -> String,
        out: &mut Vec<Outgoing>,
    ) {
        if let Some(&(client, tag)) = self.route.get(&ticket) {
            if self
                .clients
                .get(&client)
                .map(|c| c.subscribed)
                .unwrap_or(false)
            {
                out.push((client, frame(ticket, tag)));
            }
        }
    }

    /// The current counter snapshot (the payload of a `stats` reply).
    pub fn stats(&self) -> StatsSnapshot {
        let metrics = self.ctrl.metrics();
        StatsSnapshot {
            submitted: self.submitted,
            granted: self.ctrl.granted(),
            rejected: self.ctrl.rejected(),
            refused: self.refused,
            protocol_errors: self.protocol_errors,
            dropped_frames: self.dropped_frames,
            clients: self.clients.len() as u64,
            nodes: self.ctrl.tree().node_count(),
            moves: metrics.moves,
            messages: metrics.messages,
            peak_node_memory_bits: metrics.peak_node_memory_bits,
            shutting_down: self.shutting_down,
        }
    }
}

//! # dcn-server — the (M,W)-controller as an admission-control service
//!
//! Everything else in the workspace is a batch binary: build a controller,
//! drive a scenario, print a report. This crate puts the paper's controller
//! behind a long-running network front-end — the (M,W)-permit system as an
//! actual admission-control service, which is what it operationally *is*:
//! clients ask for permits, the controller grants or rejects them under the
//! global budget `M` with waste bound `W`.
//!
//! The ticketed runtime API (PR 3) maps 1:1 onto a service:
//!
//! | service verb | runtime call |
//! |---|---|
//! | accept a request | [`Controller::submit`](dcn_controller::Controller::submit) → ticket |
//! | make progress | [`Controller::step`](dcn_controller::Controller::step)`(budget)` |
//! | push outcomes | [`Controller::drain_events`](dcn_controller::Controller::drain_events) |
//!
//! Three layers, strictly separated:
//!
//! * [`protocol`] — the line-delimited JSON frame grammar (DESIGN.md §9),
//!   hardened against untrusted input via `dcn_workload::json`'s typed
//!   errors, depth limit and length cap;
//! * [`EngineCore`] — the deterministic single-writer protocol state
//!   machine: one controller, per-ticket routing, no sockets, no wall
//!   clock;
//! * transports — the real TCP server ([`serve`], threads + bounded mpsc
//!   channels) and the deterministic in-process [`Loopback`] used by the
//!   byte-identical protocol tests.
//!
//! Binaries: `dcn-serve` (the server) and `dcn-load` (the open-loop load
//! generator whose JSON report feeds `dcn_perf`'s sustained-throughput
//! entry).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod loopback;
mod net;
pub mod protocol;

pub use engine::{ClientId, EngineCore, Outgoing, ServeConfig};
pub use loopback::Loopback;
pub use net::{serve, NetOptions, ServerHandle};

//! The deterministic in-process loopback transport.
//!
//! Same [`EngineCore`], no sockets: clients are small handles into an
//! in-memory queue table, and "time" is purely the controller's virtual
//! clock. Two loopback sessions fed the same frame sequence produce
//! byte-identical reply sequences — which is what lets the protocol state
//! machine (and its parity with the batch
//! [`ScenarioRunner`](dcn_workload::ScenarioRunner)) be pinned by ordinary
//! unit tests even though the real TCP server is wall-clock and thread
//! nondeterministic.
//!
//! The transport mirrors the TCP framing rules exactly: one request line in,
//! zero or more reply/event lines out, oversized lines answered with a
//! `line-too-long` error frame — both paths go through
//! [`EngineCore::handle_line`] and [`protocol::parse_frame`].

use crate::engine::{ClientId, EngineCore, ServeConfig};
use crate::protocol;
use dcn_collections::FxHashMap;
use dcn_controller::ControllerError;
use std::collections::VecDeque;

/// An in-process server: the engine plus per-client reply queues.
pub struct Loopback {
    engine: EngineCore,
    next_client: ClientId,
    queues: FxHashMap<ClientId, VecDeque<String>>,
    scratch: Vec<(ClientId, String)>,
}

impl Loopback {
    /// Builds a loopback server over a fresh engine.
    ///
    /// # Errors
    ///
    /// Propagates controller construction errors (see [`EngineCore::new`]).
    pub fn new(config: ServeConfig) -> Result<Self, ControllerError> {
        Ok(Loopback {
            engine: EngineCore::new(config)?,
            next_client: 0,
            queues: FxHashMap::default(),
            scratch: Vec::new(),
        })
    }

    /// Opens a connection and returns its id.
    pub fn connect(&mut self) -> ClientId {
        self.next_client += 1;
        let client = self.next_client;
        self.queues.insert(client, VecDeque::new());
        self.engine.client_connected(client);
        client
    }

    /// Closes a connection, dropping any undelivered frames.
    pub fn disconnect(&mut self, client: ClientId) {
        self.queues.remove(&client);
        self.engine.client_disconnected(client);
    }

    /// Sends one request line; direct replies land in the recipients'
    /// queues immediately. Outcome events flow on the next
    /// [`Loopback::pump_slice`] / [`Loopback::run_to_quiescence`] — the
    /// loopback analogue of the TCP engine thread pumping between inbox
    /// reads, kept explicit here so tests control the submit/pump
    /// interleaving exactly (the parity tests replicate
    /// [`ScenarioRunner`](dcn_workload::ScenarioRunner)'s batch semantics
    /// with it).
    pub fn send(&mut self, client: ClientId, line: &str) {
        self.scratch.clear();
        if line.len() > protocol::MAX_LINE_BYTES {
            // The TCP reader answers oversized lines before they reach the
            // engine; mirror that here so framing behaviour is identical.
            self.scratch.push((
                client,
                protocol::error_frame(
                    "line-too-long",
                    &format!(
                        "lines are capped at {} bytes, got {}",
                        protocol::MAX_LINE_BYTES,
                        line.len()
                    ),
                    None,
                ),
            ));
        } else {
            self.engine.handle_line(client, line, &mut self.scratch);
        }
        self.deliver();
    }

    /// Pumps one bounded step slice (at most the config's `step_budget`
    /// simulator events), delivering whatever resolved.
    pub fn pump_slice(&mut self) {
        self.scratch.clear();
        self.engine.pump(&mut self.scratch);
        self.deliver();
    }

    /// Pumps the engine until quiescent (the loopback analogue of the TCP
    /// engine thread spinning while work is in flight), delivering all
    /// streamed events.
    pub fn run_to_quiescence(&mut self) {
        self.scratch.clear();
        while self.engine.pump(&mut self.scratch) {}
        self.deliver();
    }

    /// Drains every frame queued for `client`, in delivery order.
    pub fn recv(&mut self, client: ClientId) -> Vec<String> {
        self.queues
            .get_mut(&client)
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// The engine, for stats and parity assertions.
    pub fn engine(&self) -> &EngineCore {
        &self.engine
    }

    fn deliver(&mut self) {
        for (client, frame) in self.scratch.drain(..) {
            if let Some(q) = self.queues.get_mut(&client) {
                q.push_back(frame);
            }
        }
    }
}

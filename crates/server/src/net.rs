//! The TCP transport: `TcpListener`, a thread per connection direction, and
//! one single-writer engine thread.
//!
//! ```text
//!  accept thread ──spawns──► reader thread ──(bounded inbox)──► engine thread
//!                            writer thread ◄──(bounded outbox)──┘
//! ```
//!
//! The engine thread is the only thread that touches the controller (a
//! `Box<dyn Controller>` is not `Send`, so it is *constructed* there from
//! the `Send`-able [`ServeConfig`]). Readers decode nothing: they split the
//! byte stream into length-capped lines and forward them; all protocol
//! logic lives in [`EngineCore`], shared verbatim with the deterministic
//! loopback transport.
//!
//! Backpressure is bounded at both ends and degrades to protocol-level
//! rejection rather than unbounded queueing:
//!
//! * **inbox** — each connection may have at most
//!   [`NetOptions::inbox_limit`] lines in flight toward the engine; past
//!   that the reader immediately answers `{"error": "overloaded"}` and
//!   drops the line.
//! * **outbox** — each connection's reply queue holds at most
//!   [`NetOptions::outbox_limit`] frames; a slow reader loses further
//!   frames, which the engine counts and reports as `dropped_frames` in
//!   `stats`.
//!
//! Shutdown (a `shutdown` frame, or [`ServerHandle::shutdown`]) lets the
//! engine finish all in-flight work, then stops the accept loop and drops
//! every outbox; writer threads drain what is queued, shut their sockets
//! down, and the readers unwind on the resulting EOF.

use crate::engine::{ClientId, EngineCore, Outgoing, ServeConfig};
use crate::protocol;
use dcn_collections::FxHashMap;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

/// Transport tuning knobs (the protocol itself has no options).
#[derive(Clone, Copy, Debug)]
pub struct NetOptions {
    /// Most request lines one connection may have queued toward the engine
    /// before further lines are answered with an `overloaded` error frame.
    pub inbox_limit: usize,
    /// Most reply/event frames queued toward one connection before further
    /// frames for it are dropped (counted in `stats.dropped_frames`).
    pub outbox_limit: usize,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            inbox_limit: 256,
            outbox_limit: 8192,
        }
    }
}

enum EngineMsg {
    Connect {
        client: ClientId,
        outbox: SyncSender<String>,
    },
    Line {
        client: ClientId,
        line: String,
        inflight: Arc<AtomicUsize>,
    },
    Disconnect {
        client: ClientId,
    },
    Stop,
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or send a `shutdown` frame) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    local: SocketAddr,
    tx: Sender<EngineMsg>,
    engine: Option<JoinHandle<()>>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Requests a drain-and-exit, like a client's `shutdown` frame.
    pub fn shutdown(&self) {
        let _ = self.tx.send(EngineMsg::Stop);
    }

    /// Waits for the engine and accept threads to finish (connection
    /// reader/writer threads unwind on their own once their sockets close).
    pub fn join(mut self) {
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `config`.
///
/// # Errors
///
/// Socket errors from bind/accept setup, plus controller construction
/// failures surfaced as [`io::ErrorKind::InvalidInput`].
pub fn serve(config: ServeConfig, addr: &str, options: NetOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let (tx, rx) = mpsc::channel::<EngineMsg>();
    let (ready_tx, ready_rx) = mpsc::sync_channel::<Result<(), String>>(1);
    let stop = Arc::new(AtomicBool::new(false));

    let engine_stop = Arc::clone(&stop);
    let engine = thread::Builder::new()
        .name("dcn-serve-engine".to_string())
        .spawn(move || {
            // Built here, not in `serve`: the controller must live and die
            // on the engine thread.
            let engine = match EngineCore::new(config) {
                Ok(engine) => {
                    let _ = ready_tx.send(Ok(()));
                    engine
                }
                Err(e) => {
                    let _ = ready_tx.send(Err(e.to_string()));
                    return;
                }
            };
            engine_loop(engine, rx, &engine_stop, local);
        })?;
    match ready_rx.recv() {
        Ok(Ok(())) => {}
        Ok(Err(msg)) => {
            let _ = engine.join();
            return Err(io::Error::new(io::ErrorKind::InvalidInput, msg));
        }
        Err(_) => {
            let _ = engine.join();
            return Err(io::Error::other("engine thread died during startup"));
        }
    }

    let accept_tx = tx.clone();
    let accept_stop = Arc::clone(&stop);
    let accept = thread::Builder::new()
        .name("dcn-serve-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_tx, &accept_stop, options))?;

    Ok(ServerHandle {
        local,
        tx,
        engine: Some(engine),
        accept: Some(accept),
    })
}

fn engine_loop(
    mut engine: EngineCore,
    rx: Receiver<EngineMsg>,
    stop: &AtomicBool,
    local: SocketAddr,
) {
    let mut outboxes: FxHashMap<ClientId, SyncSender<String>> = FxHashMap::default();
    let mut out: Vec<Outgoing> = Vec::new();
    loop {
        // Block for input only while the controller has nothing in flight;
        // otherwise poll the inbox and keep pumping.
        if engine.is_quiescent() {
            match rx.recv() {
                Ok(msg) => handle_msg(&mut engine, &mut outboxes, msg, &mut out),
                Err(_) => break,
            }
        }
        // Drain whatever queued meanwhile, boundedly, so a steady request
        // stream cannot starve the pump below.
        for _ in 0..128 {
            match rx.try_recv() {
                Ok(msg) => handle_msg(&mut engine, &mut outboxes, msg, &mut out),
                Err(_) => break,
            }
        }
        if !engine.is_quiescent() {
            engine.pump(&mut out);
        }
        let mut dropped = 0u64;
        for (client, frame) in out.drain(..) {
            // A client absent from `outboxes` vanished between submit and
            // answer; its frames simply have nowhere to go.
            if let Some(outbox) = outboxes.get(&client) {
                match outbox.try_send(frame) {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => dropped += 1,
                    Err(TrySendError::Disconnected(_)) => {
                        outboxes.remove(&client);
                    }
                }
            }
        }
        if dropped > 0 {
            engine.note_dropped_frames(dropped);
        }
        if engine.is_shutting_down() && engine.is_quiescent() {
            break;
        }
    }
    // Stop accepting: raise the flag, then poke the (blocking) accept loop
    // with a throwaway connection so it observes the flag.
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(local);
    // `outboxes` drops here: writers drain their queues, close their
    // sockets, and the readers unwind on EOF.
}

fn handle_msg(
    engine: &mut EngineCore,
    outboxes: &mut FxHashMap<ClientId, SyncSender<String>>,
    msg: EngineMsg,
    out: &mut Vec<Outgoing>,
) {
    match msg {
        EngineMsg::Connect { client, outbox } => {
            outboxes.insert(client, outbox);
            engine.client_connected(client);
        }
        EngineMsg::Line {
            client,
            line,
            inflight,
        } => {
            engine.handle_line(client, &line, out);
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
        EngineMsg::Disconnect { client } => {
            outboxes.remove(&client);
            engine.client_disconnected(client);
        }
        EngineMsg::Stop => engine.begin_shutdown(),
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<EngineMsg>,
    stop: &AtomicBool,
    options: NetOptions,
) {
    let mut next_client: ClientId = 0;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        next_client += 1;
        if spawn_connection(stream, next_client, tx.clone(), options).is_err() {
            // A failed clone/spawn closes this connection; the server
            // itself keeps accepting.
            continue;
        }
    }
}

fn spawn_connection(
    stream: TcpStream,
    client: ClientId,
    tx: Sender<EngineMsg>,
    options: NetOptions,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    let write_half = stream.try_clone()?;
    let (out_tx, out_rx) = mpsc::sync_channel::<String>(options.outbox_limit);
    if tx
        .send(EngineMsg::Connect {
            client,
            outbox: out_tx.clone(),
        })
        .is_err()
    {
        // Engine already gone (shutdown race): drop the connection.
        return Ok(());
    }
    thread::Builder::new()
        .name(format!("dcn-serve-write-{client}"))
        .spawn(move || writer_loop(write_half, &out_rx))?;
    thread::Builder::new()
        .name(format!("dcn-serve-read-{client}"))
        .spawn(move || reader_loop(stream, client, &tx, &out_tx, options))?;
    Ok(())
}

fn writer_loop(stream: TcpStream, out_rx: &Receiver<String>) {
    let mut w = BufWriter::new(&stream);
    while let Ok(first) = out_rx.recv() {
        let mut write_one = |line: String| -> io::Result<()> {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")
        };
        if write_one(first).is_err() {
            break;
        }
        // Batch whatever else is queued before the flush.
        let mut dead = false;
        while let Ok(more) = out_rx.try_recv() {
            if write_one(more).is_err() {
                dead = true;
                break;
            }
        }
        if dead || w.flush().is_err() {
            break;
        }
    }
    let _ = w.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// One length-capped line from the byte stream.
enum LineRead {
    /// A complete line (without the newline; a trailing `\r` is stripped).
    Line(String),
    /// The line exceeded the cap; it was discarded up to the next newline.
    TooLong,
    /// The line was not valid UTF-8.
    BadUtf8,
    /// End of stream.
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Oversized lines
/// are consumed (so framing resynchronises at the next newline) but their
/// bytes are not buffered — a hostile megabyte line costs its socket reads
/// and nothing more.
fn read_limited_line(r: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overlong = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a final unterminated line is delivered as-is.
            return Ok(match (overlong, buf.is_empty()) {
                (true, _) => LineRead::TooLong,
                (false, true) => LineRead::Eof,
                (false, false) => finish_line(buf),
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => {
                if !overlong {
                    buf.extend_from_slice(&chunk[..nl]);
                }
                r.consume(nl + 1);
                if overlong || buf.len() > max {
                    return Ok(LineRead::TooLong);
                }
                return Ok(finish_line(buf));
            }
            None => {
                if !overlong {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max {
                        overlong = true;
                        buf = Vec::new();
                    }
                }
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

fn finish_line(mut buf: Vec<u8>) -> LineRead {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => LineRead::Line(line),
        Err(_) => LineRead::BadUtf8,
    }
}

fn reader_loop(
    stream: TcpStream,
    client: ClientId,
    tx: &Sender<EngineMsg>,
    out_tx: &SyncSender<String>,
    options: NetOptions,
) {
    let mut reader = BufReader::new(stream);
    let inflight = Arc::new(AtomicUsize::new(0));
    loop {
        match read_limited_line(&mut reader, protocol::MAX_LINE_BYTES) {
            Ok(LineRead::Line(line)) => {
                // Per-connection inbox bound: past it, overload degrades to
                // a protocol-level rejection the client can react to, not
                // an ever-growing queue. (If even the error frame does not
                // fit in the outbox, it is dropped like any other frame to
                // a slow reader.)
                if inflight.load(Ordering::SeqCst) >= options.inbox_limit {
                    let _ = out_tx.try_send(protocol::error_frame(
                        "overloaded",
                        "per-connection inbox is full; back off and retry",
                        None,
                    ));
                    continue;
                }
                inflight.fetch_add(1, Ordering::SeqCst);
                if tx
                    .send(EngineMsg::Line {
                        client,
                        line,
                        inflight: Arc::clone(&inflight),
                    })
                    .is_err()
                {
                    break;
                }
            }
            Ok(LineRead::TooLong) => {
                let _ = out_tx.try_send(protocol::error_frame(
                    "line-too-long",
                    &format!("lines are capped at {} bytes", protocol::MAX_LINE_BYTES),
                    None,
                ));
            }
            Ok(LineRead::BadUtf8) => {
                let _ = out_tx.try_send(protocol::error_frame(
                    "bad-utf8",
                    "request lines must be UTF-8",
                    None,
                ));
            }
            Ok(LineRead::Eof) | Err(_) => break,
        }
    }
    let _ = tx.send(EngineMsg::Disconnect { client });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(input: &[u8], max: usize) -> Vec<String> {
        let mut r = BufReader::new(Cursor::new(input.to_vec()));
        let mut out = Vec::new();
        loop {
            match read_limited_line(&mut r, max).unwrap() {
                LineRead::Line(l) => out.push(l),
                LineRead::TooLong => out.push("<too-long>".to_string()),
                LineRead::BadUtf8 => out.push("<bad-utf8>".to_string()),
                LineRead::Eof => return out,
            }
        }
    }

    #[test]
    fn splits_caps_and_resynchronises() {
        assert_eq!(read_all(b"a\nbb\r\nccc", 10), ["a", "bb", "ccc"]);
        // The oversized middle line is discarded to its newline; framing
        // recovers on the next line.
        assert_eq!(
            read_all(b"ok\nxxxxxxxxxxxxxxxx\nagain\n", 8),
            ["ok", "<too-long>", "again"]
        );
        // Oversized final line without newline.
        assert_eq!(read_all(b"xxxxxxxxxxxxxxxx", 8), ["<too-long>"]);
        assert_eq!(read_all(b"", 8), Vec::<String>::new());
        assert_eq!(read_all(b"\xff\xfe\n", 8), ["<bad-utf8>"]);
    }
}

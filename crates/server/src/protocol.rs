//! The line-delimited JSON wire protocol.
//!
//! One request or response per line; every line is a single JSON object.
//! Client frames carry an `"op"` discriminator; server frames carry exactly
//! one of `"ok"` (direct replies), `"event"` (streamed outcomes for
//! subscribed clients) or `"error"`. The full frame grammar, the
//! backpressure rules and the shutdown semantics are documented in
//! DESIGN.md §9 — this module is the single encode/decode point, shared by
//! the TCP transport and the deterministic loopback transport so that both
//! speak byte-identical frames.
//!
//! Parsing is hardened for untrusted input: lines are length-capped
//! ([`MAX_LINE_BYTES`]), the JSON layer rejects malformed documents with
//! typed errors (see [`dcn_workload::json`]), and every failure maps onto a
//! protocol-level [`FrameError`] — an `error` frame on the wire, never a
//! dropped connection or a panicked thread.

use dcn_workload::json::{self, JsonError, Value};
use dcn_workload::json_quote;
use std::fmt::Write as _;

/// The protocol version spoken by this build; `hello` frames asking for a
/// different `proto` are refused with an `unsupported-proto` error.
pub const PROTO_VERSION: u64 = 1;

/// Longest accepted request line, in bytes (newline excluded). Longer lines
/// are answered with a `line-too-long` error frame and discarded up to the
/// next newline; the connection stays usable.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Maximum number of submissions one `batch` frame may carry. Keeps a
/// single line from enqueueing unbounded controller work (the line-length
/// cap already bounds the bytes; this bounds the tickets).
pub const MAX_BATCH_REQUESTS: usize = 256;

/// A request frame's submission payload: where the request arrives and what
/// it asks for, plus the client's optional correlation tag (echoed verbatim
/// on the ticket reply and on every event for the resulting ticket).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Submission {
    /// Index of the node the request arrives at.
    pub node: u64,
    /// What the request asks for.
    pub kind: WireKind,
    /// Client-chosen correlation tag.
    pub tag: Option<u64>,
}

/// [`RequestKind`](dcn_controller::RequestKind) as spelled on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireKind {
    /// `"add-leaf"` — add a new leaf under `node`.
    AddLeaf,
    /// `"add-internal-above"` — split the `node`→`child` edge with a new
    /// internal node.
    AddInternalAbove {
        /// Index of the child whose parent edge is split.
        child: u64,
    },
    /// `"remove-self"` — delete `node`.
    RemoveSelf,
    /// `"event"` — a non-topological request (a resource permit) at `node`.
    Event,
}

impl WireKind {
    /// The wire spelling.
    pub fn name(&self) -> &'static str {
        match self {
            WireKind::AddLeaf => "add-leaf",
            WireKind::AddInternalAbove { .. } => "add-internal-above",
            WireKind::RemoveSelf => "remove-self",
            WireKind::Event => "event",
        }
    }
}

/// The wire spelling of a resolved request kind (for event frames and poll
/// replies, which report the kind the controller recorded).
pub fn kind_name(kind: dcn_controller::RequestKind) -> &'static str {
    match kind {
        dcn_controller::RequestKind::AddLeaf => "add-leaf",
        dcn_controller::RequestKind::AddInternalAbove(_) => "add-internal-above",
        dcn_controller::RequestKind::RemoveSelf => "remove-self",
        dcn_controller::RequestKind::NonTopological => "event",
    }
}

/// A decoded client frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientFrame {
    /// `{"op":"hello", "proto"?, "family"?, "m"?, "w"?}` — must be the first
    /// frame on a connection. The optional fields are *assertions*: the
    /// server refuses the hello (with a `config-mismatch` error) when one
    /// of them differs from the controller it actually runs, and reports
    /// its real parameters in the `welcome` reply either way.
    Hello {
        /// Asserted protocol version (defaults to [`PROTO_VERSION`]).
        proto: Option<u64>,
        /// Asserted controller family name.
        family: Option<String>,
        /// Asserted permit budget `M`.
        m: Option<u64>,
        /// Asserted waste bound `W`.
        w: Option<u64>,
    },
    /// `{"op":"submit", "kind", "node", "child"?, "tag"?}` — ask for a
    /// permit; replies with a ticket.
    Submit(Submission),
    /// `{"op":"topology", "change", "node", "child"?, "tag"?}` — the
    /// topology-maintenance alias of `submit`: `"insert"` adds a leaf,
    /// `"insert-above"` splits an edge, `"delete"` removes a node. Same
    /// ticket lifecycle as `submit`.
    Topology(Submission),
    /// `{"op":"batch", "requests": [{"kind", "node", "child"?, "tag"?}, …]}`
    /// — up to [`MAX_BATCH_REQUESTS`] submit bodies in one frame, answered
    /// with one ticket reply per element in array order. The frame is
    /// validated as a whole: one malformed element (or an empty or oversized
    /// array) rejects the entire batch and enqueues nothing.
    Batch(Vec<Submission>),
    /// `{"op":"poll", "ticket"}` — ask for a ticket's current outcome.
    Poll {
        /// The ticket to look up.
        ticket: u64,
    },
    /// `{"op":"subscribe"}` — stream this connection's future outcome
    /// events instead of polling.
    Subscribe,
    /// `{"op":"stats"}` — a snapshot of the engine's counters.
    Stats,
    /// `{"op":"shutdown"}` — ask the server to drain and exit.
    Shutdown,
}

/// A protocol-level decode failure: rendered as an `error` frame, never a
/// closed connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrameError {
    /// Stable machine-readable error code (the `"error"` field).
    pub code: &'static str,
    /// Human-readable detail (the `"detail"` field).
    pub detail: String,
}

impl FrameError {
    fn new(code: &'static str, detail: impl Into<String>) -> Self {
        FrameError {
            code,
            detail: detail.into(),
        }
    }
}

impl From<JsonError> for FrameError {
    fn from(e: JsonError) -> Self {
        let code = match &e {
            JsonError::TooLong { .. } => "line-too-long",
            JsonError::Schema(_) => "bad-frame",
            _ => "bad-json",
        };
        FrameError::new(code, e.to_string())
    }
}

fn opt_u64(v: &Value, key: &str) -> Result<Option<u64>, JsonError> {
    v.get_opt(key)?.map(Value::as_u64).transpose()
}

fn submission(v: &Value, kind_key: &str, aliases: bool) -> Result<Submission, FrameError> {
    let kind_str = v.get(kind_key)?.as_str()?.to_string();
    let kind = match (kind_str.as_str(), aliases) {
        ("add-leaf", false) | ("insert", true) => WireKind::AddLeaf,
        ("add-internal-above", false) | ("insert-above", true) => WireKind::AddInternalAbove {
            child: v.get("child")?.as_u64()?,
        },
        ("remove-self", false) | ("delete", true) => WireKind::RemoveSelf,
        ("event", false) => WireKind::Event,
        (other, _) => {
            return Err(FrameError::new(
                "bad-frame",
                format!("unknown {kind_key} {other:?}"),
            ))
        }
    };
    Ok(Submission {
        node: v.get("node")?.as_u64()?,
        kind,
        tag: opt_u64(v, "tag")?,
    })
}

/// Decodes one request line into a [`ClientFrame`].
///
/// # Errors
///
/// A [`FrameError`] for oversized lines, malformed JSON, unknown ops and
/// schema violations — every one maps to an `error` frame via
/// [`error_frame`], keeping the connection alive.
pub fn parse_frame(line: &str) -> Result<ClientFrame, FrameError> {
    let v = json::parse_limited(line, MAX_LINE_BYTES)?;
    let op = v.get("op")?.as_str()?.to_string();
    match op.as_str() {
        "hello" => Ok(ClientFrame::Hello {
            proto: opt_u64(&v, "proto")?,
            family: v
                .get_opt("family")?
                .map(|f| Ok::<_, JsonError>(f.as_str()?.to_string()))
                .transpose()?,
            m: opt_u64(&v, "m")?,
            w: opt_u64(&v, "w")?,
        }),
        "submit" => Ok(ClientFrame::Submit(submission(&v, "kind", false)?)),
        "batch" => {
            let elems = v.get("requests")?.as_array()?;
            if elems.is_empty() {
                return Err(FrameError::new("bad-frame", "batch.requests is empty"));
            }
            if elems.len() > MAX_BATCH_REQUESTS {
                return Err(FrameError::new(
                    "bad-frame",
                    format!(
                        "batch.requests has {} elements (max {MAX_BATCH_REQUESTS})",
                        elems.len()
                    ),
                ));
            }
            let mut subs = Vec::with_capacity(elems.len());
            for elem in elems {
                subs.push(submission(elem, "kind", false)?);
            }
            Ok(ClientFrame::Batch(subs))
        }
        "topology" => Ok(ClientFrame::Topology(submission(&v, "change", true)?)),
        "poll" => Ok(ClientFrame::Poll {
            ticket: v.get("ticket")?.as_u64()?,
        }),
        "subscribe" => Ok(ClientFrame::Subscribe),
        "stats" => Ok(ClientFrame::Stats),
        "shutdown" => Ok(ClientFrame::Shutdown),
        other => Err(FrameError::new(
            "unknown-op",
            format!("unknown op {other:?}"),
        )),
    }
}

fn push_tag(out: &mut String, tag: Option<u64>) {
    if let Some(tag) = tag {
        let _ = write!(out, ", \"tag\": {tag}");
    }
}

/// Encodes an `error` frame. `tag` correlates the error with the request
/// that caused it, when that request carried one.
pub fn error_frame(code: &str, detail: &str, tag: Option<u64>) -> String {
    let mut out = format!(
        "{{\"error\": {}, \"detail\": {}",
        json_quote(code),
        json_quote(detail)
    );
    push_tag(&mut out, tag);
    out.push('}');
    out
}

/// Encodes the `welcome` reply to a successful `hello`.
pub fn welcome_frame(family: &str, m: u64, w: u64, nodes: usize) -> String {
    format!(
        "{{\"ok\": \"welcome\", \"proto\": {PROTO_VERSION}, \"family\": {}, \"m\": {m}, \"w\": {w}, \"nodes\": {nodes}}}",
        json_quote(family)
    )
}

/// Encodes the `ticket` reply to an accepted `submit`/`topology`.
pub fn ticket_frame(ticket: u64, tag: Option<u64>) -> String {
    let mut out = format!("{{\"ok\": \"ticket\", \"ticket\": {ticket}");
    push_tag(&mut out, tag);
    out.push('}');
    out
}

/// Encodes the `subscribed` acknowledgement.
pub fn subscribed_frame() -> String {
    "{\"ok\": \"subscribed\"}".to_string()
}

/// Encodes the `shutting-down` acknowledgement.
pub fn shutting_down_frame() -> String {
    "{\"ok\": \"shutting-down\"}".to_string()
}

/// A ticket's resolution state, as reported by `poll` replies and
/// subscription events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireOutcome {
    /// Not answered yet.
    Pending,
    /// Granted at virtual time `at`; insertions report the created node.
    Granted {
        /// Virtual answer time.
        at: u64,
        /// The granted request kind.
        kind: dcn_controller::RequestKind,
        /// Node created by a granted insertion (synchronous families only).
        new_node: Option<u64>,
    },
    /// Rejected (the budget is spent up to the waste bound).
    Rejected,
    /// Outside the controller family's dynamic model; no permit consumed.
    Refused,
}

/// Encodes the `outcome` reply to a `poll`.
pub fn outcome_frame(ticket: u64, outcome: &WireOutcome) -> String {
    match outcome {
        WireOutcome::Pending => {
            format!("{{\"ok\": \"outcome\", \"ticket\": {ticket}, \"status\": \"pending\"}}")
        }
        WireOutcome::Granted { at, kind, new_node } => {
            let mut out = format!(
                "{{\"ok\": \"outcome\", \"ticket\": {ticket}, \"status\": \"granted\", \"at\": {at}, \"kind\": {}",
                json_quote(kind_name(*kind))
            );
            if let Some(n) = new_node {
                let _ = write!(out, ", \"new_node\": {n}");
            }
            out.push('}');
            out
        }
        WireOutcome::Rejected => {
            format!("{{\"ok\": \"outcome\", \"ticket\": {ticket}, \"status\": \"rejected\"}}")
        }
        WireOutcome::Refused => {
            format!("{{\"ok\": \"outcome\", \"ticket\": {ticket}, \"status\": \"refused\"}}")
        }
    }
}

/// Encodes a streamed outcome event for a subscribed connection.
pub fn event_frame(ticket: u64, outcome: &WireOutcome, tag: Option<u64>) -> String {
    let mut out = match outcome {
        WireOutcome::Pending => format!("{{\"event\": \"pending\", \"ticket\": {ticket}"),
        WireOutcome::Granted { at, kind, .. } => format!(
            "{{\"event\": \"granted\", \"ticket\": {ticket}, \"at\": {at}, \"kind\": {}",
            json_quote(kind_name(*kind))
        ),
        WireOutcome::Rejected => format!("{{\"event\": \"rejected\", \"ticket\": {ticket}"),
        WireOutcome::Refused => format!("{{\"event\": \"refused\", \"ticket\": {ticket}"),
    };
    push_tag(&mut out, tag);
    out.push('}');
    out
}

/// Encodes a streamed topology-applied event for a subscribed connection.
pub fn topology_event_frame(
    ticket: u64,
    kind: dcn_controller::RequestKind,
    node: Option<u64>,
    tag: Option<u64>,
) -> String {
    let mut out = format!(
        "{{\"event\": \"topology\", \"ticket\": {ticket}, \"kind\": {}",
        json_quote(kind_name(kind))
    );
    if let Some(n) = node {
        let _ = write!(out, ", \"node\": {n}");
    }
    push_tag(&mut out, tag);
    out.push('}');
    out
}

/// The counter snapshot reported by a `stats` reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Tickets issued over the server's lifetime.
    pub submitted: u64,
    /// Permits granted.
    pub granted: u64,
    /// Requests rejected.
    pub rejected: u64,
    /// Requests refused (outside the family's dynamic model).
    pub refused: u64,
    /// Request lines answered with an `error` frame.
    pub protocol_errors: u64,
    /// Reply/event frames dropped because a connection's outbox was full.
    pub dropped_frames: u64,
    /// Connections currently registered.
    pub clients: u64,
    /// Current tree size.
    pub nodes: usize,
    /// Cumulative permit/package movement cost.
    pub moves: u64,
    /// Cumulative message cost.
    pub messages: u64,
    /// Peak per-node state footprint, in bits.
    pub peak_node_memory_bits: u64,
    /// Whether a shutdown is in progress.
    pub shutting_down: bool,
}

/// Encodes the `stats` reply.
pub fn stats_frame(s: &StatsSnapshot) -> String {
    format!(
        "{{\"ok\": \"stats\", \"submitted\": {}, \"granted\": {}, \"rejected\": {}, \
         \"refused\": {}, \"protocol_errors\": {}, \"dropped_frames\": {}, \"clients\": {}, \
         \"nodes\": {}, \"moves\": {}, \"messages\": {}, \"peak_node_memory_bits\": {}, \
         \"shutting_down\": {}}}",
        s.submitted,
        s.granted,
        s.rejected,
        s.refused,
        s.protocol_errors,
        s.dropped_frames,
        s.clients,
        s.nodes,
        s.moves,
        s.messages,
        s.peak_node_memory_bits,
        s.shutting_down,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_json_layer() {
        let f = parse_frame(r#"{"op": "hello", "proto": 1, "family": "centralized"}"#).unwrap();
        assert_eq!(
            f,
            ClientFrame::Hello {
                proto: Some(1),
                family: Some("centralized".to_string()),
                m: None,
                w: None
            }
        );
        let f = parse_frame(r#"{"op": "submit", "kind": "add-leaf", "node": 3, "tag": 9}"#);
        assert_eq!(
            f.unwrap(),
            ClientFrame::Submit(Submission {
                node: 3,
                kind: WireKind::AddLeaf,
                tag: Some(9)
            })
        );
        let f =
            parse_frame(r#"{"op": "topology", "change": "insert-above", "node": 1, "child": 4}"#);
        assert_eq!(
            f.unwrap(),
            ClientFrame::Topology(Submission {
                node: 1,
                kind: WireKind::AddInternalAbove { child: 4 },
                tag: None
            })
        );
        assert_eq!(
            parse_frame(r#"{"op": "poll", "ticket": 17}"#).unwrap(),
            ClientFrame::Poll { ticket: 17 }
        );
        assert_eq!(
            parse_frame(r#"{"op": "stats"}"#).unwrap(),
            ClientFrame::Stats
        );
    }

    #[test]
    fn batch_frames_parse_whole_or_not_at_all() {
        // A well-formed batch decodes every element in array order.
        let frame = parse_frame(
            r#"{"op": "batch", "requests": [
                {"kind": "event", "node": 3, "tag": 1},
                {"kind": "add-internal-above", "node": 1, "child": 4}
            ]}"#,
        )
        .unwrap();
        match frame {
            ClientFrame::Batch(subs) => {
                assert_eq!(subs.len(), 2);
                assert_eq!(subs[0].node, 3);
                assert_eq!(subs[0].tag, Some(1));
                assert_eq!(subs[1].kind, WireKind::AddInternalAbove { child: 4 });
            }
            other => panic!("expected a batch frame, got {other:?}"),
        }
        // Empty, missing, non-array and oversized request lists are schema
        // violations for the whole frame.
        for line in [
            r#"{"op": "batch"}"#.to_string(),
            r#"{"op": "batch", "requests": []}"#.to_string(),
            r#"{"op": "batch", "requests": {"kind": "event", "node": 0}}"#.to_string(),
            format!(
                r#"{{"op": "batch", "requests": [{}]}}"#,
                vec![r#"{"kind":"event","node":0}"#; MAX_BATCH_REQUESTS + 1].join(",")
            ),
        ] {
            let err = parse_frame(&line).unwrap_err();
            assert_eq!(err.code, "bad-frame", "for {line:.60}");
        }
        // One malformed element poisons the batch: nothing decodes.
        let err = parse_frame(
            r#"{"op": "batch", "requests": [
                {"kind": "event", "node": 0},
                {"kind": "insert", "node": 1}
            ]}"#,
        )
        .unwrap_err();
        assert_eq!(err.code, "bad-frame");
    }

    #[test]
    fn submit_and_topology_spellings_do_not_cross() {
        // `insert` is the topology alias; `submit` requires the kind names.
        assert!(parse_frame(r#"{"op": "submit", "kind": "insert", "node": 0}"#).is_err());
        assert!(parse_frame(r#"{"op": "topology", "change": "add-leaf", "node": 0}"#).is_err());
        // `event` is a permit request, not a topology change.
        assert!(parse_frame(r#"{"op": "topology", "change": "event", "node": 0}"#).is_err());
    }

    #[test]
    fn decode_failures_map_to_stable_error_codes() {
        let overlong = format!(
            r#"{{"op": "submit", "kind": "add-leaf", "node": 1, "pad": "{}"}}"#,
            "x".repeat(MAX_LINE_BYTES)
        );
        assert_eq!(parse_frame(&overlong).unwrap_err().code, "line-too-long");
        assert_eq!(
            parse_frame("{\"op\": \"stats\"").unwrap_err().code,
            "bad-json"
        );
        assert_eq!(
            parse_frame(r#"{"op": "dance"}"#).unwrap_err().code,
            "unknown-op"
        );
        assert_eq!(
            parse_frame(r#"{"op": "submit", "kind": "add-leaf"}"#)
                .unwrap_err()
                .code,
            "bad-frame"
        );
        // The error frame for any of these is itself valid JSON.
        let e = parse_frame(r#"{"op": "dance"}"#).unwrap_err();
        let frame = error_frame(e.code, &e.detail, Some(3));
        let v = json::parse(&frame).unwrap();
        assert_eq!(v.get("error").unwrap().as_str().unwrap(), "unknown-op");
        assert_eq!(v.get("tag").unwrap().as_u64().unwrap(), 3);
    }

    #[test]
    fn stats_frame_is_valid_json() {
        let s = StatsSnapshot {
            submitted: 10,
            granted: 7,
            shutting_down: true,
            ..StatsSnapshot::default()
        };
        let v = json::parse(&stats_frame(&s)).unwrap();
        assert_eq!(v.get("granted").unwrap().as_u64().unwrap(), 7);
        assert!(v.get("shutting_down").unwrap().as_bool().unwrap());
    }
}

//! Hostile-input hardening for the wire protocol: every malformed line —
//! truncated, spliced, byte-flipped, oversized, deeply nested — must come
//! back as a protocol-level `error` frame on a connection that stays fully
//! usable. The contract under fire is "no panic, no hang, no silent drop";
//! it is checked with a seeded case loop (the workspace's stand-in for
//! proptest) interleaving valid `stats` probes between the garbage.

use dcn_rng::{DetRng, Rng, SeedableRng};
use dcn_server::{Loopback, ServeConfig};
use dcn_workload::json;
use dcn_workload::Family;

fn server() -> (Loopback, u64) {
    let mut lb = Loopback::new(ServeConfig::new(Family::Centralized, 64, 8)).unwrap();
    let c = lb.connect();
    lb.send(c, r#"{"op": "hello", "proto": 1}"#);
    let welcome = lb.recv(c);
    assert!(welcome[0].contains("welcome"));
    (lb, c)
}

/// The reply to one line is always exactly one frame, and it is valid JSON
/// carrying exactly one of the three frame keys.
fn reply_is_wellformed(lb: &mut Loopback, client: u64, line: &str) -> String {
    lb.send(client, line);
    let mut frames = lb.recv(client);
    assert_eq!(frames.len(), 1, "one line in, one frame out: {line:?}");
    let frame = frames.pop().unwrap();
    let v = json::parse(&frame).expect("server frames are valid JSON");
    let keys = ["ok", "event", "error"]
        .iter()
        .filter(|k| v.get(k).is_ok())
        .count();
    assert_eq!(keys, 1, "exactly one frame discriminator: {frame}");
    frame
}

#[test]
fn specific_malformed_lines_map_to_stable_error_codes() {
    let (mut lb, c) = server();
    let cases: &[(&str, &str)] = &[
        ("", "bad-json"),
        ("{", "bad-json"),
        ("null", "bad-frame"),
        ("[1, 2, 3]", "bad-frame"),
        (r#"{"op": 7}"#, "bad-frame"),
        (r#"{"op": "dance"}"#, "unknown-op"),
        (r#"{"kind": "add-leaf", "node": 1}"#, "bad-frame"),
        (r#"{"op": "submit", "kind": "add-leaf"}"#, "bad-frame"),
        (
            r#"{"op": "submit", "kind": "add-leaf", "node": -3}"#,
            "bad-frame",
        ),
        (
            r#"{"op": "submit", "kind": "add-leaf", "node": 1.5}"#,
            "bad-frame",
        ),
        (r#"{"op": "poll", "ticket": "five"}"#, "bad-frame"),
        (r#"{"op": "batch"}"#, "bad-frame"),
        (r#"{"op": "batch", "requests": 7}"#, "bad-frame"),
        (r#"{"op": "batch", "requests": []}"#, "bad-frame"),
        (
            r#"{"op": "batch", "requests": [{"kind": "add-leaf"}]}"#,
            "bad-frame",
        ),
        (
            r#"{"op": "batch", "requests": [{"kind": "event", "node": 0}, {"kind": "dance", "node": 1}]}"#,
            "bad-frame",
        ),
        (r#"{"op": "stats", "trailing": }"#, "bad-json"),
        ("{\"op\": \"stats\"}{\"op\": \"stats\"}", "bad-json"),
    ];
    for (line, want) in cases {
        let frame = reply_is_wellformed(&mut lb, c, line);
        let v = json::parse(&frame).unwrap();
        assert_eq!(
            v.get("error").unwrap().as_str().unwrap(),
            *want,
            "for input {line:?}"
        );
    }
    // Out-of-tree nodes and stale submissions are errors too, with codes of
    // their own.
    let frame = reply_is_wellformed(
        &mut lb,
        c,
        r#"{"op": "submit", "kind": "event", "node": 999}"#,
    );
    assert!(frame.contains("bad-node"), "{frame}");

    // Oversized lines get the length code, and the connection resyncs.
    let oversized = format!(r#"{{"op": "stats", "pad": "{}"}}"#, "x".repeat(9000));
    let frame = reply_is_wellformed(&mut lb, c, &oversized);
    assert!(frame.contains("line-too-long"), "{frame}");

    // Hostile nesting is depth-capped, not stack-overflowed.
    let deep = format!("{}{}", "[".repeat(100_000), "]".repeat(100_000));
    // Deep nesting inside the cap-sized prefix still errors cleanly.
    let frame = reply_is_wellformed(&mut lb, c, &deep[..4096]);
    assert!(frame.contains("error"), "{frame}");

    // After all that abuse, the connection still works.
    let frame = reply_is_wellformed(&mut lb, c, r#"{"op": "stats"}"#);
    assert!(frame.contains("\"ok\": \"stats\""), "{frame}");
    let errors = json::parse(&frame)
        .unwrap()
        .get("protocol_errors")
        .unwrap()
        .as_u64()
        .unwrap();
    assert!(
        errors >= cases.len() as u64,
        "errors were counted: {errors}"
    );
}

/// Seeded fuzz loop: mutate valid frames by truncation, splicing and byte
/// flips; whatever comes out, the server answers every line with one
/// well-formed frame and keeps serving valid traffic in between.
#[test]
fn seeded_mutation_loop_never_wedges_the_connection() {
    let seeds: &[&str] = &[
        r#"{"op": "hello", "proto": 1, "family": "centralized", "m": 64, "w": 8}"#,
        r#"{"op": "submit", "kind": "add-internal-above", "node": 3, "child": 4, "tag": 11}"#,
        r#"{"op": "topology", "change": "insert", "node": 0, "tag": 12}"#,
        r#"{"op": "poll", "ticket": 18446744073709551615}"#,
        r#"{"op": "subscribe"}"#,
    ];
    let (mut lb, c) = server();
    let mut rng = DetRng::seed_from_u64(0x8a11_0c8e);
    for case in 0..1500 {
        let doc = seeds[rng.gen_range(0..seeds.len())];
        let mut bytes = doc.as_bytes().to_vec();
        match rng.gen_range(0..4u32) {
            0 => {
                // Truncate somewhere, possibly mid-escape or mid-number.
                bytes.truncate(rng.gen_range(0..bytes.len()));
            }
            1 => {
                // Splice the tail of another seed onto a prefix.
                let other = seeds[rng.gen_range(0..seeds.len())].as_bytes();
                let cut = rng.gen_range(0..bytes.len());
                let graft = rng.gen_range(0..other.len());
                bytes.truncate(cut);
                bytes.extend_from_slice(&other[graft..]);
            }
            2 => {
                // Flip a few bytes to arbitrary values (including non-UTF-8;
                // the lossy conversion below mirrors what the TCP reader
                // would reject earlier — here it stresses the parser).
                for _ in 0..rng.gen_range(1..4u32) {
                    let i = rng.gen_range(0..bytes.len());
                    bytes[i] = (rng.next_u64() & 0xff) as u8;
                }
            }
            _ => {
                // Duplicate a middle chunk in place.
                let start = rng.gen_range(0..bytes.len());
                let end = rng.gen_range(start..bytes.len());
                let chunk = bytes[start..end].to_vec();
                let at = rng.gen_range(0..bytes.len());
                for (k, b) in chunk.into_iter().enumerate() {
                    bytes.insert(at + k, b);
                }
            }
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        // The only contract: one well-formed reply frame, no panic.
        let _ = reply_is_wellformed(&mut lb, c, &line);

        // Every 100 cases, prove the connection still serves real traffic.
        if case % 100 == 0 {
            let frame = reply_is_wellformed(&mut lb, c, r#"{"op": "stats"}"#);
            assert!(frame.contains("\"ok\": \"stats\""), "{frame}");
        }
    }
    // The engine survived with its controller intact.
    lb.run_to_quiescence();
    assert!(lb.engine().last_engine_error().is_none());
}

//! Protocol state-machine coverage over the deterministic loopback
//! transport: handshake, ticket lifecycle, subscription routing and
//! shutdown for all six controller families, plus the parity test pinning
//! the serve path against the batch [`ScenarioRunner`] — same scenario,
//! same grant/reject sequence, same `records()`.

use dcn_server::{Loopback, ServeConfig};
use dcn_workload::json::{self, Value};
use dcn_workload::{
    ArrivalMode, ChurnModel, ControllerSpec, Family, Placement, RequestKind, Scenario,
    ScenarioRunner, TreeShape,
};

/// Parses a reply line and returns (kind-key, kind-value) where kind-key is
/// `ok`, `event` or `error`.
fn frame_kind(line: &str) -> (String, String) {
    let v = json::parse(line).expect("server frames are valid JSON");
    for key in ["ok", "event", "error"] {
        if let Ok(val) = v.get(key) {
            return (key.to_string(), val.as_str().unwrap().to_string());
        }
    }
    panic!("frame without ok/event/error: {line}");
}

fn parse(line: &str) -> Value {
    json::parse(line).expect("server frames are valid JSON")
}

fn recv_one(lb: &mut Loopback, client: u64) -> String {
    let mut frames = lb.recv(client);
    assert_eq!(
        frames.len(),
        1,
        "expected exactly one frame, got {frames:?}"
    );
    frames.pop().unwrap()
}

#[test]
fn hello_is_required_and_negotiates_the_actual_config() {
    let mut lb = Loopback::new(ServeConfig::new(Family::Centralized, 16, 4)).unwrap();
    let c = lb.connect();

    // Anything before hello is refused, but the connection stays usable.
    lb.send(c, r#"{"op": "stats"}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "hello-required");

    // Wrong protocol version.
    lb.send(c, r#"{"op": "hello", "proto": 99}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "unsupported-proto");

    // Asserting a different family/m/w is a mismatch, not a reconfigure.
    lb.send(c, r#"{"op": "hello", "family": "distributed"}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "config-mismatch");
    lb.send(c, r#"{"op": "hello", "m": 999}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "config-mismatch");

    // A bare hello (or one asserting the true config) is welcomed with the
    // server's actual parameters.
    lb.send(
        c,
        r#"{"op": "hello", "proto": 1, "family": "centralized", "m": 16, "w": 4}"#,
    );
    let welcome = parse(&recv_one(&mut lb, c));
    assert_eq!(welcome.get("ok").unwrap().as_str().unwrap(), "welcome");
    assert_eq!(
        welcome.get("family").unwrap().as_str().unwrap(),
        "centralized"
    );
    assert_eq!(welcome.get("m").unwrap().as_u64().unwrap(), 16);
    assert_eq!(welcome.get("w").unwrap().as_u64().unwrap(), 4);
    // The default shape is an 8-leaf star: 9 nodes including the root.
    assert_eq!(welcome.get("nodes").unwrap().as_u64().unwrap(), 9);
}

#[test]
fn full_round_trip_for_all_six_families() {
    for family in Family::ALL {
        let mut lb = Loopback::new(ServeConfig::new(family, 16, 4)).unwrap();
        let c = lb.connect();
        lb.send(c, r#"{"op": "hello", "proto": 1}"#);
        assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "welcome", "{family:?}");
        lb.send(c, r#"{"op": "subscribe"}"#);
        assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "subscribed");

        // submit: a permit request at the root.
        lb.send(
            c,
            r#"{"op": "submit", "kind": "event", "node": 0, "tag": 7}"#,
        );
        let ticket_frame = parse(&recv_one(&mut lb, c));
        assert_eq!(ticket_frame.get("ok").unwrap().as_str().unwrap(), "ticket");
        assert_eq!(ticket_frame.get("tag").unwrap().as_u64().unwrap(), 7);
        let ticket = ticket_frame.get("ticket").unwrap().as_u64().unwrap();

        // Until the engine pumps, the honest poll answer is pending.
        lb.send(
            c,
            format!(r#"{{"op": "poll", "ticket": {ticket}}}"#).as_str(),
        );
        let pending = parse(&recv_one(&mut lb, c));
        assert_eq!(pending.get("status").unwrap().as_str().unwrap(), "pending");

        lb.run_to_quiescence();
        let events = lb.recv(c);
        assert!(
            events.iter().any(|f| {
                let (k, v) = frame_kind(f);
                k == "event" && v == "granted"
            }),
            "{family:?}: expected a granted event, got {events:?}"
        );

        lb.send(
            c,
            format!(r#"{{"op": "poll", "ticket": {ticket}}}"#).as_str(),
        );
        let outcome = parse(&recv_one(&mut lb, c));
        assert_eq!(outcome.get("status").unwrap().as_str().unwrap(), "granted");
        assert_eq!(outcome.get("kind").unwrap().as_str().unwrap(), "event");

        // topology: grow a leaf under the root via the alias op.
        lb.send(
            c,
            r#"{"op": "topology", "change": "insert", "node": 0, "tag": 8}"#,
        );
        let t = parse(&recv_one(&mut lb, c));
        assert_eq!(t.get("ok").unwrap().as_str().unwrap(), "ticket");
        let grow = t.get("ticket").unwrap().as_u64().unwrap();
        lb.run_to_quiescence();
        let _ = lb.recv(c);
        lb.send(c, format!(r#"{{"op": "poll", "ticket": {grow}}}"#).as_str());
        let outcome = parse(&recv_one(&mut lb, c));
        let status = outcome.get("status").unwrap().as_str().unwrap().to_string();
        assert!(
            status == "granted" || status == "rejected",
            "{family:?}: topology insert resolved to {status}"
        );

        // topology delete: outside the AAPS baseline's grow-only model —
        // it must refuse (not crash, not grant); other families answer.
        lb.send(
            c,
            r#"{"op": "topology", "change": "delete", "node": 3, "tag": 9}"#,
        );
        let reply = recv_one(&mut lb, c);
        let (kind, _) = frame_kind(&reply);
        if kind == "ok" {
            let del = parse(&reply).get("ticket").unwrap().as_u64().unwrap();
            lb.run_to_quiescence();
            let _ = lb.recv(c);
            lb.send(c, format!(r#"{{"op": "poll", "ticket": {del}}}"#).as_str());
            let status = parse(&recv_one(&mut lb, c))
                .get("status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            if family == Family::Aaps {
                assert_eq!(status, "refused", "AAPS is grow-only");
            } else {
                assert!(
                    status == "granted" || status == "rejected",
                    "{family:?}: {status}"
                );
            }
        }

        // Unknown tickets are a protocol error, not a crash.
        lb.send(c, r#"{"op": "poll", "ticket": 424242}"#);
        assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "unknown-ticket");

        // stats reflect the traffic.
        lb.send(c, r#"{"op": "stats"}"#);
        let stats = parse(&recv_one(&mut lb, c));
        assert!(stats.get("granted").unwrap().as_u64().unwrap() >= 1);
        assert!(stats.get("submitted").unwrap().as_u64().unwrap() >= 2);
        assert_eq!(stats.get("clients").unwrap().as_u64().unwrap(), 1);
        assert!(!stats.get("shutting_down").unwrap().as_bool().unwrap());

        // shutdown: acknowledged, flagged, and stats say so.
        lb.send(c, r#"{"op": "shutdown"}"#);
        assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "shutting-down");
        assert!(lb.engine().is_shutting_down());
    }
}

#[test]
fn events_stream_only_to_the_submitting_client() {
    let mut lb = Loopback::new(ServeConfig::new(Family::Centralized, 16, 4)).unwrap();
    let a = lb.connect();
    let b = lb.connect();
    for c in [a, b] {
        lb.send(c, r#"{"op": "hello", "proto": 1}"#);
        lb.send(c, r#"{"op": "subscribe"}"#);
        let _ = lb.recv(c);
    }
    lb.send(
        a,
        r#"{"op": "submit", "kind": "event", "node": 0, "tag": 1}"#,
    );
    let _ = lb.recv(a);
    lb.run_to_quiescence();
    assert!(!lb.recv(a).is_empty(), "submitter streams its outcome");
    assert!(lb.recv(b).is_empty(), "bystander sees nothing");

    // An unsubscribed client polls instead; it never receives streamed
    // frames even for its own tickets.
    let d = lb.connect();
    lb.send(d, r#"{"op": "hello", "proto": 1}"#);
    let _ = lb.recv(d);
    lb.send(d, r#"{"op": "submit", "kind": "event", "node": 0}"#);
    let ticket = parse(&recv_one(&mut lb, d))
        .get("ticket")
        .unwrap()
        .as_u64()
        .unwrap();
    lb.run_to_quiescence();
    assert!(lb.recv(d).is_empty(), "no subscription, no stream");
    lb.send(
        d,
        format!(r#"{{"op": "poll", "ticket": {ticket}}}"#).as_str(),
    );
    assert_ne!(
        parse(&recv_one(&mut lb, d))
            .get("status")
            .unwrap()
            .as_str()
            .unwrap(),
        "pending"
    );
}

#[test]
fn loopback_sessions_are_byte_identical() {
    let script: &[&str] = &[
        r#"{"op": "hello", "proto": 1}"#,
        r#"{"op": "subscribe"}"#,
        r#"{"op": "submit", "kind": "event", "node": 2, "tag": 1}"#,
        r#"{"op": "submit", "kind": "add-leaf", "node": 0, "tag": 2}"#,
        r#"{"op": "poll", "ticket": 0}"#,
        r#"{"op": "topology", "change": "insert", "node": 1, "tag": 3}"#,
        r#"{"op": "stats"}"#,
    ];
    let run = || {
        let mut lb =
            Loopback::new(ServeConfig::new(Family::Distributed, 16, 4).with_seed(7)).unwrap();
        let c = lb.connect();
        let mut transcript = Vec::new();
        for line in script {
            lb.send(c, line);
            transcript.extend(lb.recv(c));
            lb.run_to_quiescence();
            transcript.extend(lb.recv(c));
        }
        transcript
    };
    assert_eq!(run(), run());
}

/// Drives a loopback server through the exact submission stream of a
/// [`ScenarioRunner`] and returns the engine for comparison.
fn drive_loopback(scenario: &Scenario) -> Loopback {
    let runner = ScenarioRunner::new(scenario.clone());
    let family = Family::from_name(
        // The parity scenarios name their family in the scenario name.
        scenario.name.split('/').next().unwrap(),
    )
    .unwrap();
    let step_budget = match scenario.arrival {
        ArrivalMode::Batch => 4096,
        ArrivalMode::Interleaved { quantum } => quantum,
    };
    let config = ServeConfig::new(family, scenario.m, scenario.w)
        .with_shape(scenario.shape)
        .with_seed(scenario.seed)
        .with_step_budget(step_budget)
        .with_u_bound(runner.suggested_u_bound());
    let mut lb = Loopback::new(config).unwrap();
    let c = lb.connect();
    lb.send(c, r#"{"op": "hello", "proto": 1}"#);
    let _ = lb.recv(c);

    let mut stream = runner.op_stream();
    let mut issued = 0usize;
    let mut stalled = 0u32;
    while issued < scenario.requests {
        let want = runner.batch().min(scenario.requests - issued);
        let ops = stream.next_batch(lb.engine().controller().tree(), want);
        if ops.is_empty() {
            break;
        }
        let mut sent_this_batch = 0usize;
        for op in &ops {
            // Placement resolves against the served controller's tree at
            // submit time, exactly as the runner resolves against its own.
            let (at, kind) = stream.place(lb.engine().controller().tree(), op);
            let frame = match kind {
                RequestKind::AddLeaf => format!(
                    r#"{{"op": "submit", "kind": "add-leaf", "node": {}}}"#,
                    at.index()
                ),
                RequestKind::AddInternalAbove(child) => format!(
                    r#"{{"op": "submit", "kind": "add-internal-above", "node": {}, "child": {}}}"#,
                    at.index(),
                    child.index()
                ),
                RequestKind::RemoveSelf => format!(
                    r#"{{"op": "submit", "kind": "remove-self", "node": {}}}"#,
                    at.index()
                ),
                RequestKind::NonTopological => {
                    format!(
                        r#"{{"op": "submit", "kind": "event", "node": {}}}"#,
                        at.index()
                    )
                }
            };
            lb.send(c, &frame);
            let (kind_key, _) = frame_kind(&recv_one(&mut lb, c));
            // Stale ops surface as submit-rejected error frames — the
            // protocol twin of the runner's dropped counter.
            if kind_key == "ok" {
                issued += 1;
                sent_this_batch += 1;
            }
        }
        match scenario.arrival {
            ArrivalMode::Batch => lb.run_to_quiescence(),
            ArrivalMode::Interleaved { .. } => lb.pump_slice(),
        }
        if sent_this_batch == 0 {
            stalled += 1;
            if stalled > 8 {
                break;
            }
        } else {
            stalled = 0;
        }
    }
    lb.run_to_quiescence();
    lb
}

#[test]
fn loopback_matches_scenario_runner_for_every_family() {
    for family in Family::ALL {
        for arrival in [ArrivalMode::Batch, ArrivalMode::Interleaved { quantum: 64 }] {
            let scenario = Scenario {
                name: format!("{}/parity", family.name()),
                shape: TreeShape::Star { nodes: 12 },
                churn: ChurnModel::FullChurn {
                    add_leaf: 50,
                    add_internal: 20,
                    remove: 10,
                },
                placement: Placement::Uniform,
                arrival,
                requests: 64,
                m: 48,
                w: 8,
                seed: 1234,
            };

            // Reference: the batch driver over the plain Controller API.
            let runner = ScenarioRunner::new(scenario.clone());
            let mut ctrl = ControllerSpec::for_scenario(family, &scenario)
                .build_for(&runner)
                .unwrap();
            let report = runner.run(ctrl.as_mut()).unwrap();
            report.check().unwrap();

            // Same scenario through the wire protocol.
            let lb = drive_loopback(&scenario);
            let served = lb.engine().controller();

            assert_eq!(
                served.records(),
                ctrl.records(),
                "{family:?}/{arrival:?}: record history diverged"
            );
            assert_eq!(served.granted(), report.granted, "{family:?}/{arrival:?}");
            assert_eq!(served.rejected(), report.rejected, "{family:?}/{arrival:?}");
            let stats = lb.engine().stats();
            assert_eq!(
                stats.refused, report.refused,
                "{family:?}/{arrival:?}: refusal count diverged"
            );
        }
    }
}

/// The `batch` frame: one line carrying several submit bodies is answered
/// with one ticket frame per element in array order, each ticket resolves
/// independently, and a batch with any malformed element is rejected as a
/// whole (no tickets issued, nothing enqueued).
#[test]
fn batch_frames_issue_tickets_in_order_and_reject_as_a_whole() {
    let mut lb = Loopback::new(ServeConfig::new(Family::Centralized, 16, 4)).unwrap();
    let c = lb.connect();
    lb.send(c, r#"{"op": "hello", "proto": 1}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "welcome");

    lb.send(
        c,
        r#"{"op": "batch", "requests": [
            {"kind": "event", "node": 0, "tag": 100},
            {"kind": "add-leaf", "node": 0, "tag": 101},
            {"kind": "event", "node": 1, "tag": 102}
        ]}"#,
    );
    let frames = lb.recv(c);
    assert_eq!(frames.len(), 3, "one ticket per element: {frames:?}");
    let mut tickets = Vec::new();
    for (i, frame) in frames.iter().enumerate() {
        let v = parse(frame);
        assert_eq!(v.get("ok").unwrap().as_str().unwrap(), "ticket");
        assert_eq!(
            v.get("tag").unwrap().as_u64().unwrap(),
            100 + i as u64,
            "tickets come back in array order"
        );
        tickets.push(v.get("ticket").unwrap().as_u64().unwrap());
    }
    assert!(tickets.windows(2).all(|w| w[0] < w[1]));

    // Every batched ticket resolves through the normal lifecycle.
    lb.run_to_quiescence();
    for ticket in &tickets {
        lb.send(
            c,
            format!(r#"{{"op": "poll", "ticket": {ticket}}}"#).as_str(),
        );
        let outcome = parse(&recv_one(&mut lb, c));
        assert_eq!(outcome.get("status").unwrap().as_str().unwrap(), "granted");
    }

    // A batch with one malformed element is refused whole: a single error
    // frame, and the submission counter does not move.
    lb.send(c, r#"{"op": "stats"}"#);
    let before = parse(&recv_one(&mut lb, c))
        .get("submitted")
        .unwrap()
        .as_u64()
        .unwrap();
    lb.send(
        c,
        r#"{"op": "batch", "requests": [
            {"kind": "event", "node": 0},
            {"kind": "dance", "node": 0}
        ]}"#,
    );
    let err = parse(&recv_one(&mut lb, c));
    assert_eq!(err.get("error").unwrap().as_str().unwrap(), "bad-frame");
    lb.send(c, r#"{"op": "stats"}"#);
    let after = parse(&recv_one(&mut lb, c))
        .get("submitted")
        .unwrap()
        .as_u64()
        .unwrap();
    assert_eq!(before, after, "a rejected batch enqueues nothing");

    // The batch op sits behind the hello gate like everything else.
    let fresh = lb.connect();
    lb.send(
        fresh,
        r#"{"op": "batch", "requests": [{"kind": "event", "node": 0}]}"#,
    );
    assert_eq!(frame_kind(&recv_one(&mut lb, fresh)).1, "hello-required");
}

/// `ServeConfig::with_shards` serves a sharded federation behind the same
/// wire protocol: tickets grant, stats add up, and the option is rejected
/// at construction for families without region-local agents.
#[test]
fn sharded_serving_grants_through_the_same_protocol() {
    let config = ServeConfig::new(Family::Distributed, 64, 8)
        .with_shape(TreeShape::Path { nodes: 32 })
        .with_shards(4);
    let mut lb = Loopback::new(config).unwrap();
    let c = lb.connect();
    lb.send(c, r#"{"op": "hello", "proto": 1, "family": "distributed"}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "welcome");
    lb.send(c, r#"{"op": "subscribe"}"#);
    assert_eq!(frame_kind(&recv_one(&mut lb, c)).1, "subscribed");
    for node in 0..16 {
        lb.send(
            c,
            format!(r#"{{"op": "submit", "kind": "event", "node": {node}}}"#).as_str(),
        );
    }
    let tickets = lb.recv(c);
    assert_eq!(tickets.len(), 16);
    lb.run_to_quiescence();
    let granted = lb
        .recv(c)
        .iter()
        .filter(|f| frame_kind(f) == ("event".to_string(), "granted".to_string()))
        .count();
    assert_eq!(granted, 16, "every ticket resolves across shard boundaries");
    lb.send(c, r#"{"op": "stats"}"#);
    let stats = parse(&recv_one(&mut lb, c));
    assert_eq!(stats.get("granted").unwrap().as_u64().unwrap(), 16);

    // Families without region-local agents cannot shard.
    let bad = ServeConfig::new(Family::Centralized, 64, 8).with_shards(2);
    assert!(Loopback::new(bad).is_err());
}

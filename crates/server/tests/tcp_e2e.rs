//! End-to-end exercise of the real TCP transport: an in-process
//! [`serve`] on an ephemeral port, several concurrent clients speaking the
//! line protocol over actual sockets, a protocol-level shutdown, and a
//! clean join. Wall-clock timing here only bounds how long the test waits —
//! every protocol outcome asserted is deterministic.

use dcn_server::{serve, NetOptions, ServeConfig};
use dcn_workload::json;
use dcn_workload::Family;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
// determinism: test-only socket timeouts bounding how long a hung server
// determinism: could stall the suite; no protocol behaviour depends on them.
use std::time::Duration;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read frame");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }
}

#[test]
fn tcp_clients_submit_poll_and_shut_the_server_down() {
    let config = ServeConfig::new(Family::Distributed, 256, 16);
    let handle = serve(config, "127.0.0.1:0", NetOptions::default()).expect("bind");
    let addr = handle.local_addr();

    let workers: Vec<_> = (0..3u64)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                c.send(r#"{"op": "hello", "proto": 1, "family": "distributed"}"#);
                let welcome = json::parse(&c.recv()).unwrap();
                assert_eq!(welcome.get("ok").unwrap().as_str().unwrap(), "welcome");
                let nodes = welcome.get("nodes").unwrap().as_u64().unwrap();

                c.send(r#"{"op": "subscribe"}"#);
                assert!(c.recv().contains("subscribed"));

                // Submit a handful of permit requests, each tagged, and wait
                // for the streamed outcome of every ticket.
                let mut tickets = Vec::new();
                for i in 0..8u64 {
                    let node = (w * 3 + i) % nodes;
                    c.send(&format!(
                        r#"{{"op": "submit", "kind": "event", "node": {node}, "tag": {i}}}"#
                    ));
                }
                let mut outcomes = 0;
                while outcomes < 8 {
                    let frame = c.recv();
                    let v = json::parse(&frame).unwrap();
                    if let Ok(ok) = v.get("ok") {
                        assert_eq!(ok.as_str().unwrap(), "ticket", "{frame}");
                        tickets.push(v.get("ticket").unwrap().as_u64().unwrap());
                    } else if v.get("event").is_ok() {
                        outcomes += 1;
                    } else {
                        panic!("unexpected frame {frame}");
                    }
                }
                assert_eq!(tickets.len(), 8);

                // Every ticket polls back resolved (budget 256 >> 24 total
                // requests, so they all granted).
                for t in tickets {
                    c.send(&format!(r#"{{"op": "poll", "ticket": {t}}}"#));
                    let v = json::parse(&c.recv()).unwrap();
                    assert_eq!(v.get("status").unwrap().as_str().unwrap(), "granted");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client worker");
    }

    // A final client checks the totals and asks the server to stop.
    let mut c = Client::connect(addr);
    c.send(r#"{"op": "hello", "proto": 1}"#);
    assert!(c.recv().contains("welcome"));
    c.send(r#"{"op": "stats"}"#);
    let stats = json::parse(&c.recv()).unwrap();
    assert_eq!(stats.get("submitted").unwrap().as_u64().unwrap(), 24);
    assert_eq!(stats.get("granted").unwrap().as_u64().unwrap(), 24);
    assert_eq!(stats.get("rejected").unwrap().as_u64().unwrap(), 0);
    c.send(r#"{"op": "shutdown"}"#);
    assert!(c.recv().contains("shutting-down"));

    handle.join();
}

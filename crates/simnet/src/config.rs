//! Simulator configuration: random seed and message-delay model.

use dcn_rng::Rng;

/// Distribution of per-hop message delays (in abstract time units).
///
/// The paper's model only requires delays to be *arbitrary but finite*; the
/// simulator lets tests and experiments pick a concrete adversary:
///
/// ```
/// use dcn_simnet::{DelayModel, SimConfig};
/// let cfg = SimConfig::new(42).with_delay(DelayModel::Uniform { min: 1, max: 16 });
/// assert_eq!(cfg.seed, 42);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DelayModel {
    /// Every message takes exactly this many time units (a synchronous-like
    /// schedule, useful for debugging).
    Constant(u64),
    /// Delays drawn uniformly from `[min, max]`.
    Uniform {
        /// Minimum delay (clamped to at least 1).
        min: u64,
        /// Maximum delay.
        max: u64,
    },
    /// A bimodal adversary: most messages are fast (`fast`), but with
    /// probability `slow_percent`% a message is delayed by `slow` units.
    /// Exercises reordering between neighbouring requests.
    Bimodal {
        /// Common-case delay.
        fast: u64,
        /// Slow-path delay.
        slow: u64,
        /// Percentage (0..=100) of messages that take the slow path.
        slow_percent: u8,
    },
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel::Uniform { min: 1, max: 8 }
    }
}

impl DelayModel {
    /// Samples one delay; always at least 1.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        match *self {
            DelayModel::Constant(d) => d.max(1),
            DelayModel::Uniform { min, max } => {
                let lo = min.max(1);
                let hi = max.max(lo);
                rng.gen_range(lo..=hi)
            }
            DelayModel::Bimodal {
                fast,
                slow,
                slow_percent,
            } => {
                if rng.gen_range(0u8..100) < slow_percent.min(100) {
                    slow.max(1)
                } else {
                    fast.max(1)
                }
            }
        }
    }
}

/// Configuration of a [`Simulator`](crate::Simulator).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SimConfig {
    /// Seed for the simulator's deterministic RNG (delays, port numbers).
    pub seed: u64,
    /// Message delay model.
    pub delay: DelayModel,
    /// Delay between a topological change being granted and the environment
    /// first attempting to apply it ("after finite time", §2.1.2).
    pub change_delay: u64,
    /// Delay before re-attempting a graceful change whose target is still
    /// busy (locked / queued agents / in-flight messages).
    pub change_retry_delay: u64,
    /// Safety valve: maximum number of events processed by
    /// [`Simulator::run_until_quiescent`](crate::Simulator::run_until_quiescent)
    /// before it gives up and reports an error.
    pub max_events: u64,
}

impl SimConfig {
    /// Creates a configuration with the given seed and default delays.
    pub fn new(seed: u64) -> Self {
        SimConfig {
            seed,
            delay: DelayModel::default(),
            change_delay: 4,
            change_retry_delay: 8,
            max_events: 50_000_000,
        }
    }

    /// Sets the message delay model.
    pub fn with_delay(mut self, delay: DelayModel) -> Self {
        self.delay = delay;
        self
    }

    /// Sets the event-count safety valve.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = max_events;
        self
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_rng::{DetRng, SeedableRng};

    #[test]
    fn constant_delay_is_at_least_one() {
        let mut rng = DetRng::seed_from_u64(1);
        assert_eq!(DelayModel::Constant(0).sample(&mut rng), 1);
        assert_eq!(DelayModel::Constant(5).sample(&mut rng), 5);
    }

    #[test]
    fn uniform_delay_respects_bounds() {
        let mut rng = DetRng::seed_from_u64(2);
        let m = DelayModel::Uniform { min: 3, max: 9 };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!((3..=9).contains(&d));
        }
    }

    #[test]
    fn uniform_delay_with_inverted_bounds_degenerates_gracefully() {
        let mut rng = DetRng::seed_from_u64(3);
        let m = DelayModel::Uniform { min: 7, max: 2 };
        for _ in 0..50 {
            assert_eq!(m.sample(&mut rng), 7);
        }
    }

    #[test]
    fn bimodal_produces_both_modes() {
        let mut rng = DetRng::seed_from_u64(4);
        let m = DelayModel::Bimodal {
            fast: 1,
            slow: 100,
            slow_percent: 50,
        };
        let samples: Vec<u64> = (0..300).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.contains(&1));
        assert!(samples.contains(&100));
    }

    #[test]
    fn config_builder_sets_fields() {
        let cfg = SimConfig::new(9)
            .with_delay(DelayModel::Constant(2))
            .with_max_events(123);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.delay, DelayModel::Constant(2));
        assert_eq!(cfg.max_events, 123);
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let m = DelayModel::Uniform { min: 1, max: 100 };
        let mut a = DetRng::seed_from_u64(77);
        let mut b = DetRng::seed_from_u64(77);
        let sa: Vec<u64> = (0..50).map(|_| m.sample(&mut a)).collect();
        let sb: Vec<u64> = (0..50).map(|_| m.sample(&mut b)).collect();
        assert_eq!(sa, sb);
    }
}

//! The discrete-event core: a time-ordered, deterministic event queue.

use crate::protocol::AgentId;
use crate::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in abstract units.
pub type Time = u64;

/// Identifier of a pending graceful topology change.
pub type ChangeId = u64;

/// Internal simulator events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// An agent (created, moved or dequeued) becomes active at `at`.
    Activate { agent: AgentId, at: NodeId },
    /// The environment attempts to apply a pending graceful topology change.
    AttemptChange { change: ChangeId },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: Time,
    pub seq: u64,
    pub kind: EventKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by (time, seq) via Reverse in the queue.
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic time-ordered queue; ties broken by insertion order.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    now: Time,
    /// Number of absolute-time schedules that pointed into the past and were
    /// clamped to `now`. Always 0 in a correct driver; surfaced so tests and
    /// debug assertions can detect would-be time travel.
    clamped: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events still pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `kind` to fire `delay` units after the current time and
    /// returns the event's absolute fire time.
    pub fn schedule(&mut self, delay: Time, kind: EventKind) -> Time {
        self.schedule_at(self.now.saturating_add(delay), kind)
    }

    /// Schedules `kind` at the absolute time `at` and returns the actual fire
    /// time.
    ///
    /// Simulated time must never run backwards (the §2.1.2 execution model
    /// orders every change), so an `at` in the past is **clamped to `now`**
    /// rather than accepted verbatim; the clamp is counted
    /// ([`EventQueue::clamped_count`]) so drivers and tests can treat it as
    /// the bug it indicates.
    pub fn schedule_at(&mut self, at: Time, kind: EventKind) -> Time {
        let time = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let event = Event {
            time,
            seq: self.next_seq,
            kind,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(event));
        time
    }

    /// Number of past-dated schedules that were clamped to `now` (0 in a
    /// correct execution).
    pub fn clamped_count(&self) -> u64 {
        self.clamped
    }

    /// The absolute fire time of the next pending event, without popping it.
    /// Lets drivers batch-poll ("is anything due before t?") without
    /// disturbing the queue.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(event)| event.time)
    }

    /// Pops the next event and advances the clock to its timestamp. The clock
    /// is monotone by construction (every insertion point is `≥ now`), and
    /// `max` keeps it monotone even against a future bug in the queue itself.
    pub fn pop(&mut self) -> Option<Event> {
        let Reverse(event) = self.heap.pop()?;
        debug_assert!(event.time >= self.now, "time must not run backwards");
        self.now = self.now.max(event.time);
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activate(i: u32) -> EventKind {
        EventKind::Activate {
            agent: AgentId(i as u64),
            at: NodeId::from_index(0),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, activate(1));
        q.schedule(5, activate(2));
        q.schedule(7, activate(3));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![5, 7, 10]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(3, activate(1));
        q.schedule(3, activate(2));
        q.schedule(3, activate(3));
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(order, vec![activate(1), activate(2), activate(3)]);
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(4, activate(1));
        q.pop();
        assert_eq!(q.now(), 4);
        // Scheduling is relative to the current time.
        q.schedule(2, activate(2));
        assert_eq!(q.pop().unwrap().time, 6);
    }

    #[test]
    fn schedule_returns_the_absolute_fire_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.schedule(10, activate(1)), 10);
        q.pop();
        assert_eq!(q.now(), 10);
        // Relative delays resolve against the advanced clock.
        assert_eq!(q.schedule(5, activate(2)), 15);
        assert_eq!(q.schedule(0, activate(3)), 10);
        // Saturation guard: a huge delay must not wrap around.
        assert_eq!(q.schedule(Time::MAX, activate(4)), Time::MAX);
    }

    #[test]
    fn peek_time_reports_the_next_event_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(8, activate(1));
        q.schedule(3, activate(2));
        assert_eq!(q.peek_time(), Some(3));
        // Peeking does not consume or advance anything.
        assert_eq!(q.len(), 2);
        assert_eq!(q.now(), 0);
        assert_eq!(q.pop().unwrap().time, 3);
        assert_eq!(q.peek_time(), Some(8));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn past_dated_events_are_clamped_to_now_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(10, activate(1));
        q.pop();
        assert_eq!(q.now(), 10);
        // An absolute schedule in the past must not move time backwards: it
        // fires "now" and the violation is counted.
        assert_eq!(q.schedule_at(3, activate(2)), 10);
        assert_eq!(q.clamped_count(), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.time, 10);
        assert_eq!(q.now(), 10);
        // Present and future absolute schedules pass through unclamped.
        assert_eq!(q.schedule_at(10, activate(3)), 10);
        assert_eq!(q.schedule_at(12, activate(4)), 12);
        assert_eq!(q.clamped_count(), 1);
    }

    #[test]
    fn clock_is_monotone_under_mixed_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5, activate(1));
        q.schedule_at(2, activate(2));
        q.schedule(0, activate(3));
        let mut last = q.now();
        let mut popped = 0;
        while let Some(e) = q.pop() {
            assert!(e.time >= last, "time ran backwards: {} < {last}", e.time);
            assert!(q.now() >= last);
            last = q.now();
            popped += 1;
            if popped == 2 {
                // Interleave more scheduling mid-drain.
                q.schedule_at(1, activate(4));
                q.schedule(1, activate(5));
            }
        }
        assert_eq!(popped, 5);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, activate(1));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}

//! The discrete-event core: a time-ordered, deterministic event queue.
//!
//! Since PR 6 the queue is a thin wrapper over
//! [`dcn_collections::CalendarQueue`] — a timing wheel exploiting the
//! bounded-delay distributions of [`SimConfig`](crate::SimConfig) for O(1)
//! schedule/pop — instead of a `BinaryHeap` paying O(log n) per event. The
//! observable contract is unchanged: events pop in ascending `(time, seq)`
//! order (seq = insertion order), `now()` is the timestamp of the last
//! popped event, and past-dated absolute schedules are clamped to `now` and
//! counted. The wheel is property-tested against the old heap as a model in
//! `dcn-collections/tests/prop_calendar.rs`.

use crate::protocol::AgentId;
use crate::NodeId;
use dcn_collections::CalendarQueue;

/// Simulated time, in abstract units.
pub type Time = u64;

/// Identifier of a pending graceful topology change.
pub type ChangeId = u64;

/// Internal simulator events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EventKind {
    /// An agent (created, moved or dequeued) becomes active at `at`.
    Activate { agent: AgentId, at: NodeId },
    /// The environment attempts to apply a pending graceful topology change.
    AttemptChange { change: ChangeId },
}

/// A popped event: its fire time and payload.
#[cfg(test)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Event {
    pub time: Time,
    pub kind: EventKind,
}

/// Deterministic time-ordered queue; ties broken by insertion order.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    calendar: CalendarQueue<EventKind>,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.calendar.now()
    }

    /// Number of events still pending.
    #[inline]
    pub fn len(&self) -> usize {
        self.calendar.len()
    }

    #[cfg(test)]
    pub fn is_empty(&self) -> bool {
        self.calendar.is_empty()
    }

    /// Schedules `kind` to fire `delay` units after the current time and
    /// returns the event's absolute fire time. A fire time past `Time::MAX`
    /// saturates there and is counted ([`EventQueue::saturated_count`]) —
    /// saturation silently collapses distinct delays onto one instant, so
    /// debug builds assert on it.
    #[inline]
    pub fn schedule(&mut self, delay: Time, kind: EventKind) -> Time {
        self.calendar.schedule(delay, kind)
    }

    /// Schedules `kind` at the absolute time `at` and returns the actual fire
    /// time.
    ///
    /// Simulated time must never run backwards (the §2.1.2 execution model
    /// orders every change), so an `at` in the past is **clamped to `now`**
    /// rather than accepted verbatim; the clamp is counted
    /// ([`EventQueue::clamped_count`]) so drivers and tests can treat it as
    /// the bug it indicates.
    #[cfg(test)]
    pub fn schedule_at(&mut self, at: Time, kind: EventKind) -> Time {
        self.calendar.schedule_at(at, kind)
    }

    /// Number of past-dated schedules that were clamped to `now` (0 in a
    /// correct execution).
    pub fn clamped_count(&self) -> u64 {
        self.calendar.clamped_count()
    }

    /// Number of relative schedules whose fire time saturated at
    /// `Time::MAX` (0 in a correct execution).
    pub fn saturated_count(&self) -> u64 {
        self.calendar.saturated_count()
    }

    /// The absolute fire time of the next pending event, without popping it.
    /// Lets drivers batch-poll ("is anything due before t?") without
    /// disturbing the queue.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.calendar.peek_time()
    }

    /// Pops the next event and advances the clock to its timestamp. The
    /// simulator itself drains by cohort ([`EventQueue::pop_batch`]); the
    /// single-event pop remains as the reference for the queue's contract
    /// tests.
    #[cfg(test)]
    pub fn pop(&mut self) -> Option<Event> {
        self.calendar.pop().map(|(time, kind)| Event { time, kind })
    }

    /// Pops **every** event sharing the earliest timestamp into `out` (in
    /// seq order) and advances the clock to that timestamp, which is
    /// returned. One queue probe serves the whole same-time cohort; events
    /// scheduled at that same timestamp while the cohort is being processed
    /// form the next cohort (larger seqs), reproducing the exact per-event
    /// pop order.
    #[inline]
    pub fn pop_batch(&mut self, out: &mut Vec<EventKind>) -> Option<Time> {
        self.calendar.pop_batch(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn activate(i: u32) -> EventKind {
        EventKind::Activate {
            agent: AgentId(i as u64),
            at: NodeId::from_index(0),
        }
    }

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(10, activate(1));
        q.schedule(5, activate(2));
        q.schedule(7, activate(3));
        let order: Vec<Time> = std::iter::from_fn(|| q.pop().map(|e| e.time)).collect();
        assert_eq!(order, vec![5, 7, 10]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(3, activate(1));
        q.schedule(3, activate(2));
        q.schedule(3, activate(3));
        let order: Vec<EventKind> = std::iter::from_fn(|| q.pop().map(|e| e.kind)).collect();
        assert_eq!(order, vec![activate(1), activate(2), activate(3)]);
    }

    #[test]
    fn clock_advances_to_popped_event() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(4, activate(1));
        q.pop();
        assert_eq!(q.now(), 4);
        // Scheduling is relative to the current time.
        q.schedule(2, activate(2));
        assert_eq!(q.pop().unwrap().time, 6);
    }

    #[test]
    fn schedule_returns_the_absolute_fire_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.schedule(10, activate(1)), 10);
        q.pop();
        assert_eq!(q.now(), 10);
        // Relative delays resolve against the advanced clock.
        assert_eq!(q.schedule(5, activate(2)), 15);
        assert_eq!(q.schedule(0, activate(3)), 10);
    }

    #[test]
    fn saturating_delays_are_counted_as_the_bug_they_are() {
        // At now = 0, a delay of Time::MAX fires exactly at Time::MAX — no
        // information is lost and nothing saturates.
        let mut q = EventQueue::new();
        assert_eq!(q.schedule(Time::MAX, activate(1)), Time::MAX);
        assert_eq!(q.saturated_count(), 0);
        // Once the clock has advanced, a near-MAX delay overflows the fire
        // time: distinct delays silently collapse onto Time::MAX. Release
        // builds saturate-and-count; debug builds additionally assert.
        let mut q = EventQueue::new();
        q.schedule(10, activate(1));
        q.pop();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule(Time::MAX - 5, activate(2))
        }));
        if cfg!(debug_assertions) {
            assert!(outcome.is_err(), "debug builds assert on saturation");
        } else {
            assert_eq!(outcome.unwrap(), Time::MAX);
        }
        assert_eq!(q.saturated_count(), 1);
    }

    #[test]
    fn peek_time_reports_the_next_event_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(8, activate(1));
        q.schedule(3, activate(2));
        assert_eq!(q.peek_time(), Some(3));
        // Peeking does not consume or advance anything.
        assert_eq!(q.len(), 2);
        assert_eq!(q.now(), 0);
        assert_eq!(q.pop().unwrap().time, 3);
        assert_eq!(q.peek_time(), Some(8));
        q.pop();
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn past_dated_events_are_clamped_to_now_and_counted() {
        let mut q = EventQueue::new();
        q.schedule(10, activate(1));
        q.pop();
        assert_eq!(q.now(), 10);
        // An absolute schedule in the past must not move time backwards: it
        // fires "now" and the violation is counted.
        assert_eq!(q.schedule_at(3, activate(2)), 10);
        assert_eq!(q.clamped_count(), 1);
        let e = q.pop().unwrap();
        assert_eq!(e.time, 10);
        assert_eq!(q.now(), 10);
        // Present and future absolute schedules pass through unclamped.
        assert_eq!(q.schedule_at(10, activate(3)), 10);
        assert_eq!(q.schedule_at(12, activate(4)), 12);
        assert_eq!(q.clamped_count(), 1);
    }

    #[test]
    fn clock_is_monotone_under_mixed_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5, activate(1));
        q.schedule_at(2, activate(2));
        q.schedule(0, activate(3));
        let mut last = q.now();
        let mut popped = 0;
        while let Some(e) = q.pop() {
            assert!(e.time >= last, "time ran backwards: {} < {last}", e.time);
            assert!(q.now() >= last);
            last = q.now();
            popped += 1;
            if popped == 2 {
                // Interleave more scheduling mid-drain.
                q.schedule_at(1, activate(4));
                q.schedule(1, activate(5));
            }
        }
        assert_eq!(popped, 5);
    }

    #[test]
    fn len_and_is_empty_track_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, activate(1));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_batch_drains_one_timestamp_per_call() {
        let mut q = EventQueue::new();
        q.schedule(4, activate(1));
        q.schedule(4, activate(2));
        q.schedule(9, activate(3));
        let mut batch = Vec::new();
        assert_eq!(q.pop_batch(&mut batch), Some(4));
        assert_eq!(batch, vec![activate(1), activate(2)]);
        assert_eq!(q.now(), 4);
        // Same-time events scheduled during processing form the next cohort.
        q.schedule(0, activate(4));
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(4));
        assert_eq!(batch, vec![activate(4)]);
        batch.clear();
        assert_eq!(q.pop_batch(&mut batch), Some(9));
        assert_eq!(batch, vec![activate(3)]);
        assert_eq!(q.pop_batch(&mut batch), None);
    }
}

//! Struct-of-arrays hot state for the simulator's event loop.
//!
//! PR 5 moved per-entity state out of hashed maps into dense
//! `SecondaryMap`s; this module goes one step further and fuses the four
//! parallel maps (whiteboards / node taxi / ports, and the agent table) into
//! two struct-of-arrays containers with a **single liveness discriminator**
//! each: a node exists iff its whiteboard slot is `Some`, an agent is
//! resident iff its state slot is `Some`. One `Activate` then pays one
//! presence check and direct indexing into plain `Vec`s, instead of four
//! separate `Vec<Option<_>>` probes with four redundant discriminants.
//!
//! Entity ids (`NodeId`, `AgentId`) are arena-dense and never reused, so
//! slots are written once and the arrays grow with `total_created` — the
//! same memory law the `SecondaryMap`s had.

use crate::ports::PortMap;
use crate::protocol::AgentId;
use crate::taxi::{AgentTaxi, NodeTaxi};
use crate::NodeId;
use dcn_collections::EntityKey;

/// Per-node hot state: parallel arrays indexed by the node's arena index.
/// The whiteboard slot doubles as the liveness discriminator — `taxi` and
/// `ports` entries of dead slots are default-valued and must only be reached
/// through the liveness-gated accessors.
pub(crate) struct HotNodeState<W> {
    whiteboards: Vec<Option<W>>,
    taxi: Vec<NodeTaxi>,
    ports: Vec<PortMap>,
}

impl<W> HotNodeState<W> {
    pub fn with_capacity(capacity: usize) -> Self {
        let mut state = HotNodeState {
            whiteboards: Vec::new(),
            taxi: Vec::new(),
            ports: Vec::new(),
        };
        state.ensure(capacity);
        state
    }

    /// Grows all three arrays to cover indices `0..len` with dead slots.
    fn ensure(&mut self, len: usize) {
        if self.whiteboards.len() < len {
            self.whiteboards.resize_with(len, || None);
            self.taxi.resize_with(len, NodeTaxi::new);
            self.ports.resize_with(len, PortMap::default);
        }
    }

    #[inline]
    fn slot(&self, node: NodeId) -> Option<usize> {
        let i = node.index();
        (i < self.whiteboards.len() && self.whiteboards[i].is_some()).then_some(i)
    }

    /// Marks `node` live with a fresh whiteboard and taxi state (ports keep
    /// whatever assignments they already accumulated — ids are never reused,
    /// so a fresh slot's port map is empty).
    pub fn insert(&mut self, node: NodeId, whiteboard: W) {
        let i = node.index();
        self.ensure(i + 1);
        self.whiteboards[i] = Some(whiteboard);
        self.taxi[i] = NodeTaxi::new();
    }

    /// Kills `node`, returning its whiteboard and resetting its taxi/port
    /// state (releasing the queue and port allocations).
    pub fn remove(&mut self, node: NodeId) -> Option<W> {
        let i = self.slot(node)?;
        self.taxi[i] = NodeTaxi::new();
        self.ports[i] = PortMap::default();
        self.whiteboards[i].take()
    }

    #[cfg(test)]
    pub fn contains(&self, node: NodeId) -> bool {
        self.slot(node).is_some()
    }

    #[inline]
    pub fn whiteboard(&self, node: NodeId) -> Option<&W> {
        let i = node.index();
        self.whiteboards.get(i).and_then(Option::as_ref)
    }

    #[inline]
    pub fn whiteboard_mut(&mut self, node: NodeId) -> Option<&mut W> {
        let i = node.index();
        self.whiteboards.get_mut(i).and_then(Option::as_mut)
    }

    #[inline]
    pub fn taxi(&self, node: NodeId) -> Option<&NodeTaxi> {
        self.slot(node).map(|i| &self.taxi[i])
    }

    #[inline]
    pub fn taxi_mut(&mut self, node: NodeId) -> Option<&mut NodeTaxi> {
        self.slot(node).map(|i| &mut self.taxi[i])
    }

    #[inline]
    pub fn ports(&self, node: NodeId) -> Option<&PortMap> {
        self.slot(node).map(|i| &self.ports[i])
    }

    /// Ungated port access for topology rewiring: the caller has already
    /// established the node is part of the change, and a port map physically
    /// exists for every slot.
    #[inline]
    pub fn ports_raw_mut(&mut self, node: NodeId) -> &mut PortMap {
        let i = node.index();
        self.ensure(i + 1);
        &mut self.ports[i]
    }

    /// Live whiteboards in node-index order (the deterministic iteration
    /// order the sweep reports rely on).
    pub fn iter_whiteboards(&self) -> impl Iterator<Item = (NodeId, &W)> {
        self.whiteboards
            .iter()
            .enumerate()
            .filter_map(|(i, wb)| wb.as_ref().map(|w| (NodeId::from_index(i), w)))
    }
}

/// The agent table: agent program state and taxi counters in parallel
/// arrays indexed by the agent's id. Ids are handed out sequentially by
/// [`AgentTable::create`], so the state slot's index *is* the id.
///
/// During an activation the agent's program state is moved out
/// ([`AgentTable::take_state`]) and handed to the protocol by value, then
/// moved back in (or dropped on termination); the taxi counters always stay
/// in the table and are mutated in place. `len()` therefore counts agents
/// *excluding* one whose state is currently checked out.
pub(crate) struct AgentTable<A> {
    states: Vec<Option<A>>,
    taxi: Vec<AgentTaxi>,
    live: usize,
}

impl<A> AgentTable<A> {
    pub fn new() -> Self {
        AgentTable {
            states: Vec::new(),
            taxi: Vec::new(),
            live: 0,
        }
    }

    /// Number of agents currently resident (state present).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Registers a new agent at `origin` and returns its (sequential) id.
    pub fn create(&mut self, state: A, origin: NodeId) -> AgentId {
        let id = AgentId(self.states.len() as u64);
        self.states.push(Some(state));
        self.taxi.push(AgentTaxi::new(origin));
        self.live += 1;
        id
    }

    /// Checks the agent's program state out of the table (for an activation
    /// or a drop). Returns `None` if the agent never existed or is already
    /// gone.
    #[inline]
    pub fn take_state(&mut self, agent: AgentId) -> Option<A> {
        let state = self.states.get_mut(agent.index())?.take();
        if state.is_some() {
            self.live -= 1;
        }
        state
    }

    /// Checks a state back in after an activation.
    #[inline]
    pub fn put_state(&mut self, agent: AgentId, state: A) {
        debug_assert!(self.states[agent.index()].is_none());
        self.states[agent.index()] = Some(state);
        self.live += 1;
    }

    /// The taxi counters of `agent`. Valid for every id ever created (taxi
    /// state survives the state checkout).
    #[inline]
    pub fn taxi_mut(&mut self, agent: AgentId) -> &mut AgentTaxi {
        &mut self.taxi[agent.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn node_liveness_follows_the_whiteboard_slot() {
        let mut hot: HotNodeState<u64> = HotNodeState::with_capacity(2);
        assert!(!hot.contains(n(0)));
        assert!(hot.taxi(n(0)).is_none());
        hot.insert(n(0), 7);
        assert!(hot.contains(n(0)));
        assert_eq!(hot.whiteboard(n(0)), Some(&7));
        hot.taxi_mut(n(0)).unwrap().inbound = 3;
        assert_eq!(hot.remove(n(0)), Some(7));
        assert!(!hot.contains(n(0)));
        assert!(hot.taxi(n(0)).is_none());
        // A dead slot's taxi state was reset, not leaked.
        hot.insert(n(0), 9);
        assert_eq!(hot.taxi(n(0)).unwrap().inbound, 0);
    }

    #[test]
    fn arrays_grow_on_demand_past_the_initial_capacity() {
        let mut hot: HotNodeState<u64> = HotNodeState::with_capacity(1);
        hot.insert(n(5), 42);
        assert_eq!(hot.whiteboard(n(5)), Some(&42));
        assert!(!hot.contains(n(3)));
        hot.ports_raw_mut(n(8)).len(); // ungated access also grows
        assert!(!hot.contains(n(8)));
    }

    #[test]
    fn whiteboard_iteration_is_in_index_order() {
        let mut hot: HotNodeState<&str> = HotNodeState::with_capacity(4);
        hot.insert(n(3), "three");
        hot.insert(n(1), "one");
        let seen: Vec<(NodeId, &&str)> = hot.iter_whiteboards().collect();
        assert_eq!(seen, vec![(n(1), &"one"), (n(3), &"three")]);
    }

    #[test]
    fn agent_states_check_out_and_back_in() {
        let mut agents: AgentTable<&str> = AgentTable::new();
        let a = agents.create("walker", n(0));
        let b = agents.create("waver", n(1));
        assert_eq!(agents.len(), 2);
        assert_eq!(agents.take_state(a), Some("walker"));
        assert_eq!(agents.len(), 1);
        // Taxi state survives the checkout.
        agents.taxi_mut(a).mark_top();
        agents.put_state(a, "walker");
        assert_eq!(agents.len(), 2);
        // Terminating = never putting the state back.
        assert_eq!(agents.take_state(b), Some("waver"));
        assert_eq!(agents.take_state(b), None);
        assert_eq!(agents.len(), 1);
    }
}

//! # dcn-simnet — asynchronous network and mobile-agent simulator
//!
//! The distributed controller of Korman & Kutten (§4 of the paper) is written
//! in the *mobile agent* style of Korach–Kutten–Moran: a request arriving at a
//! node creates an agent that travels along the spanning tree (carried by
//! messages), reads and writes per-node *whiteboards*, locks and unlocks
//! nodes, and is queued FIFO at locked nodes. The underlying network is the
//! standard asynchronous point-to-point message passing model: every message
//! (every agent hop) suffers an arbitrary but finite delay.
//!
//! This crate provides that substrate as a deterministic discrete-event
//! simulator:
//!
//! * [`Simulator`] — the event engine, parameterised by a [`Protocol`] that
//!   supplies the whiteboard type, the agent state and the agent program;
//! * the *taxi* services of the paper (§4.3.2): `Up`, `Down`, `Distance`,
//!   `DistToTop`, per-node locks, FIFO agent queues and the "child I arrived
//!   from" pointer used to descend along a locked path — all exposed through
//!   [`NodeCtx`];
//! * *graceful* topological changes (§4.2): a granted change is scheduled via
//!   [`TopologyChange`] and is physically applied only when its target node is
//!   unlocked, has no queued agents and no in-flight messages, at which point
//!   whiteboard contents are merged into the parent. This is a concrete
//!   implementation of the handshake-style graceful-deletion protocols the
//!   paper leaves out of scope;
//! * adversarially assigned port numbers, message accounting and a seeded
//!   random delay model so that every experiment is reproducible and many
//!   asynchronous schedules can be explored by sweeping the seed.
//!
//! The simulator is protocol-agnostic: the controller crate implements
//! [`Protocol`] for the (M, W)-controller, and the estimator crate reuses the
//! same machinery for the size-estimation / name-assignment protocols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod hot;
mod metrics;
mod ports;
mod protocol;
mod sim;
mod taxi;
mod topology;

pub use config::{DelayModel, SimConfig};
pub use metrics::Metrics;
pub use ports::PortMap;
pub use protocol::{Action, AgentId, NodeCtx, Protocol};
pub use sim::{SimError, Simulator};
pub use topology::TopologyChange;

pub use dcn_tree::{DynamicTree, NodeId, TreeError};

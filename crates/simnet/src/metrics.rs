//! Cost accounting for simulated executions.

/// Message and work counters accumulated over a simulated execution.
///
/// The paper's primary cost measure is the **message complexity**: every agent
/// hop over a tree edge is one message ([`Metrics::agent_hops`]). Auxiliary
/// protocol services (broadcast / convergecast waves implemented by higher
/// layers) report their cost through [`Metrics::aux_messages`]; the total is
/// exposed by [`Metrics::total_messages`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of events processed by the engine.
    pub events_processed: u64,
    /// Number of agent hops (each hop is one message over a tree edge).
    pub agent_hops: u64,
    /// Messages reported by higher-level services (broadcast / convergecast,
    /// counting waves, data-structure hand-off on deletion, …).
    pub aux_messages: u64,
    /// Number of agents ever created.
    pub agents_created: u64,
    /// Number of agent activations (arrivals, creations and dequeues).
    pub activations: u64,
    /// Number of times an agent had to wait in a locked node's queue.
    pub waits: u64,
    /// Number of granted topological changes physically applied.
    pub topology_changes_applied: u64,
    /// Number of granted topological changes dropped because their target
    /// vanished before they could be applied (see the crate docs on graceful
    /// changes).
    pub topology_changes_dropped: u64,
    /// Number of deferred-change re-attempts (target still busy).
    pub change_retries: u64,
    /// Number of agents dropped because their destination vanished (wave
    /// agents racing a concurrent removal).
    pub agents_dropped: u64,
    /// Largest agent queue length observed at any node.
    pub max_queue_len: usize,
    /// Largest number of simultaneously live agents observed.
    pub max_live_agents: usize,
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total messages: agent hops plus auxiliary service messages.
    pub fn total_messages(&self) -> u64 {
        self.agent_hops + self.aux_messages
    }

    /// Adds `other` into `self` (used when chaining iterations/phases).
    pub fn absorb(&mut self, other: &Metrics) {
        self.events_processed += other.events_processed;
        self.agent_hops += other.agent_hops;
        self.aux_messages += other.aux_messages;
        self.agents_created += other.agents_created;
        self.activations += other.activations;
        self.waits += other.waits;
        self.topology_changes_applied += other.topology_changes_applied;
        self.topology_changes_dropped += other.topology_changes_dropped;
        self.change_retries += other.change_retries;
        self.agents_dropped += other.agents_dropped;
        self.max_queue_len = self.max_queue_len.max(other.max_queue_len);
        self.max_live_agents = self.max_live_agents.max(other.max_live_agents);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_messages_sums_hops_and_aux() {
        let m = Metrics {
            agent_hops: 10,
            aux_messages: 5,
            ..Metrics::new()
        };
        assert_eq!(m.total_messages(), 15);
    }

    #[test]
    fn absorb_adds_counters_and_maxes_peaks() {
        let mut a = Metrics {
            agent_hops: 3,
            max_queue_len: 2,
            max_live_agents: 7,
            ..Metrics::new()
        };
        let b = Metrics {
            agent_hops: 4,
            aux_messages: 1,
            max_queue_len: 5,
            max_live_agents: 3,
            ..Metrics::new()
        };
        a.absorb(&b);
        assert_eq!(a.agent_hops, 7);
        assert_eq!(a.aux_messages, 1);
        assert_eq!(a.max_queue_len, 5);
        assert_eq!(a.max_live_agents, 7);
    }

    #[test]
    fn default_is_zeroed() {
        assert_eq!(Metrics::new().total_messages(), 0);
    }
}

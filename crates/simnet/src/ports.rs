//! Adversarial port-number assignment.
//!
//! The paper assumes the "relatively wasteful" model in which port numbers at
//! each vertex are assigned by an adversary and encoded with `O(log N)` bits
//! (§2.1.2). The controller never interprets port numbers — it only needs the
//! port leading to the parent — but keeping the assignment around lets tests
//! confirm the protocol does not accidentally rely on a friendly numbering.

use crate::NodeId;
use dcn_rng::Rng;

/// Port numbers of a single node: one distinct number per incident tree edge.
///
/// Stored as a flat `(neighbor, port)` list sized by the node's degree.
/// Tree degrees in the simulated workloads are tens at most, so a linear
/// scan beats a hash table on every axis that matters here: no allocation
/// for the (very common) empty map, one compact cache line or two when
/// populated, and no hashing on the wiring path. The rejection loop in
/// [`PortMap::assign`] asks exactly the same membership question a hash set
/// would answer, so recorded rng streams replay unchanged.
#[derive(Clone, Debug, Default)]
pub struct PortMap {
    entries: Vec<(NodeId, u32)>,
}

impl PortMap {
    /// Creates an empty port map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns a fresh adversarial (random, unique at this node) port number
    /// for the edge towards `neighbor` and returns it.
    pub fn assign<R: Rng>(&mut self, neighbor: NodeId, rng: &mut R) -> u32 {
        loop {
            let candidate: u32 = rng.gen();
            // A candidate colliding with *any* currently assigned port — the
            // neighbor's own old port included — is redrawn, exactly as the
            // historical hash-set probe did, so recorded rng streams replay
            // unchanged.
            if self.entries.iter().any(|&(_, p)| p == candidate) {
                continue;
            }
            if let Some(entry) = self.entries.iter_mut().find(|e| e.0 == neighbor) {
                entry.1 = candidate;
            } else {
                self.entries.push((neighbor, candidate));
            }
            return candidate;
        }
    }

    /// Port number of the edge towards `neighbor`, if assigned.
    pub fn port_to(&self, neighbor: NodeId) -> Option<u32> {
        self.entries.iter().find(|e| e.0 == neighbor).map(|e| e.1)
    }

    /// Removes the port of the edge towards `neighbor` (the edge disappeared).
    pub fn remove(&mut self, neighbor: NodeId) {
        if let Some(i) = self.entries.iter().position(|e| e.0 == neighbor) {
            self.entries.swap_remove(i);
        }
    }

    /// Number of assigned ports.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no port is assigned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if all port numbers at this node are pairwise distinct
    /// (an invariant the paper requires at all times).
    pub fn all_distinct(&self) -> bool {
        let mut seen: Vec<u32> = self.entries.iter().map(|e| e.1).collect();
        seen.sort_unstable();
        seen.windows(2).all(|w| w[0] != w[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_rng::{DetRng, SeedableRng};

    #[test]
    fn assigned_ports_are_distinct_and_retrievable() {
        let mut rng = DetRng::seed_from_u64(5);
        let mut pm = PortMap::new();
        for i in 0..100 {
            pm.assign(NodeId::from_index(i), &mut rng);
        }
        assert_eq!(pm.len(), 100);
        assert!(pm.all_distinct());
        assert!(pm.port_to(NodeId::from_index(42)).is_some());
        assert!(pm.port_to(NodeId::from_index(1000)).is_none());
    }

    #[test]
    fn reassigning_a_neighbor_retires_the_old_port_number() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut pm = PortMap::new();
        let neighbor = NodeId::from_index(1);
        let first = pm.assign(neighbor, &mut rng);
        let second = pm.assign(neighbor, &mut rng);
        assert_ne!(first, second);
        assert_eq!(pm.len(), 1);
        assert_eq!(pm.port_to(neighbor), Some(second));
        assert!(pm.all_distinct());
        // The old number is free again: a map filled to the same size stays
        // consistent (used set mirrors the live values exactly).
        for i in 2..200 {
            pm.assign(NodeId::from_index(i), &mut rng);
        }
        assert_eq!(pm.len(), 199);
        assert!(pm.all_distinct());
    }

    #[test]
    fn removing_a_port_frees_the_slot() {
        let mut rng = DetRng::seed_from_u64(6);
        let mut pm = PortMap::new();
        pm.assign(NodeId::from_index(1), &mut rng);
        assert!(!pm.is_empty());
        pm.remove(NodeId::from_index(1));
        assert!(pm.is_empty());
        assert!(pm.port_to(NodeId::from_index(1)).is_none());
    }
}

//! The [`Protocol`] trait, agent actions and the per-activation [`NodeCtx`].

use crate::topology::TopologyChange;
use crate::NodeId;
use std::fmt;

/// Identifier of a mobile agent.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AgentId(pub(crate) u64);

impl AgentId {
    /// Raw numeric value (useful for logging and deterministic tie-breaking).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl dcn_collections::EntityKey for AgentId {
    fn index(self) -> usize {
        self.0 as usize
    }

    fn from_index(index: usize) -> Self {
        AgentId(index as u64)
    }
}

impl fmt::Debug for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The movement / lifecycle decision an agent returns from one activation.
///
/// One activation is atomic with respect to the node (paper §4.3.1: "the agent
/// handles an event atomically"); all whiteboard mutations and effects queued
/// through [`NodeCtx`] are applied, and then the returned action is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Move one hop towards the root. Must not be issued at the root.
    Up,
    /// Move one hop towards this agent's origin, along the locked path (to the
    /// child from which the lock-holding agent arrived). Must not be issued at
    /// the agent's origin.
    Down,
    /// Move to the named child of the current node (used by wave agents such
    /// as the reject broadcast). If the child no longer exists when the move
    /// is executed, the agent is dropped.
    MoveToChild(NodeId),
    /// Wait in this node's FIFO queue until the node becomes unlocked; the
    /// agent is then re-activated as if it had just arrived.
    WaitForUnlock,
    /// Re-activate this agent at the same node (after other already-scheduled
    /// events at the current instant).
    Again,
    /// The agent is done and is removed from the system.
    Terminate,
}

/// Deferred effects collected during one activation.
#[derive(Debug)]
pub(crate) enum Effect<P: Protocol> {
    Lock,
    Unlock,
    MarkTop,
    Spawn(P::Agent),
    Emit(P::Output),
    ScheduleChange(TopologyChange),
    AuxMessages(u64),
}

/// The view an agent has of the node it is activated at, plus its own taxi
/// counters, plus effect queues (locking, spawning, emitting, scheduling
/// topology changes).
///
/// The controller only ever accesses the whiteboard of the node the agent is
/// currently at, exactly as in the paper's model; `NodeCtx` enforces that by
/// construction.
pub struct NodeCtx<'a, P: Protocol> {
    pub(crate) node: NodeId,
    pub(crate) parent: Option<NodeId>,
    /// Borrowed straight from the tree arena — the hot loop never copies a
    /// child list.
    pub(crate) children: &'a [NodeId],
    pub(crate) node_count: usize,
    pub(crate) total_created: usize,
    pub(crate) time: u64,
    pub(crate) agent_id: AgentId,
    pub(crate) origin: NodeId,
    pub(crate) dist_from_origin: usize,
    pub(crate) dist_to_top: usize,
    pub(crate) locked_by: Option<AgentId>,
    pub(crate) whiteboard: &'a mut P::Whiteboard,
    pub(crate) effects: Vec<Effect<P>>,
}

impl<'a, P: Protocol> NodeCtx<'a, P> {
    /// The node the agent is activated at.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Returns `true` if this node is the root of the spanning tree.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// The parent of this node, or `None` at the root.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The children of this node (a node knows its ports to its children).
    pub fn children(&self) -> &[NodeId] {
        self.children
    }

    /// The child-degree `deg(v)` of this node.
    pub fn child_degree(&self) -> usize {
        self.children.len()
    }

    /// Current number of nodes in the network.
    ///
    /// Individual nodes do not know this quantity in the real protocol; it is
    /// exposed so that higher layers can *model* counting waves (broadcast and
    /// convergecast) whose message cost they account for explicitly via
    /// [`NodeCtx::add_aux_messages`]. See the controller crate for usage.
    pub fn current_node_count(&self) -> usize {
        self.node_count
    }

    /// Total number of nodes ever to exist in the network so far (the running
    /// value of the paper's `U`). Same modelling caveat as
    /// [`NodeCtx::current_node_count`].
    pub fn total_created(&self) -> usize {
        self.total_created
    }

    /// Current simulated time.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The id of the agent being activated.
    pub fn agent_id(&self) -> AgentId {
        self.agent_id
    }

    /// The node at which this agent was created.
    pub fn origin(&self) -> NodeId {
        self.origin
    }

    /// Taxi `Distance` query: hop distance from the current node to the
    /// agent's origin.
    pub fn distance_from_origin(&self) -> usize {
        self.dist_from_origin
    }

    /// Taxi `DistToTop` query: hop distance below the node most recently
    /// marked with [`NodeCtx::mark_top`].
    pub fn dist_to_top(&self) -> usize {
        self.dist_to_top
    }

    /// Returns `true` if the node is currently locked (by any agent).
    pub fn is_locked(&self) -> bool {
        self.locked_by.is_some()
    }

    /// The agent currently holding this node's lock, if any.
    pub fn locked_by(&self) -> Option<AgentId> {
        self.locked_by
    }

    /// Returns `true` if this node is locked by the agent being activated.
    pub fn locked_by_me(&self) -> bool {
        self.locked_by == Some(self.agent_id)
    }

    /// Shared access to this node's whiteboard.
    pub fn whiteboard(&self) -> &P::Whiteboard {
        self.whiteboard
    }

    /// Exclusive access to this node's whiteboard.
    pub fn whiteboard_mut(&mut self) -> &mut P::Whiteboard {
        self.whiteboard
    }

    /// Locks this node on behalf of the activated agent. The taxi records the
    /// child the agent arrived from so that later `Down` moves can retrace the
    /// path.
    pub fn lock(&mut self) {
        self.effects.push(Effect::Lock);
        self.locked_by = Some(self.agent_id);
    }

    /// Unlocks this node. If other agents wait in the node's queue, the first
    /// of them is re-activated.
    pub fn unlock(&mut self) {
        self.effects.push(Effect::Unlock);
        self.locked_by = None;
    }

    /// Marks the current node as the agent's "top"; `DistToTop` is reset to 0.
    pub fn mark_top(&mut self) {
        self.effects.push(Effect::MarkTop);
        self.dist_to_top = 0;
    }

    /// Spawns a new agent at the current node; it will be activated after the
    /// current activation completes (at the same simulated instant).
    pub fn spawn_agent(&mut self, state: P::Agent) {
        self.effects.push(Effect::Spawn(state));
    }

    /// Emits a protocol output (e.g. "request R was granted"), collected by
    /// the driver via [`Simulator::drain_outputs`](crate::Simulator::drain_outputs).
    pub fn emit(&mut self, output: P::Output) {
        self.effects.push(Effect::Emit(output));
    }

    /// Schedules a granted topological change for graceful application by the
    /// environment ("the requesting entity performs the change after finite
    /// time", paper §2.1.2).
    pub fn schedule_change(&mut self, change: TopologyChange) {
        self.effects.push(Effect::ScheduleChange(change));
    }

    /// Accounts for `count` messages sent by a higher-level service that is
    /// modelled abstractly (broadcast / convergecast waves, counting waves).
    pub fn add_aux_messages(&mut self, count: u64) {
        self.effects.push(Effect::AuxMessages(count));
    }
}

impl<P: Protocol> fmt::Debug for NodeCtx<'_, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("node", &self.node)
            .field("agent", &self.agent_id)
            .field("origin", &self.origin)
            .field("dist_from_origin", &self.dist_from_origin)
            .field("dist_to_top", &self.dist_to_top)
            .field("locked_by", &self.locked_by)
            .finish()
    }
}

/// A distributed protocol executed by mobile agents over the simulated
/// network.
///
/// Implementations provide the per-node whiteboard, the agent state, the
/// output type reported to the driving harness, and the agent program itself
/// ([`Protocol::on_activate`]).
pub trait Protocol: Sized {
    /// Per-node protocol state (the paper's *whiteboard*).
    type Whiteboard: fmt::Debug;
    /// Mobile agent state (the paper's agent variables, e.g. its `Bag`).
    type Agent: fmt::Debug;
    /// Outputs reported to the driver (grants, rejects, terminations, …).
    type Output: fmt::Debug;

    /// Creates the whiteboard for a node joining the network. `parent` is
    /// `None` only for the root of the initial network; for nodes added later
    /// it carries the parent's whiteboard, modelling the paper's step in which
    /// a new node is told the protocol parameters (`M`, `W`, `U`) by its
    /// parent.
    fn make_whiteboard(
        &mut self,
        node: NodeId,
        parent: Option<&Self::Whiteboard>,
    ) -> Self::Whiteboard;

    /// Merges the whiteboard of a gracefully removed node into its parent's
    /// whiteboard and returns the number of `O(log N)`-bit messages the
    /// hand-off would cost (accounted as auxiliary messages).
    fn merge_whiteboard(&mut self, removed: Self::Whiteboard, parent: &mut Self::Whiteboard)
        -> u64;

    /// The agent program: invoked every time `agent` is activated at a node
    /// (on creation, on arrival after a hop, and on being dequeued when a
    /// locked node becomes unlocked).
    fn on_activate(&mut self, ctx: &mut NodeCtx<'_, Self>, agent: &mut Self::Agent) -> Action;
}

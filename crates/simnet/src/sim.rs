//! The discrete-event simulator tying together the tree, the taxi layer, the
//! graceful-change machinery and the protocol's agent program.

use crate::config::SimConfig;
use crate::engine::{ChangeId, EventKind, EventQueue, Time};
use crate::hot::{AgentTable, HotNodeState};
use crate::metrics::Metrics;
use crate::ports::PortMap;
use crate::protocol::{Action, AgentId, Effect, NodeCtx, Protocol};
use crate::taxi::NodeTaxi;
use crate::topology::{PendingChange, TopologyChange, MAX_CHANGE_ATTEMPTS};
use crate::{DynamicTree, NodeId};
use dcn_rng::{DetRng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Errors surfaced by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// An operation referenced a node that does not (or no longer) exist.
    UnknownNode(NodeId),
    /// The protocol issued an impossible instruction (e.g. `Up` at the root,
    /// `Down` with no recorded descent pointer).
    ProtocolViolation(String),
    /// `run_until_quiescent` exceeded the configured event budget; the
    /// execution is likely livelocked.
    EventBudgetExceeded(u64),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownNode(id) => write!(f, "node {id} does not exist in the simulation"),
            SimError::ProtocolViolation(msg) => write!(f, "protocol violation: {msg}"),
            SimError::EventBudgetExceeded(n) => {
                write!(f, "event budget of {n} events exceeded before quiescence")
            }
        }
    }
}

impl Error for SimError {}

/// The asynchronous-network / mobile-agent simulator.
///
/// See the crate-level documentation for the model. Typical usage:
///
/// 1. construct with [`Simulator::new`] or [`Simulator::with_tree`];
/// 2. inject requests by creating agents with [`Simulator::create_agent`];
/// 3. call [`Simulator::run_until_quiescent`];
/// 4. drain protocol outputs with [`Simulator::drain_outputs`] and inspect
///    [`Simulator::metrics`].
pub struct Simulator<P: Protocol> {
    config: SimConfig,
    protocol: P,
    tree: DynamicTree,
    rng: DetRng,
    queue: EventQueue,
    /// Per-node hot state (whiteboards / taxi / ports) as struct-of-arrays
    /// over the dense node-arena index: a step() pays direct array indexing
    /// behind a single liveness check, and every iteration over node state
    /// is index-ordered (deterministic) by construction.
    nodes: HotNodeState<P::Whiteboard>,
    /// Agent ids are never reused, so the table grows with the number of
    /// agents ever created — the same growth law as the tree arena under
    /// node ids. That is the model's own memory law, and every long-running
    /// driver (epochs, iterations) rebuilds its simulator periodically,
    /// which resets it.
    agents: AgentTable<P::Agent>,
    /// Granted changes awaiting graceful application, slot-indexed by their
    /// (densely issued) `ChangeId` — a change's id is its index, so the retry
    /// loop pays a direct index instead of two hashed probes per attempt.
    /// Resolved slots are `None`; `live_changes` tracks how many remain.
    pending_changes: Vec<Option<PendingChange>>,
    live_changes: usize,
    outputs: Vec<P::Output>,
    metrics: Metrics,
    /// The same-timestamp cohort currently being dispatched: `step()` drains
    /// the engine one *bucket* at a time into this reusable buffer and then
    /// serves events from it by cursor, so a cohort of k same-time events
    /// costs one queue probe instead of k.
    batch: Vec<EventKind>,
    batch_cursor: usize,
    /// Scratch buffer for the effects of one activation, reused across
    /// events so the hot loop does not allocate per event.
    effects_scratch: Vec<Effect<P>>,
    /// Scratch buffer for child lists copied out of the tree while it is
    /// being mutated (topology changes only).
    children_scratch: Vec<NodeId>,
}

impl<P: Protocol> Simulator<P> {
    /// Creates a simulator whose network initially consists of a single root.
    pub fn new(config: SimConfig, protocol: P) -> Self {
        Self::with_tree(config, protocol, DynamicTree::new())
    }

    /// Creates a simulator over an existing initial tree. Whiteboards are
    /// created top-down so that every node's whiteboard can be derived from
    /// its parent's (the paper's parameter hand-off).
    pub fn with_tree(config: SimConfig, mut protocol: P, tree: DynamicTree) -> Self {
        let mut rng = DetRng::seed_from_u64(config.seed);
        let mut nodes: HotNodeState<P::Whiteboard> =
            HotNodeState::with_capacity(tree.total_created());
        for node in tree.dfs(tree.root()) {
            let parent = tree.parent(node);
            let wb = {
                let parent_wb = parent.and_then(|p| nodes.whiteboard(p));
                protocol.make_whiteboard(node, parent_wb)
            };
            nodes.insert(node, wb);
            if let Some(p) = parent {
                let port_at_parent = nodes.ports_raw_mut(p).assign(node, &mut rng);
                let port_at_child = nodes.ports_raw_mut(node).assign(p, &mut rng);
                debug_assert_ne!((port_at_parent, p), (port_at_child, node));
            }
        }
        Simulator {
            config,
            protocol,
            tree,
            rng,
            queue: EventQueue::new(),
            nodes,
            agents: AgentTable::new(),
            pending_changes: Vec::new(),
            live_changes: 0,
            outputs: Vec::new(),
            metrics: Metrics::new(),
            batch: Vec::new(),
            batch_cursor: 0,
            effects_scratch: Vec::new(),
            children_scratch: Vec::new(),
        }
    }

    /// The protocol instance (e.g. to read aggregated protocol state).
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Mutable access to the protocol instance.
    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// The current spanning tree.
    pub fn tree(&self) -> &DynamicTree {
        &self.tree
    }

    /// Consumes the simulator and returns the tree in its final state (used
    /// by iteration drivers that rebuild the protocol state over the same
    /// network at an epoch boundary).
    pub fn into_tree(self) -> DynamicTree {
        self.tree
    }

    /// Current simulated time.
    pub fn time(&self) -> Time {
        self.queue.now()
    }

    /// Number of events that were scheduled in the past and clamped to the
    /// current time. Always 0 in a correct execution — a non-zero value means
    /// a driver or protocol computed a stale absolute timestamp.
    pub fn clamped_event_count(&self) -> u64 {
        self.queue.clamped_count()
    }

    /// Number of relative schedules whose fire time saturated at
    /// `Time::MAX`, collapsing distinct delays onto one instant. Always 0 in
    /// a correct execution.
    pub fn saturated_event_count(&self) -> u64 {
        self.queue.saturated_count()
    }

    /// Cost counters accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets the cost counters (e.g. at an iteration boundary) and returns
    /// the previous values.
    pub fn take_metrics(&mut self) -> Metrics {
        std::mem::take(&mut self.metrics)
    }

    /// The whiteboard of `node`, if the node exists.
    pub fn whiteboard(&self, node: NodeId) -> Option<&P::Whiteboard> {
        self.nodes.whiteboard(node)
    }

    /// Mutable whiteboard access (driver-side initialisation only).
    pub fn whiteboard_mut(&mut self, node: NodeId) -> Option<&mut P::Whiteboard> {
        self.nodes.whiteboard_mut(node)
    }

    /// Iterates over the whiteboards of all currently existing nodes, in
    /// node-index order.
    pub fn whiteboards(&self) -> impl Iterator<Item = (NodeId, &P::Whiteboard)> {
        self.nodes.iter_whiteboards()
    }

    /// The adversarially assigned port numbers of `node`.
    pub fn ports(&self, node: NodeId) -> Option<&PortMap> {
        self.nodes.ports(node)
    }

    /// Returns `true` if `node` is currently locked by some agent.
    pub fn is_locked(&self, node: NodeId) -> bool {
        self.nodes.taxi(node).is_some_and(NodeTaxi::is_locked)
    }

    /// Number of agents currently alive (travelling, active or queued).
    pub fn live_agents(&self) -> usize {
        self.agents.len()
    }

    /// Number of granted topological changes still awaiting graceful
    /// application.
    pub fn pending_change_count(&self) -> usize {
        self.live_changes
    }

    /// Number of events currently scheduled (including the not-yet-served
    /// remainder of the batch being dispatched). Zero means the execution is
    /// quiescent.
    pub fn pending_events(&self) -> usize {
        self.queue.len() + (self.batch.len() - self.batch_cursor)
    }

    /// Returns `true` when no events are scheduled (nothing left to simulate).
    pub fn is_quiescent(&self) -> bool {
        self.pending_events() == 0
    }

    /// The absolute simulated time of the next scheduled event, if any.
    /// Drivers can batch-poll ("run until t") without popping events.
    pub fn next_event_time(&self) -> Option<Time> {
        if self.batch_cursor < self.batch.len() {
            // The rest of the current same-timestamp cohort fires "now".
            Some(self.queue.now())
        } else {
            self.queue.peek_time()
        }
    }

    /// Removes and returns all protocol outputs emitted so far.
    pub fn drain_outputs(&mut self) -> Vec<P::Output> {
        std::mem::take(&mut self.outputs)
    }

    /// Creates an agent at `node`, activated at the current simulated time.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if `node` does not exist.
    pub fn create_agent(&mut self, node: NodeId, state: P::Agent) -> Result<AgentId, SimError> {
        self.create_agent_delayed(node, state, 0)
    }

    /// Creates an agent at `node`, activated `delay` time units from now.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] if `node` does not exist.
    pub fn create_agent_delayed(
        &mut self,
        node: NodeId,
        state: P::Agent,
        delay: Time,
    ) -> Result<AgentId, SimError> {
        if !self.tree.contains(node) {
            return Err(SimError::UnknownNode(node));
        }
        let id = self.agents.create(state, node);
        self.metrics.agents_created += 1;
        self.metrics.max_live_agents = self.metrics.max_live_agents.max(self.agents.len());
        self.schedule_activation(id, node, delay);
        Ok(id)
    }

    /// Schedules a topological change for graceful application (driver-side;
    /// the protocol schedules changes through
    /// [`NodeCtx::schedule_change`](crate::NodeCtx::schedule_change)).
    pub fn schedule_change(&mut self, change: TopologyChange) {
        let id = self.pending_changes.len() as ChangeId;
        self.pending_changes.push(Some(PendingChange::new(change)));
        self.live_changes += 1;
        self.queue.schedule(
            self.config.change_delay,
            EventKind::AttemptChange { change: id },
        );
    }

    /// Processes a single event. Returns `Ok(false)` when the event queue is
    /// empty.
    ///
    /// Events are pulled from the engine one same-timestamp *cohort* at a
    /// time (`pop_batch`) and served from the reusable batch buffer, so k
    /// simultaneous events cost one queue probe. Per-event semantics are
    /// unchanged: each `step()` dispatches exactly one event, in the global
    /// `(time, seq)` order.
    ///
    /// # Errors
    ///
    /// Propagates protocol violations; see [`SimError`].
    pub fn step(&mut self) -> Result<bool, SimError> {
        if self.batch_cursor >= self.batch.len() {
            self.batch.clear();
            self.batch_cursor = 0;
            if self.queue.pop_batch(&mut self.batch).is_none() {
                return Ok(false);
            }
        }
        let kind = self.batch[self.batch_cursor];
        self.batch_cursor += 1;
        self.metrics.events_processed += 1;
        match kind {
            EventKind::Activate { agent, at } => self.process_activation(agent, at)?,
            EventKind::AttemptChange { change } => self.process_change_attempt(change),
        }
        Ok(true)
    }

    /// Processes up to `budget` events and returns the number actually
    /// processed (fewer only when the queue drained first).
    ///
    /// # Errors
    ///
    /// Propagates protocol violations; see [`SimError`].
    pub fn run_events(&mut self, budget: u64) -> Result<u64, SimError> {
        let mut processed = 0;
        while processed < budget && self.step()? {
            processed += 1;
        }
        Ok(processed)
    }

    /// Runs until no events remain (all agents terminated or queued forever
    /// and no pending changes can make progress).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventBudgetExceeded`] if the configured
    /// [`SimConfig::max_events`] budget is exhausted, or a protocol violation
    /// if the agent program issues an impossible instruction.
    pub fn run_until_quiescent(&mut self) -> Result<(), SimError> {
        let mut processed: u64 = 0;
        while self.step()? {
            processed += 1;
            if processed > self.config.max_events {
                return Err(SimError::EventBudgetExceeded(self.config.max_events));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn schedule_activation(&mut self, agent: AgentId, at: NodeId, delay: Time) {
        if let Some(t) = self.nodes.taxi_mut(at) {
            t.inbound += 1;
        }
        self.queue
            .schedule(delay, EventKind::Activate { agent, at });
    }

    fn process_activation(&mut self, agent: AgentId, at: NodeId) -> Result<(), SimError> {
        if let Some(t) = self.nodes.taxi_mut(at) {
            t.inbound = t.inbound.saturating_sub(1);
        }
        let Some(mut state) = self.agents.take_state(agent) else {
            return Ok(());
        };
        if !self.tree.contains(at) {
            // The target vanished despite the quiescence gate (can only happen
            // for wave agents heading to a just-removed child); drop the agent.
            self.metrics.agents_dropped += 1;
            return Ok(());
        }
        self.metrics.activations += 1;
        let (origin, dist_from_origin, dist_to_top) = {
            let taxi = self.agents.taxi_mut(agent);
            taxi.location = at;
            (taxi.origin, taxi.dist_from_origin, taxi.dist_to_top)
        };

        let parent = self.tree.parent(at);
        // The child list is borrowed straight from the tree arena (nothing
        // mutates the tree during an activation) and the effects vector is
        // the reusable scratch buffer: one activation allocates nothing.
        let effects = std::mem::take(&mut self.effects_scratch);
        let children: &[NodeId] = self.tree.children(at).unwrap_or(&[]);
        let locked_by = self.nodes.taxi(at).and_then(|t| t.locked_by);
        let node_count = self.tree.node_count();
        let total_created = self.tree.total_created();
        let time = self.queue.now();

        // `contains(at)` held above, so a missing whiteboard means the node
        // bookkeeping diverged from the tree arena; surface it to the driver
        // instead of panicking mid-drain.
        let Some(whiteboard) = self.nodes.whiteboard_mut(at) else {
            return Err(SimError::UnknownNode(at));
        };
        let protocol = &mut self.protocol;
        let mut ctx: NodeCtx<'_, P> = NodeCtx {
            node: at,
            parent,
            children,
            node_count,
            total_created,
            time,
            agent_id: agent,
            origin,
            dist_from_origin,
            dist_to_top,
            locked_by,
            whiteboard,
            effects,
        };
        let action = protocol.on_activate(&mut ctx, &mut state);
        let mut effects = std::mem::take(&mut ctx.effects);
        drop(ctx);

        self.apply_effects(agent, at, &mut effects);
        effects.clear();
        self.effects_scratch = effects;
        self.apply_action(agent, at, state, action)
    }

    fn apply_effects(&mut self, agent: AgentId, at: NodeId, effects: &mut Vec<Effect<P>>) {
        for effect in effects.drain(..) {
            match effect {
                Effect::Lock => {
                    let arrived_from = self.agents.taxi_mut(agent).arrived_from;
                    let is_child = arrived_from
                        .map(|c| self.tree.parent(c) == Some(at))
                        .unwrap_or(false);
                    if let Some(t) = self.nodes.taxi_mut(at) {
                        t.locked_by = Some(agent);
                        if is_child {
                            t.down_child = arrived_from;
                        } else if arrived_from.is_none() {
                            t.down_child = None;
                        }
                    }
                }
                Effect::Unlock => {
                    let dequeued = if let Some(t) = self.nodes.taxi_mut(at) {
                        t.locked_by = None;
                        t.queue.pop_front()
                    } else {
                        None
                    };
                    if let Some(next) = dequeued {
                        self.schedule_activation(next, at, 0);
                    }
                }
                Effect::MarkTop => self.agents.taxi_mut(agent).mark_top(),
                Effect::Spawn(state) => {
                    let id = self.agents.create(state, at);
                    self.metrics.agents_created += 1;
                    // +1 for the active agent whose state is checked out.
                    self.metrics.max_live_agents =
                        self.metrics.max_live_agents.max(self.agents.len() + 1);
                    self.schedule_activation(id, at, 0);
                }
                Effect::Emit(output) => self.outputs.push(output),
                Effect::ScheduleChange(change) => self.schedule_change(change),
                Effect::AuxMessages(k) => self.metrics.aux_messages += k,
            }
        }
    }

    fn apply_action(
        &mut self,
        agent: AgentId,
        at: NodeId,
        state: P::Agent,
        action: Action,
    ) -> Result<(), SimError> {
        match action {
            Action::Up => {
                let Some(target) = self.tree.parent(at) else {
                    return Err(SimError::ProtocolViolation(format!(
                        "agent {agent} issued Up at the root"
                    )));
                };
                self.agents.taxi_mut(agent).hop_up(at, target);
                self.dispatch_move(agent, state, target);
                Ok(())
            }
            Action::Down => {
                let target = self.nodes.taxi(at).and_then(|t| t.down_child);
                let Some(target) = target else {
                    return Err(SimError::ProtocolViolation(format!(
                        "agent {agent} issued Down at {at} with no descent pointer"
                    )));
                };
                if !self.tree.contains(target) {
                    return Err(SimError::ProtocolViolation(format!(
                        "descent pointer of {at} references removed node {target}"
                    )));
                }
                self.agents.taxi_mut(agent).hop_down(at, target);
                self.dispatch_move(agent, state, target);
                Ok(())
            }
            Action::MoveToChild(child) => {
                if !self.tree.contains(child) || self.tree.parent(child) != Some(at) {
                    // The child disappeared between the decision and the move;
                    // wave agents are simply dropped (see crate docs).
                    self.metrics.agents_dropped += 1;
                    return Ok(());
                }
                self.agents.taxi_mut(agent).hop_to_child(at, child);
                self.dispatch_move(agent, state, child);
                Ok(())
            }
            Action::WaitForUnlock => {
                if let Some(t) = self.nodes.taxi_mut(at) {
                    t.queue.push_back(agent);
                    self.metrics.waits += 1;
                    self.metrics.max_queue_len = self.metrics.max_queue_len.max(t.queue.len());
                }
                self.agents.put_state(agent, state);
                Ok(())
            }
            Action::Again => {
                self.schedule_activation(agent, at, 0);
                self.agents.put_state(agent, state);
                Ok(())
            }
            Action::Terminate => Ok(()),
        }
    }

    fn dispatch_move(&mut self, agent: AgentId, state: P::Agent, target: NodeId) {
        self.metrics.agent_hops += 1;
        let delay = self.config.delay.sample(&mut self.rng);
        self.agents.put_state(agent, state);
        self.schedule_activation(agent, target, delay);
    }

    fn process_change_attempt(&mut self, change_id: ChangeId) {
        let Some(slot) = self.pending_changes.get_mut(change_id as usize) else {
            return;
        };
        let Some(mut pending) = slot.take() else {
            return;
        };
        match self.try_apply_change(pending.change) {
            ChangeOutcome::Applied => {
                self.live_changes -= 1;
                self.metrics.topology_changes_applied += 1;
            }
            ChangeOutcome::Dropped => {
                self.live_changes -= 1;
                self.metrics.topology_changes_dropped += 1;
            }
            ChangeOutcome::Busy => {
                pending.attempts += 1;
                self.metrics.change_retries += 1;
                if pending.attempts >= MAX_CHANGE_ATTEMPTS {
                    self.live_changes -= 1;
                    self.metrics.topology_changes_dropped += 1;
                } else {
                    self.pending_changes[change_id as usize] = Some(pending);
                    self.queue.schedule(
                        self.config.change_retry_delay,
                        EventKind::AttemptChange { change: change_id },
                    );
                }
            }
        }
    }

    fn try_apply_change(&mut self, change: TopologyChange) -> ChangeOutcome {
        match change {
            TopologyChange::AddLeaf { parent } => {
                if !self.tree.contains(parent) {
                    return ChangeOutcome::Dropped;
                }
                // `contains(parent)` held above; if the arena still refuses
                // the change treat it as malformed and drop it gracefully.
                let Ok(child) = self.tree.add_leaf(parent) else {
                    return ChangeOutcome::Dropped;
                };
                self.init_new_node(child, parent);
                ChangeOutcome::Applied
            }
            TopologyChange::AddInternalAbove { below } => {
                if !self.tree.contains(below) {
                    return ChangeOutcome::Dropped;
                }
                let Some(parent) = self.tree.parent(below) else {
                    return ChangeOutcome::Dropped;
                };
                // Do not split an edge that an agent's locked descent path
                // currently crosses, and never split the parent edge of a
                // locked node: a waiting agent may have locked `below` and
                // will later record it as its parent's descent target, so the
                // edge must stay intact until that agent releases it.
                let below_locked = self
                    .nodes
                    .taxi(below)
                    .map(NodeTaxi::is_locked)
                    .unwrap_or(false);
                let crossing = self
                    .nodes
                    .taxi(parent)
                    .map(|t| t.is_locked() && t.down_child == Some(below))
                    .unwrap_or(false);
                if crossing || below_locked {
                    return ChangeOutcome::Busy;
                }
                // `below` exists and has a parent (checked above), so the
                // split cannot fail; a malformed change degrades to Dropped.
                let Ok(node) = self.tree.add_internal_above(below) else {
                    return ChangeOutcome::Dropped;
                };
                self.init_new_node(node, parent);
                // Re-wire adversarial ports for the changed incident edges.
                self.nodes.ports_raw_mut(parent).remove(below);
                self.nodes.ports_raw_mut(below).remove(parent);
                let pp = self.nodes.ports_raw_mut(parent).assign(node, &mut self.rng);
                let _ = pp;
                self.nodes.ports_raw_mut(node).assign(below, &mut self.rng);
                self.nodes.ports_raw_mut(below).assign(node, &mut self.rng);
                ChangeOutcome::Applied
            }
            TopologyChange::Remove { node } => {
                if !self.tree.contains(node) {
                    return ChangeOutcome::Dropped;
                }
                if node == self.tree.root() {
                    return ChangeOutcome::Dropped;
                }
                let busy = self
                    .nodes
                    .taxi(node)
                    .map(|t| t.is_locked() || !t.queue.is_empty() || t.inbound > 0)
                    .unwrap_or(false);
                if busy {
                    return ChangeOutcome::Busy;
                }
                // Non-root (checked above), so a parent exists; a node the
                // arena disowns anyway is a malformed change, not a panic.
                let Some(parent) = self.tree.parent(node) else {
                    return ChangeOutcome::Dropped;
                };
                let mut children = std::mem::take(&mut self.children_scratch);
                children.clear();
                children.extend_from_slice(self.tree.children(node).unwrap_or(&[]));
                // Hand the whiteboard contents to the parent ("graceful"
                // rule); removal also resets the node's taxi and port state.
                if let Some(removed_wb) = self.nodes.remove(node) {
                    // The parent always has a whiteboard while its child
                    // existed; if not, the merge is skipped rather than
                    // panicking (the removed contents are lost either way).
                    if let Some(parent_wb) = self.nodes.whiteboard_mut(parent) {
                        let aux = self.protocol.merge_whiteboard(removed_wb, parent_wb);
                        self.metrics.aux_messages += aux;
                    }
                }
                self.nodes.ports_raw_mut(parent).remove(node);
                for &c in &children {
                    self.nodes.ports_raw_mut(c).remove(node);
                    self.nodes.ports_raw_mut(c).assign(parent, &mut self.rng);
                    self.nodes.ports_raw_mut(parent).assign(c, &mut self.rng);
                }
                self.children_scratch = children;
                // lint: allow(unwrap) contains(node) and node != root were
                // both checked above, and ports/whiteboard state is already
                // torn down — failing here must be loud, not recoverable.
                self.tree.remove(node).expect("checked above");
                ChangeOutcome::Applied
            }
            TopologyChange::AddNonTreeEdge { a, b } => match self.tree.add_non_tree_edge(a, b) {
                Ok(()) => ChangeOutcome::Applied,
                Err(_) => ChangeOutcome::Dropped,
            },
            TopologyChange::RemoveNonTreeEdge { a, b } => {
                match self.tree.remove_non_tree_edge(a, b) {
                    Ok(()) => ChangeOutcome::Applied,
                    Err(_) => ChangeOutcome::Dropped,
                }
            }
        }
    }

    fn init_new_node(&mut self, node: NodeId, parent: NodeId) {
        let wb = {
            let parent_wb = self.nodes.whiteboard(parent);
            self.protocol.make_whiteboard(node, parent_wb)
        };
        self.nodes.insert(node, wb);
        self.nodes.ports_raw_mut(parent).assign(node, &mut self.rng);
        self.nodes.ports_raw_mut(node).assign(parent, &mut self.rng);
    }
}

enum ChangeOutcome {
    Applied,
    Dropped,
    Busy,
}

impl<P: Protocol> fmt::Debug for Simulator<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("time", &self.queue.now())
            .field("nodes", &self.tree.node_count())
            .field("live_agents", &self.agents.len())
            .field("pending_changes", &self.live_changes)
            .field("metrics", &self.metrics)
            .finish()
    }
}

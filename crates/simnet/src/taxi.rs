//! Taxi-layer bookkeeping (paper §4.3.2).
//!
//! The taxi layer carries agents between nodes and maintains, per agent, the
//! `Distance` counter (hop distance to the agent's origin) and the
//! `DistToTop` counter (hop distance below the topmost node the agent marked),
//! and per node, the lock owner, the FIFO queue of waiting agents and the
//! pointer to the child from which the lock-holding agent arrived (used to
//! implement the `Down` instruction along a locked path).

use crate::protocol::AgentId;
use crate::NodeId;
use std::collections::VecDeque;

/// Per-agent taxi state.
#[derive(Clone, Debug)]
pub(crate) struct AgentTaxi {
    /// The node at which the agent was created.
    pub origin: NodeId,
    /// Hop distance from the agent's current node to its origin.
    pub dist_from_origin: usize,
    /// Hop distance from the agent's current node down from the topmost node
    /// it marked with `mark_top` (0 until a top is marked).
    pub dist_to_top: usize,
    /// The node the agent was at immediately before its last hop, if any.
    pub arrived_from: Option<NodeId>,
    /// The node the agent currently resides at (or is in flight towards).
    pub location: NodeId,
}

impl AgentTaxi {
    pub fn new(origin: NodeId) -> Self {
        AgentTaxi {
            origin,
            dist_from_origin: 0,
            dist_to_top: 0,
            arrived_from: None,
            location: origin,
        }
    }

    /// Records a hop away from the origin / below the marked top.
    pub fn hop_down(&mut self, from: NodeId, to: NodeId) {
        self.dist_from_origin = self.dist_from_origin.saturating_sub(1);
        self.dist_to_top += 1;
        self.arrived_from = Some(from);
        self.location = to;
    }

    /// Records a hop towards the root (away from the origin, towards the top).
    pub fn hop_up(&mut self, from: NodeId, to: NodeId) {
        self.dist_from_origin += 1;
        self.dist_to_top = self.dist_to_top.saturating_sub(1);
        self.arrived_from = Some(from);
        self.location = to;
    }

    /// Records a hop to an explicit child target (wave agents moving away from
    /// both their origin and the root).
    pub fn hop_to_child(&mut self, from: NodeId, to: NodeId) {
        self.dist_from_origin += 1;
        self.dist_to_top += 1;
        self.arrived_from = Some(from);
        self.location = to;
    }

    /// Resets the `DistToTop` counter: the current node becomes the marked top.
    pub fn mark_top(&mut self) {
        self.dist_to_top = 0;
    }
}

/// Per-node taxi state: lock, descent pointer and waiting-agent queue.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeTaxi {
    /// The agent currently holding this node's lock, if any.
    pub locked_by: Option<AgentId>,
    /// The child from which the lock-holding agent arrived; the `Down`
    /// instruction moves to this child.
    pub down_child: Option<NodeId>,
    /// FIFO queue of agents waiting for the node to become unlocked.
    pub queue: VecDeque<AgentId>,
    /// Number of in-flight messages / scheduled activations targeting this
    /// node. A node with `inbound > 0` is never gracefully removed.
    pub inbound: usize,
}

impl NodeTaxi {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn is_locked(&self) -> bool {
        self.locked_by.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_counters_follow_hops() {
        let origin = NodeId::from_index(5);
        let a = NodeId::from_index(4);
        let b = NodeId::from_index(3);
        let mut taxi = AgentTaxi::new(origin);
        assert_eq!(taxi.dist_from_origin, 0);

        taxi.hop_up(origin, a);
        taxi.hop_up(a, b);
        assert_eq!(taxi.dist_from_origin, 2);
        assert_eq!(taxi.arrived_from, Some(a));
        assert_eq!(taxi.location, b);

        taxi.mark_top();
        assert_eq!(taxi.dist_to_top, 0);

        taxi.hop_down(b, a);
        assert_eq!(taxi.dist_from_origin, 1);
        assert_eq!(taxi.dist_to_top, 1);

        taxi.hop_up(a, b);
        assert_eq!(taxi.dist_to_top, 0);
        assert_eq!(taxi.dist_from_origin, 2);
    }

    #[test]
    fn counters_saturate_at_zero() {
        let origin = NodeId::from_index(0);
        let a = NodeId::from_index(1);
        let mut taxi = AgentTaxi::new(origin);
        taxi.hop_down(origin, a);
        assert_eq!(taxi.dist_from_origin, 0);
        taxi.hop_up(a, origin);
        assert_eq!(taxi.dist_to_top, 0);
    }

    #[test]
    fn child_hops_increase_both_counters() {
        let mut taxi = AgentTaxi::new(NodeId::from_index(0));
        taxi.mark_top();
        taxi.hop_to_child(NodeId::from_index(0), NodeId::from_index(1));
        assert_eq!(taxi.dist_from_origin, 1);
        assert_eq!(taxi.dist_to_top, 1);
    }

    #[test]
    fn node_taxi_defaults_to_unlocked_and_empty() {
        let nt = NodeTaxi::new();
        assert!(!nt.is_locked());
        assert!(nt.queue.is_empty());
        assert_eq!(nt.inbound, 0);
        assert_eq!(nt.down_child, None);
    }
}
